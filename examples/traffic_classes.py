#!/usr/bin/env python3
"""Traffic classes: route the expensive subset, not a blind fraction (§4.4).

One service chain serves two request populations: cheap L requests
(GET /light, 3 ms) and expensive H requests (POST /heavy, 45 ms). West is
overloaded — driven almost entirely by H compute. This example:

1. derives traffic classes automatically from observed request attributes
   (the §5 "just enough classes" heuristic);
2. solves per-class routing and shows SLATE moving mostly H requests;
3. compares against the class-blind Waterfall spill.

Run:  python examples/traffic_classes.py
"""

import os

from repro import (DemandMatrix, DeploymentSpec, GlobalController,
                   WaterfallConfig, WaterfallPolicy, summarize,
                   two_class_app, two_region_latency)
from repro.core.classes import derive_classes
from repro.experiments import Scenario, compare_policies
from repro.core import SlatePolicy

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    app = two_class_app(light_exec=0.003, heavy_exec=0.045, n_services=2)

    # --- 1. class derivation from observed attributes -------------------
    light_attrs = app.classes["L"].attributes
    heavy_attrs = app.classes["H"].attributes
    observed = [light_attrs] * 4500 + [heavy_attrs] * 1300
    derived = derive_classes(observed, max_classes=8, min_share=0.05)
    print("Derived traffic classes from observed requests:")
    for name in derived.class_names:
        print(f"  {name}: {derived.share(name):.0%} of traffic")

    # --- 2. per-class optimization ---------------------------------------
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=8,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({
        ("L", "west"): 450.0, ("H", "west"): 130.0,
        ("L", "east"): 100.0, ("H", "east"): 30.0,
    })
    result = GlobalController.oracle(app, deployment, demand)
    print("\nSLATE's per-class ingress routing at the overloaded West:")
    for cls in ("L", "H"):
        local = result.ingress_local_fraction(cls, "west")
        exec_ms = app.classes[cls].exec_time_of("S1") * 1000
        print(f"  class {cls} ({exec_ms:.0f} ms/exec): "
              f"{local:.0%} local, {1 - local:.0%} offloaded")

    # --- 3. compare with class-blind spilling ----------------------------
    scenario = Scenario(name="two-class", app=app, deployment=deployment,
                        demand=demand, duration=30.0 * SCALE,
                        warmup=6.0 * SCALE)
    waterfall = WaterfallPolicy(
        WaterfallConfig.from_deployment(app, deployment, threshold_rho=0.8))
    comparison = compare_policies(scenario, [SlatePolicy(), waterfall])
    print(f"\nSimulated {30 * SCALE:g}s:")
    for name in ("slate", "waterfall"):
        outcome = comparison.outcome(name)
        summary = summarize(outcome.latencies)
        print(f"  {name:9s} mean {summary.mean * 1000:5.1f} ms   "
              f"p50 {summary.p50 * 1000:5.1f} ms   "
              f"requests crossing WAN paid for "
              f"{outcome.egress_bytes / 1e6:.1f} MB egress")
    ratio = comparison.latency_ratio("waterfall", "slate")
    print(f"\nclass-aware routing is {ratio:.2f}x better on mean latency "
          "while moving fewer requests.")


if __name__ == "__main__":
    main()
