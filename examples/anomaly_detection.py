#!/usr/bin/env python3
"""Where in the call tree should traffic cross clusters? (§4.3)

The anomaly-detection application: a frontend (FR) calls a metrics
processor (MP), which pulls large volumes of metrics from a database (DB).
The DB is absent in the West cluster (regulation / failure), so every West
request must cross to East *somewhere*:

* locality failover crosses at MP→DB — and the DB→MP response is ~10x the
  MP→FR response, so it pays ~10x the egress bytes;
* SLATE, knowing the whole tree and the byte sizes, crosses at FR→MP.

Run:  python examples/anomaly_detection.py
"""

import os

from repro import (DemandMatrix, DeploymentSpec, LocalityFailoverPolicy,
                   anomaly_detection_app, summarize, two_region_latency)
from repro.core import GlobalControllerConfig, SlatePolicy
from repro.experiments import Scenario, run_policy
from repro.sim import ClusterSpec, EgressPricing

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    app = anomaly_detection_app()
    spec = app.classes["default"]
    print("Call tree and transfer sizes:")
    for edge in spec.edges:
        print(f"  {edge.caller} -> {edge.callee}: request "
              f"{edge.request_bytes / 1000:.0f} KB, response "
              f"{edge.response_bytes / 1000:.0f} KB")

    deployment = DeploymentSpec(
        clusters=[
            ClusterSpec("west", {"FR": 4, "MP": 5}),      # no DB in west
            ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8}),
        ],
        latency=two_region_latency(25.0),
        pricing=EgressPricing(default_price_per_gb=0.02),
    )
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    scenario = Scenario(name="anomaly-detection", app=app,
                        deployment=deployment, demand=demand,
                        duration=30.0 * SCALE, warmup=6.0 * SCALE)

    # cost_weight makes the optimizer value egress dollars alongside latency
    slate = SlatePolicy(GlobalControllerConfig(cost_weight=10000.0))
    failover = LocalityFailoverPolicy()

    print(f"\nSimulating {30 * SCALE:g}s under each policy ...")
    results = {}
    for policy in (slate, failover):
        outcome = run_policy(scenario, policy)
        results[policy.name] = outcome
        summary = summarize(outcome.latencies)
        print(f"  {policy.name:18s} mean {summary.mean * 1000:6.1f} ms   "
              f"egress {outcome.egress_bytes / 1e6:8.1f} MB "
              f"(${outcome.egress_cost:.4f})")

    ratio = (results["locality-failover"].egress_cost
             / results["slate"].egress_cost)
    print(f"\nSLATE cuts the tree at FR->MP instead of MP->DB: "
          f"{ratio:.1f}x less egress cost (paper: 11.6x with their sizes).")


if __name__ == "__main__":
    main()
