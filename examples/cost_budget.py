#!/usr/bin/env python3
"""Operating under an egress budget: the administrator's cost knob (§4.1).

"If an administrator values cost over latency, an optimal request routing
system (jointly optimizing latency and cost) should reflect it by keeping
more traffic local." This example shows both forms of that control on the
multi-hop anomaly-detection scenario:

1. the *weight* form: sweep ``cost_weight`` and trace the latency/egress
   Pareto frontier;
2. the *budget* form: give the optimizer a hard $/hour egress cap and watch
   it buy exactly as much latency as the budget allows.

Run:  python examples/cost_budget.py
"""

from repro import DemandMatrix, DeploymentSpec, GlobalController, evaluate_rules
from repro.core.optimizer import SolverError
from repro.sim import (ClusterSpec, EgressPricing, anomaly_detection_app,
                       two_region_latency)


def build_scenario():
    app = anomaly_detection_app()
    deployment = DeploymentSpec(
        clusters=[ClusterSpec("west", {"FR": 4, "MP": 5}),     # no DB
                  ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8})],
        latency=two_region_latency(25.0),
        pricing=EgressPricing(default_price_per_gb=0.02))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    return app, deployment, demand


def main() -> None:
    app, deployment, demand = build_scenario()

    print("1) cost_weight sweep (latency traded for egress):")
    print(f"   {'weight':>8}  {'mean latency':>12}  {'egress':>10}")
    for weight in (0.0, 1000.0, 10000.0, 100000.0):
        result = GlobalController.oracle(app, deployment, demand,
                                         cost_weight=weight)
        prediction = evaluate_rules(app, deployment, demand, result.rules())
        print(f"   {weight:8g}  {prediction.mean_latency * 1000:9.1f} ms"
              f"  ${prediction.egress_cost_rate * 3600:7.2f}/h")

    unconstrained = GlobalController.oracle(app, deployment, demand)
    base = unconstrained.predicted_egress_cost_rate * 3600

    print(f"\n2) hard egress budgets (latency-optimal spend: ${base:.2f}/h):")
    print(f"   {'budget':>10}  {'mean latency':>12}  {'actual spend':>12}")
    for fraction in (1.0, 0.5, 0.25, 0.19, 0.15):
        budget = base * fraction / 3600
        try:
            result = GlobalController.oracle(app, deployment, demand,
                                             egress_budget=budget)
        except SolverError:
            print(f"   ${budget * 3600:7.2f}/h   infeasible — west traffic "
                  "must reach DB in east somehow")
            continue
        prediction = evaluate_rules(app, deployment, demand, result.rules())
        print(f"   ${budget * 3600:7.2f}/h  "
              f"{prediction.mean_latency * 1000:9.1f} ms"
              f"  ${prediction.egress_cost_rate * 3600:9.2f}/h")

    print("\nthe budget binds exactly: each tightening pushes the cut "
          "placement toward\nthe cheap FR->MP crossing until no cheaper "
          "routing exists (then: infeasible).")


if __name__ == "__main__":
    main()
