#!/usr/bin/env python3
"""Follow-the-sun: diurnal demand and long-lived cross-region imbalance.

§2's survey found half of multi-cluster operators suffer load imbalance
"for hours or longer" — the classic cause being day/night cycles hitting
geo-distributed clusters out of phase. Here two clusters see opposite-phase
sinusoidal demand (a compressed 2-minute "day"); the adaptive Global
Controller re-plans every few seconds and continuously shifts load toward
whichever region is in its night.

Run:  python examples/follow_the_sun.py
"""

import math
import os
import statistics

from repro import (DemandMatrix, DeploymentSpec, MeshSimulation,
                   linear_chain_app, two_region_latency)
from repro.core import GlobalController, GlobalControllerConfig
from repro.sim.traces import diurnal_timeline

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))

DAY = 120.0 * SCALE          # one compressed day, seconds
DURATION = 240.0 * SCALE     # two days
EPOCH = 5.0 * SCALE


def main() -> None:
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=11)
    controller = GlobalController(
        app, deployment,
        GlobalControllerConfig(demand_alpha=0.7, learn_profiles=False))

    history = []

    def on_epoch(reports, simulation):
        controller.observe(reports)
        result = controller.plan()
        if result is None:
            return
        result.rules().apply(simulation.table)
        west_est = controller.demand_estimate("default", "west")
        east_est = controller.demand_estimate("default", "east")
        local = result.ingress_local_fraction("default", "west")
        history.append((simulation.sim.now, west_est, east_est, local))

    # base 330 RPS each, +/-60% swing, opposite phases: peaks hit 528 RPS
    # against a 500 RPS per-cluster capacity
    base = DemandMatrix({("default", "west"): 330.0,
                         ("default", "east"): 330.0})
    timeline = diurnal_timeline(base, duration=DURATION, period=DAY,
                                amplitude=0.6,
                                phase_by_cluster={"west": 0.0,
                                                  "east": math.pi},
                                steps_per_period=24)
    sim.run_timeline(timeline, epoch=EPOCH, on_epoch=on_epoch)

    print("time   west-demand  east-demand  west kept local")
    for time, west, east, local in history[3::4]:
        bar = "#" * round(local * 20)
        print(f"{time:5.0f}s   {west:7.0f}      {east:7.0f}      "
              f"{local:5.0%}  {bar}")

    lats = sim.telemetry.latencies(after=DAY / 2)
    offload_peaks = [local for t, w, e, local in history if w > 480]
    print(f"\nmean latency across both days: "
          f"{statistics.mean(lats) * 1000:.1f} ms "
          f"({len(lats)} requests)")
    if offload_peaks:
        print(f"at west's daily peaks the controller kept "
              f"{statistics.mean(offload_peaks):.0%} local and routed the "
              "rest to the idle region — follow-the-sun, automatically.")


if __name__ == "__main__":
    main()
