#!/usr/bin/env python3
"""Which cluster should overload spill to? (the paper's §4.2 scenario)

Four clusters on the real GCP topology — Oregon (OR), Utah (UT), Iowa
(IOW), South Carolina (SC) — run the same chained application. OR and IOW
are overloaded. Greedy capacity-based systems (Traffic Director /
ServiceRouter, modelled by the Waterfall baseline) both spill to UT, the
nearest cluster with apparent spare capacity, driving it to its limit while
SC idles. SLATE solves the matching globally and uses SC too.

Run:  python examples/gcp_multicluster.py
"""

import os

from repro import (DemandMatrix, DeploymentSpec, WaterfallConfig,
                   WaterfallPolicy, linear_chain_app, summarize,
                   gcp_four_region_latency)
from repro.baselines import PolicyContext
from repro.core import SlatePolicy
from repro.experiments import run_policy, Scenario

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    app = linear_chain_app(n_services=3, exec_time=0.010)
    latency = gcp_four_region_latency()
    deployment = DeploymentSpec.uniform(
        app.services(), ["OR", "UT", "IOW", "SC"], replicas=5,
        latency=latency)
    demand = DemandMatrix({
        ("default", "OR"): 590.0,
        ("default", "IOW"): 590.0,
        ("default", "UT"): 100.0,
        ("default", "SC"): 100.0,
    })
    scenario = Scenario(name="gcp-four-region", app=app,
                        deployment=deployment, demand=demand,
                        duration=30.0 * SCALE, warmup=6.0 * SCALE)

    slate = SlatePolicy()
    waterfall = WaterfallPolicy(
        WaterfallConfig.from_deployment(app, deployment, threshold_rho=0.8))

    print("Inter-region RTTs (ms):")
    for a, b in (("OR", "UT"), ("UT", "IOW"), ("IOW", "SC"), ("OR", "SC")):
        print(f"  {a}-{b}: {latency.rtt(a, b) * 1000:.0f}")

    ctx = PolicyContext(app, deployment, demand)
    print("\nIngress routing of the overloaded regions (service S1):")
    for name, policy in (("waterfall", waterfall), ("slate", slate)):
        rules = policy.compute_rules(ctx)
        for src in ("OR", "IOW"):
            rule = (rules.rule_for("S1", "default", src)
                    or rules.rule_for("S1", "*", src))
            weights = ", ".join(f"{c}={w:.0%}" for c, w in rule.weights)
            print(f"  {name:9s} {src}: {weights}")

    print(f"\nSimulating {30 * SCALE:g}s under each policy ...")
    for policy in (slate, waterfall):
        outcome = run_policy(scenario, policy)
        summary = summarize(outcome.latencies)
        print(f"  {policy.name:9s} mean {summary.mean * 1000:6.1f} ms   "
              f"p99 {summary.p99 * 1000:7.1f} ms")


if __name__ == "__main__":
    main()
