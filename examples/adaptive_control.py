#!/usr/bin/env python3
"""The full SLATE control loop, live: telemetry -> optimize -> push rules.

Part 1 runs the hierarchical control plane the paper describes in §3
against a demand burst: SLATE-proxies report spans each epoch, Cluster
Controllers relay them, the Global Controller learns demand and latency
profiles online, re-optimizes, and pushes rules. Mid-run, West's demand
jumps from 300 to 650 RPS; watch the controller chase it.

Part 2 demonstrates §5 "resilience to prediction error" in isolation: an
IncrementalRollout applies a (deliberately bad) optimizer target gradually,
observes the objective regress, and rolls back instead of following the
plan off a cliff. The "real system" here is the fluid model, so each
epoch's objective is exact.

Run:  python examples/adaptive_control.py
"""

import os
import statistics

from repro import (DemandMatrix, DeploymentSpec, MeshSimulation,
                   evaluate_rules, linear_chain_app, two_region_latency)
from repro.core import (GlobalController, GlobalControllerConfig,
                        IncrementalRollout, RolloutConfig, RoutingRule,
                        RuleSet)
from repro.core.controller import ClusterController
from repro.sim.workload import RateProfile, RateSegment, TrafficSource

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def build_world():
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    return app, deployment


def part1_adaptive_loop() -> None:
    print("=" * 72)
    print("Part 1: online control loop under a demand burst")
    print("=" * 72)
    app, deployment = build_world()
    simulation = MeshSimulation(app, deployment, seed=5)
    controller = GlobalController(
        app, deployment,
        GlobalControllerConfig(learn_profiles=True, demand_alpha=0.6))
    cluster_controllers = {name: ClusterController(name)
                           for name in deployment.cluster_names}

    def on_epoch(reports, sim) -> None:
        relayed = []
        for report in reports:
            cc = cluster_controllers[report.cluster]
            cc.ingest(report)
            relayed.extend(cc.relay())
        controller.observe(relayed)
        result = controller.plan()
        if result is None:
            return
        rules = result.rules()
        for cc in cluster_controllers.values():
            cc.distribute(rules, sim.table)
        lats = [lat for r in relayed for lat in r.request_latencies]
        observed_ms = statistics.mean(lats) * 1000 if lats else 0.0
        west = controller.demand_estimate("default", "west")
        local = result.ingress_local_fraction("default", "west")
        print(f"  t={sim.sim.now:5.1f}s  est(west)={west:6.1f} rps  "
              f"plan keeps {local:4.0%} local  epoch mean "
              f"{observed_ms:7.1f} ms")

    # demand shifts at t=20s: west ramps 300 -> 650 RPS (a load burst)
    west_profile = RateProfile([RateSegment(0.0, 20.0 * SCALE, 300.0),
                                RateSegment(20.0 * SCALE, 60.0 * SCALE,
                                            650.0)])
    east_profile = RateProfile.constant(100.0, 60.0 * SCALE)
    for cluster, profile in (("west", west_profile), ("east", east_profile)):
        TrafficSource(
            sim=simulation.sim, profile=profile,
            attributes=app.classes["default"].attributes,
            ingress_cluster=cluster,
            accept=simulation.gateways[cluster].accept,
            rng=simulation.rngs.stream(f"arrivals/{cluster}"),
        ).start()

    epoch = 4.0 * SCALE
    boundary = epoch
    while boundary <= 60.0 * SCALE:
        simulation.sim.schedule_at(boundary, simulation._epoch_tick, on_epoch)
        boundary += epoch
    simulation.sim.run(until=60.0 * SCALE)
    simulation.sim.run_until_idle()

    tail = simulation.telemetry.latencies(after=40.0 * SCALE)
    print(f"\n  converged: mean {statistics.mean(tail) * 1000:.1f} ms over "
          f"the final {20 * SCALE:g}s ({len(tail)} requests)\n")


def part2_resilient_rollout() -> None:
    print("=" * 72)
    print("Part 2: incremental rollout rolls back a bad plan (§5)")
    print("=" * 72)
    app, deployment = build_world()
    demand = DemandMatrix({("default", "west"): 650.0,
                           ("default", "east"): 100.0})

    # a plan from a (simulated) broken latency predictor: keep everything
    # local despite West being far beyond capacity
    bad_target = RuleSet([
        RoutingRule.make(service, "default", cluster, {cluster: 1.0})
        for service in app.services()
        for cluster in ("west", "east")
    ])
    # the rules currently live: the correct optimizer output
    good = GlobalController.oracle(app, deployment, demand).rules()

    rollout = IncrementalRollout(RolloutConfig(step=0.3,
                                               regression_tolerance=1.15))
    # seed the rollout state with the good rules
    live = rollout.advance(good)
    for _ in range(6):
        live = rollout.advance(good, _objective(app, deployment, demand,
                                                live))

    print("  optimizer now proposes the bad plan "
          "(misprediction); rollout applies it gradually:")
    for epoch in range(6):
        objective = _objective(app, deployment, demand, live)
        live = rollout.advance(bad_target, objective)
        obj_ms = (objective * 1000 if objective != float("inf")
                  else float("inf"))
        print(f"  epoch {epoch}: observed mean {obj_ms:8.1f} ms  "
              f"step={rollout.current_step:.3f}  "
              f"rollbacks={rollout.rollbacks}")
    final = _objective(app, deployment, demand, live)
    print(f"\n  rollout held the system at {final * 1000:.1f} ms instead of "
          "following the bad plan into overload "
          f"(rollbacks taken: {rollout.rollbacks})")


def _objective(app, deployment, demand, rules) -> float:
    return evaluate_rules(app, deployment, demand, rules).mean_latency


if __name__ == "__main__":
    part1_adaptive_loop()
    part2_resilient_rollout()
