#!/usr/bin/env python3
"""Surviving a service failure with global re-optimization.

§2 lists "temporary service failure or decommissioning" among the reasons a
service may exist in only some clusters. Here the social-network app runs
in two clusters; mid-run the post-storage service (PS) dies in West:

* proxies fail over instantly (locality-failover default) so no request is
  black-holed beyond those in flight;
* the Global Controller re-plans on its next epoch, rebalancing *upstream*
  services too (it may move whole read subtrees east rather than paying
  per-call PS crossings);
* when PS recovers, the plan converges back.

Run:  python examples/failure_recovery.py
"""

import os
import statistics

from repro import (DemandMatrix, DeploymentSpec, MeshSimulation,
                   two_region_latency)
from repro.core import GlobalController, GlobalControllerConfig
from repro.core.classes import AppSpecClassifier
from repro.sim import social_network_app

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    app = social_network_app()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=8,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=31,
                         classifier=AppSpecClassifier(app))
    controller = GlobalController(
        app, deployment, GlobalControllerConfig(demand_alpha=0.7))

    def on_epoch(reports, simulation):
        controller.observe(reports)
        result = controller.plan()
        if result is None:
            return
        result.rules().apply(simulation.table)
        lats = [lat for r in reports for lat in r.request_latencies]
        mean_ms = statistics.mean(lats) * 1000 if lats else 0.0
        ps_west = result.pool_load.get(("PS", "west"), 0.0)
        ps_east = result.pool_load.get(("PS", "east"), 0.0)
        print(f"  t={simulation.sim.now:5.1f}s  epoch mean {mean_ms:6.1f} ms"
              f"   planned PS work: west={ps_west:.2f} east={ps_east:.2f}"
              " erlangs")

    demand = DemandMatrix({
        ("read", "west"): 350.0, ("compose", "west"): 100.0,
        ("read", "east"): 120.0, ("compose", "east"): 40.0,
    })

    print(f"t={15 * SCALE:g}s: PS fails in west.  "
          f"t={40 * SCALE:g}s: PS recovers.\n")
    sim.sim.schedule(15.0 * SCALE, sim.fail_service, "west", "PS")
    sim.sim.schedule(40.0 * SCALE, sim.restore_service, "west", "PS", 8)
    sim.run(demand, duration=60.0 * SCALE, epoch=5.0 * SCALE,
            on_epoch=on_epoch)

    lost = sum(1 for r in sim.telemetry.requests if not r.done)
    print(f"\ncompleted {len(sim.telemetry.requests)} requests; "
          f"calls lost to the failure in flight: {sim.dropped_calls}")
    window = sim.telemetry.latencies(after=45.0 * SCALE)
    print(f"mean latency after recovery: "
          f"{statistics.mean(window) * 1000:.1f} ms")


if __name__ == "__main__":
    main()
