#!/usr/bin/env python3
"""Observability on the paper's headline result (Fig. 6a), end to end.

Runs SLATE on the Fig. 6a overload scenario with every observability
pillar enabled, then answers the three questions the layer exists for
(docs/observability.md):

1. *Where did the latency go?* — stitch the slowest request's spans into
   a trace tree and print its critical path: queue wait vs execution vs
   WAN round-trips, hop by hop.
2. *What state was the mesh in?* — dump the prometheus text snapshot of
   pool utilization, gateway counters, WAN egress, and solver state.
3. *What did the controller decide?* — render the per-epoch decision log
   (solved vs replayed vs no-demand, demand deltas, routing churn).

It also writes a Chrome trace_event file — drop it on
https://ui.perfetto.dev to see every span on a per-cluster/per-service
timeline in simulated time.

Run:  python examples/observe_headline.py
"""

import dataclasses
import os
from pathlib import Path

from repro import GlobalControllerConfig, SlatePolicy
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import fig6a_how_much
from repro.obs import (Observability, ObservabilityConfig, hop_breakdown,
                       critical_path, write_chrome_trace)

TRACE_PATH = Path("fig6a_trace.json")

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    setup = fig6a_how_much(duration=30.0 * SCALE)
    # re-plan every 5 s so the decision log has epochs to show; pair the
    # demand quantum with learn_profiles=False so plateaus replay from the
    # solver cache instead of re-solving (docs/performance.md)
    scenario = dataclasses.replace(setup.scenario, epoch=5.0 * SCALE)
    policy = SlatePolicy(GlobalControllerConfig(
        rho_max=0.95, demand_quantum=25.0, learn_profiles=False),
        adaptive=True)
    obs = Observability(ObservabilityConfig.full())

    print("=" * 72)
    print("Fig. 6a (west overloaded at 700 RPS) under SLATE, fully observed")
    print("=" * 72)
    outcome = run_policy(scenario, policy, observability=obs)
    print(f"requests traced: {len(obs.tracer)}   "
          f"spans: {obs.tracer.span_count}   "
          f"post-warmup completions: {len(outcome.latencies)}")

    # -- 1. the slowest request's critical path ---------------------------
    slowest = obs.tracer.slowest_requests(1)[0]
    print(f"\nslowest request #{slowest.request_id} "
          f"(ingress {slowest.ingress_cluster}, "
          f"latency {slowest.latency * 1000:.1f} ms) — critical path:")
    roots = obs.tracer.tree(slowest.request_id)
    for hop in hop_breakdown(critical_path(roots[0])):
        where = "remote" if hop.remote else "local"
        print(f"  {hop.service}@{hop.cluster:<6} ({where})  "
              f"queue {hop.queue_wait * 1000:6.2f} ms  "
              f"exec {hop.exec_time * 1000:6.2f} ms  "
              f"downstream {hop.downstream * 1000:6.2f} ms  "
              f"wan {hop.wan_rtt * 1000:6.2f} ms")

    # -- 2. mesh state as metrics ----------------------------------------
    print("\nmetrics snapshot (prometheus text format, excerpt):")
    for line in obs.metrics.to_prometheus().splitlines():
        if line.startswith(("pool_utilization", "wan_egress_bytes_total",
                            "solver_objective", "solver_cache")):
            print(f"  {line}")

    # -- 3. the controller's decisions -----------------------------------
    print("\ndecision log (one row per Global Controller epoch):")
    print(obs.decisions.render())

    print("\ncontrol-plane wall time:")
    for name, stats in obs.profiler.summary().items():
        print(f"  {name:<14} runs={stats['count']:<3} "
              f"total={stats['total_s'] * 1000:.1f} ms")

    # -- Perfetto export --------------------------------------------------
    events = write_chrome_trace(obs.tracer, TRACE_PATH, max_requests=200)
    print(f"\nwrote {events} trace events to {TRACE_PATH} "
          f"— open at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
