#!/usr/bin/env python3
"""Riding out a Global Controller outage with the stale-rule guard (§5).

The paper's §5 asks what happens when the hierarchical control plane
degrades. Here SLATE offloads part of West's hot traffic to East; then the
Global Controller goes dark for 14 simulated seconds *while* the west<->east
link degrades 20-fold:

* the frozen offload rules keep paying the inflated WAN RTT (~1 s/crossing);
* each Cluster Controller's stale-rule guard notices the rule age exceeding
  ``max_rule_age`` and fails over to locality routing — p95 falls back to
  local queueing levels;
* when the controller returns, its next plan reconciles the fallback and the
  resilience report shows finite detection and recovery times.

Run:  python examples/controller_outage.py
"""

import os

from repro.chaos import ControlPlaneOutage, FaultPlan, WanFault, run_chaos
from repro.experiments.scenarios import chaos_outage_setup

#: CI smoke knob: scale every sim duration down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def p95(values):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] if ordered else 0.0


def main() -> None:
    setup = chaos_outage_setup(duration=40.0 * SCALE,
                               fault_start=10.0 * SCALE,
                               fault_duration=14.0 * SCALE,
                               epoch=2.0 * SCALE,
                               max_rule_age=5.0 * SCALE)
    print("fault campaign:")
    for line in setup.plan.describe():
        print(f"  {line}")

    def window_p95(result, lo, hi):
        return p95([lat for t, lat in result.samples
                    if lat is not None and lo <= t < hi]) * 1000

    fault = setup.plan.faults[0]
    lo, hi = fault.start, fault.start + fault.duration
    runs = {}
    for label, kwargs in (
            ("frozen stale rules", {}),
            ("stale-rule guard", dict(fallback=setup.fallback,
                                      max_rule_age=setup.max_rule_age))):
        runs[label] = run_chaos(setup.scenario, setup.policy, setup.plan,
                                **kwargs)

    guarded = runs["stale-rule guard"]
    trip = guarded.fallback_trips[0] if guarded.fallback_trips else hi
    for label, result in runs.items():
        print(f"\n{label}:")
        print(f"  p95 before guard trips [{lo:g}s,{trip:g}s): "
              f"{window_p95(result, lo, trip):7.1f} ms")
        print(f"  p95 after guard trips  [{trip:g}s,{hi:g}s): "
              f"{window_p95(result, trip, hi):7.1f} ms")
        print(f"  p95 after recovery:    "
              f"{window_p95(result, hi, setup.scenario.duration):7.1f} ms")
        if result.fallback_trips:
            print(f"  guard tripped at t={result.fallback_trips[0]:.1f}s; "
                  f"reconciliations: "
                  f"{sum(c.reconciliations for c in result.controllers.values())}")

    baseline = run_chaos(setup.scenario, setup.policy, FaultPlan.empty())
    report = runs["stale-rule guard"].resilience(
        baseline, window=2.0 * SCALE)
    print("\nresilience report (guarded run vs unfaulted twin):")
    print(report.render())
    # the declarative types are the full campaign vocabulary:
    assert isinstance(setup.plan.faults[0], ControlPlaneOutage)
    assert isinstance(setup.plan.faults[1], WanFault)


if __name__ == "__main__":
    main()
