#!/usr/bin/env python3
"""Quickstart: optimize request routing for an overloaded cluster.

A 3-service chain runs in two clusters (west/east, 25 ms apart). West
receives more traffic than it can serve. We ask SLATE's Global Controller
for optimal per-cluster routing weights, install them in the mesh, simulate,
and compare against serving everything locally.

Run:  python examples/quickstart.py
"""

import os

from repro import (DemandMatrix, DeploymentSpec, GlobalController,
                   MeshSimulation, linear_chain_app, summarize,
                   two_region_latency)

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def simulate(app, deployment, demand, rules=None, seed=1):
    simulation = MeshSimulation(app, deployment, seed=seed)
    if rules is not None:
        rules.apply(simulation.table)
    simulation.run(demand, duration=30.0 * SCALE)
    return simulation


def main() -> None:
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    # each service sustains 5 replicas / 10 ms = 500 RPS per cluster;
    # west gets 650 RPS — beyond local capacity
    demand = DemandMatrix({("default", "west"): 650.0,
                           ("default", "east"): 100.0})

    result = GlobalController.oracle(app, deployment, demand)
    print("optimizer status:", result.status)
    print(f"predicted mean latency: "
          f"{result.predicted_mean_latency * 1000:.1f} ms")
    for rule in result.rules():
        weights = ", ".join(f"{cluster}={weight:.0%}"
                            for cluster, weight in rule.weights)
        print(f"  rule {rule.service} @ {rule.src_cluster}: {weights}")

    slate = simulate(app, deployment, demand, result.rules())
    local = simulate(app, deployment, demand, rules=None)

    slate_summary = summarize(slate.telemetry.latencies(after=5.0 * SCALE))
    local_summary = summarize(local.telemetry.latencies(after=5.0 * SCALE))
    print(f"\nSLATE:      mean {slate_summary.mean * 1000:7.1f} ms   "
          f"p99 {slate_summary.p99 * 1000:7.1f} ms")
    print(f"local-only: mean {local_summary.mean * 1000:7.1f} ms   "
          f"p99 {local_summary.p99 * 1000:7.1f} ms")
    print(f"\nSLATE is {local_summary.mean / slate_summary.mean:.1f}x "
          "faster on mean latency under this overload.")


if __name__ == "__main__":
    main()
