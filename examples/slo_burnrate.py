#!/usr/bin/env python3
"""SLO burn-rate alerting over a demand surge, joined to the decision log.

The streaming-observability pipeline in one run: a `ScrapeLoop` samples the
mesh every simulated second into labeled time series, an `SloEngine`
evaluates a 250 ms latency objective with multi-window burn rates (a fast
10 s window to catch the spike, a slow 30 s window to suppress blips), and
the resulting firing→resolved alert is joined against the Global
Controller's epoch decision log — answering "did the controller re-plan
*while* the SLO was burning?".

The scenario: West runs comfortably at 250 RPS against a ~500 RPS local
capacity, surges to 650 RPS at t=40 (beyond what staying local can absorb),
and recovers at t=100. The initial plan keeps traffic local, so the surge
queues, the SLO burns, and the alert fires within seconds; the adaptive
controller re-plans at the next epoch boundary and offloads the overflow to
East, after which burn rates fall and the alert resolves.

Run:  python examples/slo_burnrate.py
"""

import os

from repro.experiments import run_policy
from repro.experiments.scenarios import slo_burnrate_setup
from repro.obs import Observability, join_alerts_decisions

#: CI smoke knob: scale sim durations down (tests/test_examples.py). The
#: SLO burn windows stay at their real widths, so at small scales the alert
#: may simply not fire — the pipeline still runs end to end.
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))


def main() -> None:
    setup = slo_burnrate_setup(surge_start=40.0 * SCALE,
                               surge_end=100.0 * SCALE,
                               duration=180.0 * SCALE,
                               epoch=10.0 * SCALE)
    obs = Observability(setup.observability())
    print(f"scenario: {setup.scenario.name} "
          f"({setup.scenario.duration:g}s sim, surge 250->650 RPS at West "
          f"over [{40 * SCALE:g}, {100 * SCALE:g}))")
    rule = setup.slo_rules[0]
    print(f"SLO: {rule.name} — {100 * (1 - rule.budget):g}% of requests "
          f"under {rule.threshold * 1000:g} ms, fast/slow windows "
          f"{rule.fast_window:g}/{rule.slow_window:g}s at burn "
          f">={rule.fast_burn:g}/{rule.slow_burn:g}\n")

    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)

    print(f"scrapes: {obs.timeseries.scrape_count}, "
          f"series: {obs.timeseries.series_count()}\n")
    print(obs.alerts.render())

    # the sliding burn-rate the state machine acted on
    burn = obs.timeseries.series("slo_burn_rate", slo=rule.name,
                                 window="fast")
    if burn:
        peak_time, peak = max(burn.items(), key=lambda point: point[1])
        print(f"\npeak fast-window burn: {peak:.1f}x budget "
              f"at t={peak_time:g}s")

    print("\nalert ∩ decision log:")
    for row in join_alerts_decisions(obs.alerts, obs.decisions):
        alert = row["alert"]
        resolved = (f"{alert.resolved_at:g}" if alert.resolved_at is not None
                    else "end")
        print(f"  {alert.rule} fired [{alert.fired_at:g}, "
              f"{resolved}]s — {len(row['decisions'])} "
              f"controller epochs inside, {row['replans']} fresh re-plans")
        for decision in row["decisions"]:
            print(f"    t={decision.sim_time:6.1f}  {decision.outcome:<9} "
                  f"demand_delta={decision.demand_delta:7.1f} "
                  f"churn={decision.weight_churn:.3f}")


if __name__ == "__main__":
    main()
