#!/usr/bin/env python3
"""Decision provenance: explain one routing shift end-to-end.

Every epoch the Global Controller sees telemetry, maybe re-solves, and
ships a rule diff; next epoch the scrape loop measures what that diff did
to the data plane. `repro.obs.provenance` chains those four steps into
one record per epoch — this example runs the diurnal scenario with tight
capacity (so the day/night swings force real cross-cluster shifts) and
prints the full causal story for the biggest one: the demand delta that
triggered it, the solver path (replay / warm / cold) that produced it,
the rule churn that shipped, and the egress/latency movement observed
afterwards.

Run:  python examples/explain_shift.py
CLI:  python -m repro obs explain default --scenario diurnal --table
"""

import os

from repro.experiments.harness import run_policy
from repro.experiments.scenarios import diurnal_control_setup
from repro.obs import Observability, ObservabilityConfig

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))

DURATION = 240.0 * SCALE
EPOCH = 10.0 * SCALE


def main() -> None:
    # replicas=2 caps each cluster at 200 RPS against a 225 RPS demand
    # peak, so the optimizer must offload the overflow cross-cluster —
    # the weight shifts this example exists to explain
    setup = diurnal_control_setup(duration=DURATION, epoch=EPOCH,
                                  replicas=2)
    obs = Observability(ObservabilityConfig(
        provenance=True, decisions=True, timeseries=True))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)

    log = obs.provenance
    print("=== flight-recorder ring ===")
    print(log.render())

    print("\n=== biggest shift for class 'default', explained ===")
    print(log.explain("default"))

    # the same chain is machine-readable: each record's as_dict() carries
    # the digest, solver path, rule deltas, and the attributed effect
    records = [r for r in log.records if r.solver is not None]
    if records:
        paths = {}
        for record in records:
            key = record.solver.get("solver_path") or "-"
            paths[key] = paths.get(key, 0) + 1
        summary = ", ".join(f"{count}x {name}"
                            for name, count in sorted(paths.items()))
        print(f"\nsolver paths over {len(log.records)} epochs: {summary}")


if __name__ == "__main__":
    main()
