#!/usr/bin/env python3
"""A million simulated users: hybrid-fidelity simulation at planet scale.

Event-level simulation costs CPU per request, so a 1M-RPS day is out of
reach on a laptop. The fluid substrate (`repro.sim.fluid`) instead evolves
bulk traffic as flow rates — M/M/c queueing over pool capacity, WAN
propagation, routing splits as matrix products — on a fixed tick, so the
cost of a simulated second no longer depends on how many requests it
carries. Hybrid fidelity adds back a deterministic sampled slice of real
event-level requests for p50/p95/p99 without paying for the other 99.9%.

Part 1 runs a diurnal day at >= 1M simulated RPS in pure fluid fidelity
and reports the wall-clock cost. Part 2 reruns it in hybrid fidelity: the
bulk flows stay fluid while a 0.1% sample runs through the real proxies,
pools, and gateways to produce tail latencies.

Run:  python examples/fluid_scale.py
"""

import os
import time

from repro.experiments.harness import run_policy
from repro.experiments.scenarios import diurnal_control_setup
from repro.obs.timeseries import percentile

#: CI smoke knob: scale sim durations down (tests/test_examples.py)
SCALE = float(os.environ.get("REPRO_EXAMPLE_TIME_SCALE", "1.0"))

BASE_RPS = 525_000.0          # per cluster; two clusters => 1.05M total
DURATION = 60.0 * SCALE       # one compressed "day"
REPLICAS = 12_000             # sized for the diurnal peak at ~66% util
SAMPLE_RATE = 0.001           # hybrid: 1 in 1000 requests is event-level


def build():
    return diurnal_control_setup(base_rps=BASE_RPS, duration=DURATION,
                                 replicas=REPLICAS)


def simulated_requests(duration: float) -> float:
    # diurnal demand averages its base rate over whole periods
    return 2 * BASE_RPS * duration


def main() -> None:
    total_rps = 2 * BASE_RPS
    print(f"=== Part 1: pure fluid fidelity at {total_rps:,.0f} RPS ===")
    setup = build()
    started = time.perf_counter()
    outcome = run_policy(setup.scenario, setup.policy,
                         timeline=setup.timeline, fidelity="fluid")
    wall = time.perf_counter() - started
    offered = simulated_requests(DURATION)
    print(f"simulated {DURATION:g}s of a {total_rps:,.0f}-RPS diurnal day "
          f"(~{offered:,.0f} requests) in {wall:.2f}s wall")
    print(f"-> {offered / wall:,.0f} simulated requests per wall second")
    print(f"egress: {outcome.egress_bytes:,} bytes "
          f"(${outcome.egress_cost:.2f})")

    print()
    print(f"=== Part 2: hybrid fidelity (sample_rate={SAMPLE_RATE}) ===")
    setup = build()
    started = time.perf_counter()
    outcome = run_policy(setup.scenario, setup.policy,
                         timeline=setup.timeline, fidelity="hybrid",
                         sample_rate=SAMPLE_RATE)
    wall = time.perf_counter() - started
    lat = outcome.latencies
    print(f"same day in {wall:.2f}s wall; {len(lat):,} requests ran "
          f"event-level alongside the bulk flows")
    if lat:
        print(f"sampled-slice latency: p50={percentile(lat, 0.5) * 1000:.1f}ms "
              f"p95={percentile(lat, 0.95) * 1000:.1f}ms "
              f"p99={percentile(lat, 0.99) * 1000:.1f}ms")
    print()
    print("The bulk of the traffic never instantiated a request object; "
          "the sampled slice used the same proxies, pools, and gateways "
          "an event-level run does.")


if __name__ == "__main__":
    main()
