"""Optimizer throughput: vectorized builds, warm solves, arc vs path.

The PR-7 perf surface (docs/performance.md "Planet-scale optimizer").
Three families of numbers land in ``BENCH_optimizer.json``:

* build rates on the *same* mid-size instance BENCH_engine.json tracks
  (``lp_builds_per_sec`` there is the loop-era baseline this PR's
  structured rebuild must beat 10x);
* warm vs cold solve rates on a mid-size instance;
* arc vs path formulation wall time as the cluster count grows, ending
  at the 100-cluster x 1000-class planet case, which must build + solve
  inside one control epoch (10 s).
"""

import json
import time

from reporting import bench_json_path

from repro.analysis.report import format_table
from repro.core.optimizer import (EpochSolver, StructureCache, TEProblem,
                                  build_model, warm_solve)
from repro.core.optimizer.solve import _solve_lp
from repro.experiments.scenarios import (planet_scale_problem,
                                         synthetic_te_problem)
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)

#: one control-plane epoch — the planet-scale build+solve budget (§5)
EPOCH_BUDGET_SECONDS = 10.0


def engine_scenario_problem() -> TEProblem:
    """The exact instance behind BENCH_engine.json's lp_builds_per_sec."""
    app = linear_chain_app(n_services=5)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    return TEProblem.from_specs(app, deployment, demand)


def baseline_builds_per_sec() -> float:
    """The committed loop-era build rate this PR must beat 10x."""
    path = bench_json_path("engine")
    try:
        return float(json.loads(
            path.read_text(encoding="utf-8"))["lp_builds_per_sec"])
    except (OSError, ValueError, KeyError):
        return 1166.0   # committed BENCH_engine.json value at PR 7


def test_warm_build_rate(benchmark, bench_json):
    """Headline: structured rebuild (demand rescatter) rate.

    Epoch N+1's build when only demand values moved — the steady-state
    cost of the adaptive control loop.
    """
    problem = engine_scenario_problem()
    cache = StructureCache()
    build_model(problem, structure_cache=cache)   # populate
    model = benchmark(lambda: build_model(problem, structure_cache=cache))
    assert model.n_variables > 0
    assert cache.hits > 0
    if benchmark.stats is not None:
        rate = 1.0 / benchmark.stats.stats.mean
        assert rate > 10.0 * baseline_builds_per_sec()
        bench_json("optimizer", {"lp_builds_per_sec": rate})


def test_cold_build_rate(benchmark, bench_json):
    """Vectorized assembly from scratch (structure-cache miss)."""
    problem = engine_scenario_problem()
    model = benchmark(lambda: build_model(problem))
    assert model.n_variables > 0
    if benchmark.stats is not None:
        bench_json("optimizer", {
            "lp_cold_builds_per_sec": 1.0 / benchmark.stats.stats.mean,
        })


def test_loop_build_rate(benchmark, bench_json):
    """The per-variable reference builder, for the trend line."""
    problem = engine_scenario_problem()
    model = benchmark(lambda: build_model(problem, backend="loop"))
    assert model.n_variables > 0
    if benchmark.stats is not None:
        bench_json("optimizer", {
            "lp_loop_builds_per_sec": 1.0 / benchmark.stats.stats.mean,
        })


def test_warm_vs_cold_solve(benchmark, bench_json):
    """Restricted warm re-solve vs cold solve on a mid-size instance."""
    problem = synthetic_te_problem(8, 10, 4)
    cache = StructureCache()
    model = build_model(problem, structure_cache=cache)
    cold_x, status = _solve_lp(model)
    assert "optimal" in status
    # nudge demand the way one control epoch would, rescatter, re-solve
    for workload in problem.workloads.values():
        for cluster in workload.demand:
            workload.demand[cluster] *= 1.05
    moved = build_model(problem, structure_cache=cache)
    assert cache.hits > 0

    warm_x = benchmark(lambda: warm_solve(moved, cold_x))
    assert warm_x is not None
    if benchmark.stats is not None:
        warm_rate = 1.0 / benchmark.stats.stats.mean
        rounds = 20
        started = time.perf_counter()
        for _ in range(rounds):
            x, cold_status = _solve_lp(moved)
        cold_rate = rounds / (time.perf_counter() - started)
        assert "optimal" in cold_status
        bench_json("optimizer", {
            "warm_solves_per_sec": warm_rate,
            "cold_solves_per_sec": cold_rate,
        })


def test_arc_vs_path_scale(benchmark, bench_json, report_sink):
    """Both formulations across 4 / 20 / 100 clusters.

    Sparse demand (2 ingresses per class) with replication thinning as
    the fleet grows — the regime where path-variable count stops
    tracking cluster count. The arc column is omitted at 100 clusters:
    a quarter-million route variables is exactly the blow-up the path
    formulation exists to avoid.
    """
    sizes = [(4, 1.0, True), (20, 0.5, True), (100, 0.2, False)]

    def run():
        rows = []
        metrics = {}
        for n_clusters, replication, run_arc in sizes:
            problem = synthetic_te_problem(
                n_clusters, 5, 40, replication=replication,
                ingresses_per_class=2, seed=11)
            arc_cell = "-"
            if run_arc:
                solver = EpochSolver()
                started = time.perf_counter()
                result = solver.solve(problem)
                arc_total = time.perf_counter() - started
                assert result.ok
                metrics[f"arc_total_seconds_{n_clusters}c"] = arc_total
                arc_cell = f"{arc_total:.3f}"
            solver = EpochSolver(formulation="path", path_k=6,
                                 path_prune_limit=8)
            started = time.perf_counter()
            result = solver.solve(problem)
            path_total = time.perf_counter() - started
            assert result.ok
            metrics[f"path_total_seconds_{n_clusters}c"] = path_total
            rows.append([n_clusters, arc_cell, f"{path_total:.3f}"])
        return rows, metrics

    rows, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["clusters", "arc build+solve (s)", "path build+solve (s)"],
        rows, title="Arc vs path formulation "
                    "(5 services, 40 classes, 2 ingresses/class)")
    text += ("\narc at 100 clusters is omitted: the per-(class, edge, "
             "src, dst) variable\ngrid is the scaling wall the path "
             "formulation removes")
    report_sink("optimizer_scale", text)
    bench_json("optimizer", metrics)


def test_planet_scale(benchmark, bench_json):
    """The ISSUE 7 target: 100 clusters x 1000 classes in one epoch.

    Cold epoch (candidate enumeration + assembly + solve) must fit the
    10 s control epoch; the steady-state epoch (structure-cache
    rescatter + warm restricted solve) should be far cheaper.
    """
    problem = planet_scale_problem()
    solver = EpochSolver(formulation="path", path_k=6, path_prune_limit=8)

    def cold_epoch():
        started = time.perf_counter()
        result = solver.solve(problem)
        return result, time.perf_counter() - started

    result, cold_total = benchmark.pedantic(cold_epoch, rounds=1,
                                            iterations=1)
    assert result.ok
    assert cold_total < EPOCH_BUDGET_SECONDS

    # one control epoch later: demand moved, structure did not
    for workload in problem.workloads.values():
        for cluster in workload.demand:
            workload.demand[cluster] *= 1.1
    started = time.perf_counter()
    warm_result = solver.solve(problem)
    warm_total = time.perf_counter() - started
    assert warm_result.ok
    assert warm_result.warm_build
    assert warm_total < cold_total

    bench_json("optimizer", {
        "planet_build_seconds": result.build_time,
        "planet_solve_seconds": result.solve_time,
        "planet_total_seconds": cold_total,
        "planet_warm_total_seconds": warm_total,
    })
