"""Zero-knowledge control: plans from trace-learned structure vs oracle.

The real SLATE cannot read application source — the controller must learn
call trees, fan-outs, byte sizes, and compute times from the proxies'
"trace information" (§3.1). This bench runs the multi-hop scenario with a
local-only warmup period while the controller only *observes*, at several
trace sampling rates, then compares the plan it produces from learned
structure against the oracle plan (ground-truth specs), both evaluated
with the fluid model. The gap should be small even at 1% sampling — mean
behaviour is what the optimizer needs, and means converge fast.
"""

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.core.classes.classifier import AppSpecClassifier
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.experiments.scenarios import fig6c_multihop
from repro.sim.runner import MeshSimulation

SAMPLE_RATES = (1.0, 0.1, 0.01)
WARMUP = 20.0


def plan_quality(scenario, rules):
    prediction = evaluate_rules(scenario.app, scenario.deployment,
                                scenario.demand, rules)
    return prediction.mean_latency, prediction.egress_cost_rate


def learned_plan(scenario, sample_rate, egress_budget):
    simulation = MeshSimulation(
        scenario.app, scenario.deployment, seed=scenario.seed,
        classifier=AppSpecClassifier(scenario.app),
        trace_sample_rate=sample_rate)
    controller = GlobalController(
        scenario.app, scenario.deployment,
        GlobalControllerConfig(learn_structure=True,
                               egress_budget=egress_budget))
    simulation.run(scenario.demand, duration=WARMUP, epoch=WARMUP / 4,
                   on_epoch=lambda reports, s: controller.observe(reports))
    result = controller.plan()
    assert result is not None
    return result.rules()


def run_all():
    setup = fig6c_multihop()
    scenario = setup.scenario
    oracle = GlobalController.oracle(
        scenario.app, scenario.deployment, scenario.demand,
        cost_weight=setup.slate.config.cost_weight)
    # the administrator's target: a hard budget just above the oracle plan's
    # spend — learned byte sizes must be accurate for the budget to bind
    # the same way it does for the oracle
    budget = oracle.predicted_egress_cost_rate * 1.05
    rows = []
    oracle_latency, oracle_cost = plan_quality(scenario, oracle.rules())
    rows.append(["oracle (ground-truth spec)", oracle_latency * 1000,
                 oracle_cost * 3600])
    for rate in SAMPLE_RATES:
        rules = learned_plan(scenario, rate, budget)
        latency, cost = plan_quality(scenario, rules)
        rows.append([f"learned @ {rate:.0%} trace sampling",
                     latency * 1000, cost * 3600])
    return rows, budget


def test_structure_learning_plan_quality(benchmark, report_sink):
    rows, budget = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["controller knowledge", "predicted mean latency (ms)",
         "egress ($/hour)"],
        rows,
        title="Plans from trace-learned structure vs oracle "
              f"(fig6c; hard egress budget ${budget * 3600:.2f}/h)")
    report_sink("structure_learning", text)

    oracle_latency = rows[0][1]
    for label, latency, cost in rows[1:]:
        # learned plans stay close to the oracle on latency and respect the
        # budget when evaluated with the TRUE byte sizes — i.e. the learned
        # sizes were accurate enough to constrain correctly
        assert latency < oracle_latency * 1.15, label
        assert cost <= budget * 3600 * 1.05, label
