"""§5 "Interaction between request routing and autoscaler" + §2 timescales.

The paper motivates SLATE partly by autoscaler latency: autoscaling
"operates over seconds to minutes" (monitoring period, evaluation interval,
image pull, app init) while load shifts "> 1000x faster". This bench stages
a demand burst and compares three operating modes over the same request
stream:

* **autoscaler-only** — local routing; an HPA per cluster eventually adds
  replicas (after evaluation + provisioning delay);
* **slate-only** — adaptive re-optimization every 2 s, fixed capacity;
* **slate+autoscaler** — both layers (§5's co-design direction).

Reported per mode: mean latency during the burst window (while the
autoscaler is still provisioning), after it, and replica-seconds consumed
(provisioning cost proxy).
"""

import statistics

from repro.analysis.report import format_table
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.sim import (AutoscalerConfig, DeploymentSpec,
                       HorizontalAutoscaler, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation
from repro.sim.workload import RateProfile, RateSegment, TrafficSource

BURST_AT = 30.0
DURATION = 120.0
BASE_RPS = 250.0
BURST_RPS = 650.0


def run_mode(with_slate: bool, with_autoscaler: bool, seed: int = 17):
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=seed)

    autoscalers = []
    if with_autoscaler:
        config = AutoscalerConfig(target_utilization=0.6,
                                  evaluation_period=15.0,
                                  provisioning_delay=30.0,
                                  scale_down_stabilization=60.0,
                                  min_replicas=5)
        for cluster in sim.clusters.values():
            autoscaler = HorizontalAutoscaler(sim.sim, cluster, config)
            autoscaler.start()
            autoscalers.append(autoscaler)

    controller = None
    if with_slate:
        controller = GlobalController(
            app, deployment, GlobalControllerConfig(demand_alpha=0.7))

    def on_epoch(reports, simulation):
        if controller is None:
            return
        controller.observe(reports)
        result = controller.plan()
        if result is not None:
            result.rules().apply(simulation.table)

    profiles = {
        "west": RateProfile([RateSegment(0.0, BURST_AT, BASE_RPS),
                             RateSegment(BURST_AT, DURATION, BURST_RPS)]),
        "east": RateProfile.constant(100.0, DURATION),
    }
    for cluster, profile in profiles.items():
        TrafficSource(
            sim=sim.sim, profile=profile,
            attributes=app.classes["default"].attributes,
            ingress_cluster=cluster,
            accept=sim.gateways[cluster].accept,
            rng=sim.rngs.stream(f"arrivals/{cluster}"),
        ).start()

    epoch = 2.0
    boundary = epoch
    while boundary <= DURATION:
        sim.sim.schedule_at(boundary, sim._epoch_tick, on_epoch)
        boundary += epoch
    sim.sim.run(until=DURATION)
    for autoscaler in autoscalers:
        autoscaler.stop()
    sim.sim.run_until_idle()

    def window_mean(lo, hi):
        lats = [r.latency for r in sim.telemetry.requests
                if r.done and lo <= r.arrival_time < hi]
        return statistics.mean(lats) if lats else float("nan")

    replica_seconds = (
        sum(a.replica_seconds(DURATION) for a in autoscalers)
        if autoscalers else 2 * 3 * 5 * DURATION)
    return {
        "burst_window_ms": window_mean(BURST_AT, BURST_AT + 45.0) * 1000,
        "steady_ms": window_mean(BURST_AT + 45.0, DURATION) * 1000,
        "replica_seconds": replica_seconds,
    }


def run_all():
    return {
        "autoscaler-only": run_mode(with_slate=False, with_autoscaler=True),
        "slate-only": run_mode(with_slate=True, with_autoscaler=False),
        "slate+autoscaler": run_mode(with_slate=True, with_autoscaler=True),
    }


def test_autoscaler_interaction(benchmark, report_sink):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[mode, r["burst_window_ms"], r["steady_ms"],
             r["replica_seconds"]]
            for mode, r in results.items()]
    text = format_table(
        ["mode", "burst-window mean (ms)", "post-burst mean (ms)",
         "replica-seconds"],
        rows,
        title="Routing vs autoscaling on a 250->650 RPS burst "
              "(burst at t=30s; HPA: 15s eval + 30s provisioning)")
    report_sink("autoscaler_interaction", text)

    # §2's point: routing reacts orders of magnitude faster than scaling
    assert (results["slate-only"]["burst_window_ms"]
            < results["autoscaler-only"]["burst_window_ms"] / 3)
    # co-design: with SLATE absorbing the burst, both modes end well;
    # the combined mode must be at least as good as autoscaler-only
    assert (results["slate+autoscaler"]["burst_window_ms"]
            < results["autoscaler-only"]["burst_window_ms"])
    assert results["slate+autoscaler"]["steady_ms"] < 100.0
