"""Ablations over SLATE's design choices (DESIGN.md §3 "ablation").

1. **Class count** (§5 traffic classification): run the two-class scenario
   with SLATE seeing 1 class (class-blind, Waterfall's view) vs the true 2
   classes — class-awareness is where the Fig. 6d gain comes from.
2. **Piecewise segments** (§3.3 latency modelling): objective quality vs
   number of linearization knots.
3. **Delay model** (mm1 vs mmc): how much the exact Erlang-C model changes
   the routing decision.
4. **Waterfall coordination** (§4.2): the idealised shared-spare variant
   against the paper's independent greedy spill.
"""

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.baselines.waterfall import WaterfallConfig, WaterfallPolicy
from repro.core.optimizer import TEProblem, solve
from repro.core.optimizer.piecewise import DEFAULT_KNOT_FRACTIONS
from repro.experiments.scenarios import (fig6b_which_cluster,
                                         fig6d_traffic_classes)
from repro.sim.apps import AppSpec, TrafficClassSpec
from repro.sim.request import RequestAttributes


def merged_single_class(app: AppSpec, demand):
    """Collapse a two-class app into one demand-weighted class."""
    total = {}
    for cls in app.classes:
        for cluster in demand.clusters():
            total[cluster] = total.get(cluster, 0.0) + demand.rps(cls,
                                                                  cluster)
    weights = {
        cls: sum(demand.rps(cls, c) for c in demand.clusters())
        for cls in app.classes
    }
    total_rps = sum(weights.values())
    services = app.services()
    exec_time = {
        s: sum(spec.exec_time_of(s) * weights[cls] / total_rps
               for cls, spec in app.classes.items())
        for s in services
    }
    base = next(iter(app.classes.values()))
    merged = TrafficClassSpec(
        name="merged",
        attributes=RequestAttributes.make(base.root_service, "GET", "/any"),
        root_service=base.root_service,
        edges=list(base.edges),
        exec_time=exec_time,
    )
    merged_app = AppSpec(name="merged", classes={"merged": merged})
    from repro.sim.workload import DemandMatrix
    merged_demand = DemandMatrix({("merged", c): rps
                                  for c, rps in total.items() if rps > 0})
    return merged_app, merged_demand


def test_ablation_class_awareness(benchmark, report_sink):
    """SLATE with 1 class vs true classes on the Fig. 6d scenario."""
    setup = fig6d_traffic_classes()
    scenario = setup.scenario

    def evaluate_both():
        aware = solve(TEProblem.from_specs(scenario.app, scenario.deployment,
                                           scenario.demand))
        merged_app, merged_demand = merged_single_class(scenario.app,
                                                        scenario.demand)
        blind_result = solve(TEProblem.from_specs(
            merged_app, scenario.deployment, merged_demand))
        # evaluate the class-blind plan against the *true* per-class app:
        # apply its wildcard-equivalent weights via the fluid model
        from repro.core.rules import RoutingRule, RuleSet
        blind_rules = RuleSet()
        for rule in blind_result.rules():
            blind_rules.add(RoutingRule.make(rule.service, "*",
                                             rule.src_cluster,
                                             rule.weight_map()))
        blind = evaluate_rules(scenario.app, scenario.deployment,
                               scenario.demand, blind_rules)
        aware_fluid = evaluate_rules(scenario.app, scenario.deployment,
                                     scenario.demand, aware.rules())
        return aware_fluid, blind

    aware, blind = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    text = format_table(
        ["variant", "predicted mean latency (ms)", "cross-cluster rps"],
        [["class-aware (2 classes)", aware.mean_latency * 1000,
          aware.cross_cluster_rate()],
         ["class-blind (1 class)", blind.mean_latency * 1000,
          blind.cross_cluster_rate()]],
        title="Ablation: traffic-class awareness (fig6d scenario)")
    report_sink("ablation_class_awareness", text)

    # class-aware moves fewer requests and is no slower
    assert aware.cross_cluster_rate() < blind.cross_cluster_rate()
    assert aware.mean_latency <= blind.mean_latency * 1.02


def test_ablation_piecewise_knots(benchmark, report_sink):
    """More linearization knots => no worse (usually better) true objective."""
    setup = fig6b_which_cluster()
    scenario = setup.scenario
    problem = TEProblem.from_specs(scenario.app, scenario.deployment,
                                   scenario.demand)

    def knot_subset(n_knots):
        step = max(1, len(DEFAULT_KNOT_FRACTIONS) // n_knots)
        picked = set(DEFAULT_KNOT_FRACTIONS[::step]) | {0.0, 1.0}
        return tuple(sorted(picked))

    def run_all():
        results = {}
        for n_knots in (3, 5, 11):
            result = solve(problem, knot_fractions=knot_subset(n_knots))
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, result.rules())
            assert prediction.stable
            results[n_knots] = prediction.mean_latency
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["knots", "true mean latency (ms)"],
        [[k, v * 1000] for k, v in sorted(results.items())],
        title="Ablation: piecewise-linearization granularity")
    report_sink("ablation_piecewise", text)
    assert results[11] <= results[3] * 1.05


def test_ablation_delay_model(benchmark, report_sink):
    """mm1 (Kleinrock) vs mmc (Erlang-C) pool models."""
    setup = fig6b_which_cluster()
    scenario = setup.scenario

    def run_both():
        out = {}
        for mode in ("mm1", "mmc"):
            problem = TEProblem.from_specs(
                scenario.app, scenario.deployment, scenario.demand,
                delay_model=mode)
            result = solve(problem)
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, result.rules())
            out[mode] = prediction.mean_latency
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = format_table(
        ["pool delay model", "true mean latency (ms)"],
        [[mode, value * 1000] for mode, value in sorted(results.items())],
        title="Ablation: LP delay model (evaluated against M/M/c truth)")
    report_sink("ablation_delay_model", text)
    # the exact model should not lose to the approximation
    assert results["mmc"] <= results["mm1"] * 1.05


def test_ablation_waterfall_coordination(benchmark, report_sink):
    """Shared-spare waterfall vs the paper's independent greedy spill."""
    setup = fig6b_which_cluster()
    scenario = setup.scenario
    config = WaterfallConfig.from_deployment(scenario.app,
                                             scenario.deployment, 0.8)

    def run_both():
        out = {}
        for coordinated in (False, True):
            policy = WaterfallPolicy(config, coordinated=coordinated)
            rules = policy.compute_rules(scenario.context())
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, rules)
            out[coordinated] = prediction.mean_latency
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = format_table(
        ["spill coordination", "predicted mean latency (ms)"],
        [["independent (paper)", results[False] * 1000],
         ["shared spare pool", results[True] * 1000]],
        title="Ablation: waterfall spare-capacity bookkeeping "
              "(fig6b scenario)")
    report_sink("ablation_waterfall_coordination", text)
    # coordination helps the baseline but is still not global optimization
    assert results[True] <= results[False] * 1.001
