"""Intra-cluster load balancing: the policies the paper's survey found (§2).

"Load balancing of requests among service replicas is done locally at each
sidecar and uses relatively simple policies like round-robin, consistent
hashing, or least outstanding requests." SLATE keeps these for the
within-cluster choice after its rules pick the cluster — so their behaviour
still shapes the latency distribution SLATE's model must predict.

This bench compares the central-queue idealisation (one M/M/c queue per
pool) against per-replica queues under round-robin and least-outstanding
balancing, plus hedged requests on top of the worst one. Classic ordering:
central queue <= least-outstanding <= round-robin, most visible at the tail.
"""

import statistics

from repro.analysis.report import format_table
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation, TimeoutPolicy

DURATION = 60.0
WEST_RPS = 420.0    # rho = 0.84 on 5 replicas of 10 ms

# single-service app: hedging duplicates a call's entire downstream
# subtree, so it is only sensible on leaf calls — exactly how
# tail-at-scale systems deploy it
N_SERVICES = 1


def run_variant(service_model, intra_lb="least-outstanding",
                timeouts=None, seed=43):
    app = linear_chain_app(n_services=N_SERVICES, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(10.0))
    sim = MeshSimulation(app, deployment, seed=seed,
                         service_model=service_model, intra_lb=intra_lb,
                         timeouts=timeouts)
    sim.run(DemandMatrix({("default", "west"): WEST_RPS}),
            duration=DURATION)
    lats = sorted(sim.telemetry.latencies(after=DURATION / 6))
    return {
        "mean": statistics.mean(lats),
        "p50": lats[len(lats) // 2],
        "p99": lats[int(0.99 * len(lats))],
        "hedges": sim.hedged_calls,
    }


def run_all():
    return {
        "central queue (pool)": run_variant("pool"),
        "per-replica + least-outstanding": run_variant(
            "replicas", "least-outstanding"),
        "per-replica + round-robin": run_variant("replicas", "round-robin"),
        # hedge stragglers (~p90 of the per-call sojourn): a much lower
        # threshold duplicates most calls and overloads the hedge target —
        # the classic hedging-budget failure mode
        "round-robin + hedging": run_variant(
            "replicas", "round-robin",
            TimeoutPolicy(call_timeout=5.0, hedge_delay=0.1)),
    }


def test_intra_cluster_balancing(benchmark, report_sink):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, r["mean"] * 1000, r["p50"] * 1000, r["p99"] * 1000,
             r["hedges"]]
            for name, r in results.items()]
    text = format_table(
        ["variant", "mean (ms)", "p50 (ms)", "p99 (ms)", "hedges"],
        rows,
        title=f"Intra-cluster balancing at rho=0.84 "
              f"(single service, {WEST_RPS:g} RPS)")
    report_sink("intra_lb", text)

    pool = results["central queue (pool)"]
    lor = results["per-replica + least-outstanding"]
    rr = results["per-replica + round-robin"]
    hedged = results["round-robin + hedging"]
    # the classic ordering at the tail
    assert pool["p99"] <= lor["p99"] * 1.05
    assert lor["p99"] < rr["p99"]
    # hedging rescues round-robin's stragglers
    assert hedged["p99"] < rr["p99"]