"""Fig. 6b — "Which clusters to route to?" (§4.2).

The real GCP four-region topology (OR, UT, IOW, SC with the paper's
measured RTTs). OR and IOW are overloaded; Waterfall's greedy nearest-first
spill dumps both on UT and leaves SC idle, while SLATE's global matching
also uses SC. Paper shape: SLATE's CDF dominates Waterfall's.
"""

from repro.analysis.report import format_cdf_series, format_comparison
from repro.experiments.harness import compare_policies
from repro.experiments.scenarios import fig6b_which_cluster


def run_fig6b():
    setup = fig6b_which_cluster()
    comparison = compare_policies(setup.scenario, setup.policies)
    return setup, comparison


def test_fig6b_which_cluster(benchmark, report_sink):
    setup, comparison = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    # quantify the mechanism: weight each policy puts on SC from the
    # overloaded regions
    ctx = setup.scenario.context()
    def sc_weight(policy):
        return sum(rule.weight_map().get("SC", 0.0)
                   for rule in policy.compute_rules(ctx)
                   if rule.src_cluster in ("OR", "IOW"))
    text = "\n".join([
        format_cdf_series(comparison.cdfs(),
                          title="Fig. 6b latency CDF (which cluster)"),
        "",
        format_comparison(comparison, baseline="waterfall", target="slate"),
        f"weight routed OR/IOW -> SC: slate={sc_weight(setup.slate):.3f} "
        f"waterfall={sc_weight(setup.waterfall):.3f}",
    ])
    report_sink("fig6b_which_cluster", text)

    assert comparison.latency_ratio("waterfall", "slate") > 1.15
    assert sc_weight(setup.waterfall) == 0.0   # greedy ignores SC
    assert sc_weight(setup.slate) > 0.0        # global optimum uses it
