"""Headline claims (§1, §4): "up to 3.5x in average latency and ... egress
bandwidth cost by up to 11.6x".

Runs all four Fig. 6 scenarios and reports the max mean-latency ratio and
the Fig. 6c egress ratio — our substrate's equivalents of the paper's
"up to" numbers. Absolute ratios depend on the testbed; the claim shape is
that both are substantially greater than 1 and the egress one is near an
order of magnitude.

The scenario × policy grid runs through the
:class:`~repro.experiments.parallel.SweepExecutor`; results regroup into
per-scenario comparisons in deterministic order.
"""

from repro.analysis.compare import Comparison
from repro.analysis.report import format_table
from repro.experiments.parallel import SweepExecutor, SweepUnit
from repro.experiments.scenarios import (fig6a_how_much, fig6b_which_cluster,
                                         fig6c_multihop,
                                         fig6d_traffic_classes)


def run_all(executor=None):
    executor = executor or SweepExecutor()
    setups = [("fig6a", fig6a_how_much()),
              ("fig6b", fig6b_which_cluster()),
              ("fig6c", fig6c_multihop()),
              ("fig6d", fig6d_traffic_classes())]
    units = [SweepUnit(setup.scenario, policy, label=name)
             for name, setup in setups
             for policy in setup.policies]
    results = executor.run_units(units)
    outcomes = {}
    for unit, outcome in zip(units, results):
        outcomes.setdefault(unit.label,
                            Comparison(unit.label)).add(outcome)
    return outcomes


def test_headline_claims(benchmark, report_sink):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    latency_ratios = {}
    egress_ratios = {}
    for name, comparison in outcomes.items():
        latency_ratios[name] = comparison.latency_ratio("waterfall", "slate")
        slate_cost = comparison.outcome("slate").egress_cost
        wf_cost = comparison.outcome("waterfall").egress_cost
        egress_ratios[name] = (wf_cost / slate_cost if slate_cost > 0
                               else float("nan"))
        rows.append([name, latency_ratios[name], egress_ratios[name]])
    best_latency = max(latency_ratios.values())
    best_egress = max(v for v in egress_ratios.values() if v == v)
    text = format_table(
        ["scenario", "latency ratio (waterfall/slate)",
         "egress ratio (waterfall/slate)"],
        rows,
        title="Headline: per-scenario SLATE gains "
              "(paper: up to 3.5x latency, 11.6x egress)")
    text += (f"\nmax latency gain: {best_latency:.2f}x; "
             f"max egress gain: {best_egress:.2f}x")
    report_sink("headline_claims", text)

    # same regime as the paper's headline numbers
    assert best_latency > 2.5
    assert best_egress > 5.0
