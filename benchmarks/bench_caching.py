"""§5 "Caching & data locality": what SLATE's optimizer cannot see.

The anomaly-detection app gains a response cache at MP for its DB calls,
and DB exists only in East (the Fig. 5c partial-replication setting). Now
the two candidate cuts are no longer equivalent:

* MP in West: every cache *miss* pays the 50 ms WAN round trip to DB —
  but hits (the majority, when West's working set stays warm) pay nothing;
* MP in East: every request pays the 50 ms FR→MP crossing, hit or miss.

The cache-oblivious optimizer ("internal application logic is not
externally observable", §5) assumes every MP→DB call crosses, so the two
placements look the same and it spreads MP work to balance queues. The
bench sweeps the offload fraction with the cache active: the measured
optimum is full concentration in West — the gap a caching-aware router
(the paper's proposed future work) would close.
"""

import dataclasses

from repro.analysis.report import format_table
from repro.core.optimizer import TEProblem, solve
from repro.mesh.routing_table import RouteKey
from repro.sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                       two_region_latency)
from repro.sim.apps import AppSpec
from repro.sim.cache import CacheSpec
from repro.sim.runner import MeshSimulation
from repro.sim.topology import ClusterSpec

OFFLOAD_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)
KEY_SPACE = 1500
TTL = 8.0
WEST_RPS = 300.0
EAST_RPS = 60.0
DURATION = 40.0
MP_SERVICE_TIME = 0.015


def cached_app() -> AppSpec:
    base = anomaly_detection_app()
    spec = dataclasses.replace(base.classes["default"], key_space=KEY_SPACE)
    return AppSpec(name=base.name, classes={"default": spec},
                   caches={("MP", "DB"): CacheSpec("MP", "DB", ttl=TTL)})


def deployment_for(app):
    return DeploymentSpec(
        clusters=[ClusterSpec("west", {"FR": 4, "MP": 8}),      # no DB
                  ClusterSpec("east", {"FR": 4, "MP": 8, "DB": 8})],
        latency=two_region_latency(25.0))


def run_fraction(app, deployment, offload_east: float, seed=29,
                 sticky: bool = False):
    if sticky:
        spec = dataclasses.replace(app.classes["default"],
                                   sticky_affinity=True)
        app = AppSpec(name=app.name, classes={"default": spec},
                      caches=app.caches)
    sim = MeshSimulation(app, deployment, seed=seed)
    weights = ({"west": 1 - offload_east, "east": offload_east}
               if offload_east > 0 else {"west": 1.0})
    sim.table.set_weights(RouteKey("MP", "default", "west"), weights)
    sim.run(DemandMatrix({("default", "west"): WEST_RPS,
                          ("default", "east"): EAST_RPS}),
            duration=DURATION)
    lats = sim.telemetry.latencies(after=DURATION / 5)
    hits = misses = 0
    for cluster in ("west", "east"):
        try:
            stats = sim.edge_cache("MP", "DB", cluster).stats
        except KeyError:
            continue
        hits += stats.hits
        misses += stats.misses
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    return sum(lats) / len(lats), hit_rate


def lp_mp_offload(app, deployment) -> float:
    """Fraction of West's MP work the cache-oblivious LP sends East.

    Measured from pool loads so ingress-level shifts count too.
    """
    demand = DemandMatrix({("default", "west"): WEST_RPS,
                           ("default", "east"): EAST_RPS})
    result = solve(TEProblem.from_specs(app, deployment, demand))
    east_work = result.pool_load.get(("MP", "east"), 0.0)
    east_own = EAST_RPS * MP_SERVICE_TIME
    shifted = max(0.0, east_work - east_own)
    return shifted / (WEST_RPS * MP_SERVICE_TIME)


def run_all():
    app = cached_app()
    deployment = deployment_for(app)
    lp_offload = lp_mp_offload(app, deployment)
    rows = []
    for fraction in OFFLOAD_FRACTIONS:
        mean, hit = run_fraction(app, deployment, fraction)
        rows.append([f"{fraction:.2f} (random)", hit, mean * 1000])
    # the §5 answer: realise the LP's split with per-key affinity instead
    # of per-request sampling — locality survives the split
    nearest_lp = min(OFFLOAD_FRACTIONS, key=lambda f: abs(f - lp_offload))
    sticky_mean, sticky_hit = run_fraction(app, deployment, nearest_lp,
                                           sticky=True)
    rows.append([f"{nearest_lp:.2f} (sticky affinity)", sticky_hit,
                 sticky_mean * 1000])
    return rows, lp_offload, nearest_lp


def test_caching_aware_routing_gap(benchmark, report_sink):
    rows, lp_offload, nearest_lp = benchmark.pedantic(run_all, rounds=1,
                                                      iterations=1)
    text = format_table(
        ["MP offload fraction", "aggregate hit rate",
         "measured mean latency (ms)"],
        rows,
        title="Cache/data-locality coupling "
              "(MP caches DB responses; DB lives only in East)")
    text += (f"\ncache-oblivious LP offloads {lp_offload:.2f} of West's MP "
             "work — under random\nper-request splitting that loses the "
             "cache; per-key sticky affinity realises\nthe same split "
             "while keeping every key's working set in one cluster")
    report_sink("caching_data_locality", text)

    latencies = {row[0]: row[2] for row in rows}
    hit_rates = {row[0]: row[1] for row in rows}
    # concentration keeps the working set warm under random splitting
    assert hit_rates["0.00 (random)"] > hit_rates["0.60 (random)"]
    # the cache-oblivious LP spreads MP work...
    assert lp_offload > 0.2
    # ...and with random splitting, full concentration beats its split
    best = min(latencies, key=latencies.get)
    random_lp = f"{nearest_lp:.2f} (random)"
    sticky_lp = f"{nearest_lp:.2f} (sticky affinity)"
    assert latencies["0.00 (random)"] < latencies[random_lp] * 0.95
    # the constructive fix: the same split with affinity recovers the
    # hit rate and most of the latency gap
    assert hit_rates[sticky_lp] > hit_rates[random_lp] + 0.05
    assert latencies[sticky_lp] < latencies[random_lp]
