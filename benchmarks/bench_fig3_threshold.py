"""Fig. 3 — the static-threshold pathology (§4.1).

The paper's conceptual figure: a conservative threshold "forgoes
opportunities to keep more traffic local, offloading too early, paying more
network latency unnecessarily"; an aggressive one "forces traffic to stay
local when it may be better to offload". We regenerate it quantitatively:
mean latency vs offered load for Waterfall with a conservative (250 RPS) and
an aggressive (480 RPS) static threshold, against SLATE — no single static
value matches the optimizer across the load range.

Evaluated with the fluid model (the sweep needs many points; the simulator
cross-validates the fluid model elsewhere).
"""

import math

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.core.controller.policy import SlatePolicy
from repro.experiments.scenarios import (fig3_threshold_scenario,
                                         waterfall_with_absolute_threshold)

WEST_LOADS = (150.0, 250.0, 350.0, 420.0, 470.0)
CONSERVATIVE_RPS = 250.0
AGGRESSIVE_RPS = 480.0


def sweep():
    rows = []
    for west_rps in WEST_LOADS:
        scenario = fig3_threshold_scenario(west_rps)
        ctx = scenario.context()
        row = [west_rps]
        for policy in (
                waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, CONSERVATIVE_RPS),
                waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, AGGRESSIVE_RPS),
                SlatePolicy()):
            rules = policy.compute_rules(ctx)
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, rules)
            row.append(prediction.mean_latency * 1000)
        rows.append(row)
    return rows


def test_fig3_static_threshold_pathology(benchmark, report_sink):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["west load (rps)", f"conservative {CONSERVATIVE_RPS:g} (ms)",
         f"aggressive {AGGRESSIVE_RPS:g} (ms)", "SLATE (ms)"],
        rows,
        title="Fig. 3: mean latency vs load under static thresholds")
    report_sink("fig3_threshold", text)

    conservative = [row[1] for row in rows]
    aggressive = [row[2] for row in rows]
    slate = [row[3] for row in rows]
    # SLATE within epsilon of the best static choice at every load
    for c, a, s in zip(conservative, aggressive, slate):
        assert math.isfinite(s)
        assert s <= min(c, a) + 0.1
    # each static threshold is strictly worse somewhere: the pathology
    assert any(c > s * 1.1 for c, s in zip(conservative, slate))
    assert any(a > s * 1.5 for a, s in zip(aggressive, slate))
