"""Fig. 6a — "How much to route to remote clusters?" (§4.1).

Regenerates the latency CDF of SLATE vs Waterfall when the West cluster is
overloaded: a 3-service chain in two clusters, West at 700 RPS against a
500 RPS per-service capacity, Waterfall configured with an aggressive static
threshold. Paper shape: SLATE's CDF dominates; it "offloads only until it
improves the latency".
"""

from repro.analysis.report import format_cdf_series, format_comparison
from repro.experiments.harness import compare_policies
from repro.experiments.scenarios import fig6a_how_much


def run_fig6a():
    setup = fig6a_how_much()
    return compare_policies(setup.scenario, setup.policies)


def test_fig6a_how_much(benchmark, report_sink):
    comparison = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    text = "\n".join([
        format_cdf_series(comparison.cdfs(),
                          title="Fig. 6a latency CDF (how much)"),
        "",
        format_comparison(comparison, baseline="waterfall", target="slate"),
    ])
    report_sink("fig6a_how_much", text)

    # paper shape: SLATE clearly ahead on mean and tail
    assert comparison.latency_ratio("waterfall", "slate") > 1.5
    assert comparison.latency_ratio("waterfall", "slate", stat="p99") > 1.5
