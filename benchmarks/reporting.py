"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

The text tables under ``benchmarks/results/`` are for humans;
these JSON files are the perf trajectory machines track across PRs
(events/sec, solve/sec, cache hit rates, sweep wall-clock, worker counts).
Each bench merges its metrics into one named file, so several test
functions can contribute to the same artifact.

Schema conventions: flat-ish dicts, snake_case keys, numbers in base units
(seconds, events/second); every file carries ``schema_version`` so future
PRs can evolve the format without breaking trend tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

SCHEMA_VERSION = 1


def bench_json_path(name: str) -> Path:
    """Path of the machine-readable artifact for one bench family."""
    return RESULTS_DIR / f"BENCH_{name}.json"


def update_bench_json(name: str, metrics: dict) -> Path:
    """Merge ``metrics`` into ``BENCH_<name>.json`` (create if missing).

    Merging (rather than overwriting) lets independent test functions in
    one bench file contribute keys to a single artifact.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = bench_json_path(name)
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            payload = {}
    payload.update(metrics)
    payload["schema_version"] = SCHEMA_VERSION
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
