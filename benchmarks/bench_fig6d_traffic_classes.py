"""Fig. 6d — "Which subset of requests to route?" (§4.4).

One chain serving cheap L and expensive H traffic classes; West overloaded
by H volume. Waterfall offloads the same fraction of every class; SLATE
moves (mostly) just H requests — fewer WAN crossings for the same load
relief. Paper shape: SLATE's CDF dominates.
"""

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.report import format_cdf_series, format_comparison
from repro.experiments.harness import compare_policies
from repro.experiments.scenarios import fig6d_traffic_classes


def run_fig6d():
    setup = fig6d_traffic_classes()
    return compare_policies(setup.scenario, setup.policies)


def test_fig6d_traffic_classes(benchmark, report_sink):
    comparison = benchmark.pedantic(run_fig6d, rounds=1, iterations=1)
    slate = comparison.outcome("slate")
    per_class = {
        f"slate:{cls}": EmpiricalCDF(latencies)
        for cls, latencies in sorted(slate.latencies_by_class.items())
    }
    text = "\n".join([
        format_cdf_series(comparison.cdfs(),
                          title="Fig. 6d latency CDF (traffic classes)"),
        "",
        format_cdf_series(per_class, title="SLATE per-class latency"),
        "",
        format_comparison(comparison, baseline="waterfall", target="slate"),
    ])
    report_sink("fig6d_traffic_classes", text)

    assert comparison.latency_ratio("waterfall", "slate") > 1.05
    # mechanism: SLATE crosses fewer bytes because it moves only H
    assert slate.egress_bytes < comparison.outcome("waterfall").egress_bytes
