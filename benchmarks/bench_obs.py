"""Observability overhead: events/sec with pillars off vs. on.

The acceptance bars: tracing disabled must cost <2% against the bare
simulation (one ``is None`` check per span), the full tracing+metrics path
must stay under 25% overhead, and the sim-time scrape loop (with and
without SLO evaluation) must also stay under 25%. Each mode's
events/second headline lands in ``BENCH_obs.json`` so the trajectory is
tracked across PRs alongside ``BENCH_engine.json`` — and diffed in CI by
``repro obs diff``.
"""

from repro.obs import Observability, ObservabilityConfig, default_latency_slo
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation

_DURATION = 5.0


def _scenario():
    app = linear_chain_app()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    return app, deployment, demand


def _simulate(config):
    obs = Observability(config) if config is not None else None
    app, deployment, demand = _scenario()
    sim = MeshSimulation(app, deployment, seed=1, observability=obs)
    sim.run(demand, duration=_DURATION)
    if obs is not None:
        obs.collect(sim)   # the pull-based metrics sweep (no-op sans pillar)
    return sim.sim.events_processed


def _record(benchmark, bench_json, key, events):
    if benchmark.stats is not None:   # absent under --benchmark-disable
        bench_json("obs", {
            key: events / benchmark.stats.stats.mean,
        })


def test_observability_disabled(benchmark, bench_json):
    """Baseline: no observability object at all (the default path)."""
    events = benchmark(_simulate, None)
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_off", events)


def test_observability_tracing(benchmark, bench_json):
    """Every span and request envelope recorded into the tracer."""
    events = benchmark(_simulate, ObservabilityConfig(tracing=True))
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_tracing", events)


def test_observability_tracing_and_metrics(benchmark, bench_json):
    """Tracing plus the end-of-run metrics collection sweep."""
    events = benchmark(_simulate,
                       ObservabilityConfig(tracing=True, metrics=True))
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_tracing_metrics", events)


def test_observability_timeseries(benchmark, bench_json):
    """Metrics plus the sim-time scrape loop at a 0.25 s interval."""
    events = benchmark(_simulate, ObservabilityConfig(
        metrics=True, timeseries=True, scrape_interval=0.25))
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_timeseries", events)


def test_observability_timeseries_and_slo(benchmark, bench_json):
    """The full streaming pipeline: scrape loop + SLO burn-rate engine."""
    events = benchmark(_simulate, ObservabilityConfig(
        metrics=True, timeseries=True, scrape_interval=0.25,
        slo=(default_latency_slo(0.25),)))
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_timeseries_slo", events)


def test_observability_forecast_anomaly(benchmark, bench_json):
    """The predictive pillar riding the scrape loop: forecast models,
    anomaly detectors, and the breach predictor all enabled. Bar: within
    25% of the bare simulation, like every other enabled pillar."""
    events = benchmark(_simulate, ObservabilityConfig(
        metrics=True, timeseries=True, scrape_interval=0.25,
        slo=(default_latency_slo(0.25),), forecast=True, anomaly=True))
    assert events > 0
    _record(benchmark, bench_json, "events_per_sec_forecast_anomaly",
            events)


def test_breach_prediction_quality(benchmark, bench_json):
    """Predictive-alert quality on the SLO burn-rate scenario.

    Deterministic same-seed run, so the lead-time and precision/recall
    rows diff exactly across PRs; `*_seconds=5.0` in bench-diff gives the
    lead row headroom if the scenario itself is retuned.
    """
    from repro.experiments import scenarios as sc
    from repro.experiments.harness import run_policy

    def run():
        setup = sc.slo_burnrate_setup(duration=80.0, seed=42)
        obs = Observability(setup.observability(forecast=True,
                                                anomaly=True))
        run_policy(setup.scenario, setup.policy, observability=obs,
                   timeline=setup.timeline)
        return obs.breach.score(), obs.anomaly.summary()

    score, anomalies = benchmark.pedantic(run, rounds=1, iterations=1)
    assert score.hits >= 1, "the surge must be predicted before it fires"
    assert score.mean_lead_seconds > 0
    bench_json("obs", {
        "predicted_breach_lead_seconds": score.mean_lead_seconds,
        "prediction_precision": score.precision,
        "prediction_recall": score.recall,
        "anomaly_events": anomalies["events"],
    })


# --------------------------------------------------- provenance overhead
#
# Provenance instruments the epoch control loop (digest + rule diff +
# effect attribution per epoch), so its cost only shows up under an
# adaptive policy. Bar: the provenance row must stay within 25% of the
# control-loop baseline (target <=5%); `repro obs diff` enforces the band
# across PRs via BENCH_obs.json.

def _simulate_control(provenance: bool):
    from repro import GlobalControllerConfig, SlatePolicy
    from repro.experiments.harness import Scenario, run_policy

    app, deployment, demand = _scenario()
    scenario = Scenario("obs-bench-control", app, deployment, demand,
                        duration=_DURATION, warmup=0.0, epoch=1.0)
    config = ObservabilityConfig(
        decisions=True, timeseries=True, scrape_interval=0.25,
        provenance=provenance)
    policy = SlatePolicy(GlobalControllerConfig(rho_max=0.95), adaptive=True)
    outcome = run_policy(scenario, policy,
                         observability=Observability(config))
    return len(outcome.latencies)


def test_control_loop_baseline(benchmark, bench_json):
    """Adaptive control loop with decision log + scrape, no provenance."""
    requests = benchmark(_simulate_control, False)
    assert requests > 0
    _record(benchmark, bench_json, "requests_per_sec_control_off", requests)


def test_control_loop_provenance(benchmark, bench_json):
    """Same loop with the flight recorder chaining every epoch."""
    requests = benchmark(_simulate_control, True)
    assert requests > 0
    _record(benchmark, bench_json, "requests_per_sec_control_provenance",
            requests)
