"""Sweep executor + solver memoization benchmarks (PR 2 performance layer).

Two headline numbers, both exported to ``BENCH_sweep.json``:

* parallel vs serial wall-clock for a multi-seed figure sweep (the
  speedup *assertion* lives in ``tests/test_parallel.py`` with a floor
  scaled to the host's core count; this bench records what the current
  host does, including the per-effective-core normalization);
* solver-cache hit rate for a steady-demand adaptive scenario — repeated
  epochs assemble identical LP instances, which the
  :class:`~repro.core.optimizer.cache.SolverCache` replays instead of
  re-solving.
"""

import os
import time

from repro.analysis.report import format_table
from repro.core.controller.global_controller import GlobalControllerConfig
from repro.core.controller.policy import SlatePolicy
from repro.experiments.harness import Scenario, run_policy
from repro.experiments.parallel import SweepExecutor, SweepUnit
from repro.experiments.scenarios import fig6a_how_much
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)

SWEEP_SEEDS = (42, 7, 101, 13)


def build_sweep_units(duration: float = 6.0) -> list:
    """A ≥8-unit sweep: fig6a at four seeds, both policies per seed."""
    units = []
    for seed in SWEEP_SEEDS:
        setup = fig6a_how_much(duration=duration, seed=seed)
        for policy in setup.policies:
            units.append(SweepUnit(setup.scenario, policy,
                                   label=f"fig6a:{seed}"))
    return units


def test_sweep_parallel_vs_serial(benchmark, report_sink, bench_json):
    """Wall-clock of the same sweep, serial vs the process pool."""
    units = build_sweep_units()
    parallel_workers = min(4, os.cpu_count() or 1)

    def run_both():
        serial = SweepExecutor(workers=1)
        serial_outcomes = serial.run_units(units)
        serial_seconds = serial.last_elapsed
        parallel = SweepExecutor(workers=parallel_workers)
        parallel_outcomes = parallel.run_units(units)
        parallel_seconds = parallel.last_elapsed
        return (serial_outcomes, serial_seconds,
                parallel_outcomes, parallel_seconds)

    (serial_outcomes, serial_seconds, parallel_outcomes,
     parallel_seconds) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # parallel output must be byte-identical to serial, in the same order
    assert len(serial_outcomes) == len(parallel_outcomes) == len(units)
    for ours, theirs in zip(serial_outcomes, parallel_outcomes):
        assert ours.policy == theirs.policy
        assert ours.latencies == theirs.latencies
        assert ours.egress_bytes == theirs.egress_bytes
        assert ours.egress_cost == theirs.egress_cost

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    rows = [["serial", 1, serial_seconds],
            ["parallel", parallel_workers, parallel_seconds]]
    text = format_table(
        ["mode", "workers", "wall-clock (s)"], rows,
        title=f"Sweep executor: {len(units)} units, speedup {speedup:.2f}x")
    report_sink("sweep_executor", text)
    # per-core scaling: a 4x speedup on 4 cores and a 1x "speedup" on a
    # 1-core host are both perfect scaling — recording the normalized row
    # keeps bench-diff meaningful when hosts change core counts
    effective_cores = min(parallel_workers, os.cpu_count() or 1)
    bench_json("sweep", {
        "sweep_units": len(units),
        "workers": parallel_workers,
        "cpu_count": os.cpu_count(),
        "effective_cores": effective_cores,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "speedup_per_effective_core": (speedup / effective_cores
                                       if effective_cores else 0.0),
    })


def steady_adaptive_scenario(duration: float = 16.0) -> tuple:
    """A steady-demand adaptive setup whose epochs repeat the same LP."""
    app = linear_chain_app(n_services=3, exec_time=0.008)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 120.0})
    scenario = Scenario(name="steady-adaptive", app=app,
                        deployment=deployment, demand=demand,
                        duration=duration, warmup=duration / 4,
                        seed=42, epoch=1.0)
    policy = SlatePolicy(
        GlobalControllerConfig(
            # trust the spec's compute times so only demand moves between
            # epochs, and quantize demand so telemetry jitter below 25 rps
            # does not fabricate a numerically new TE instance each epoch
            learn_profiles=False,
            demand_quantum=25.0,
        ),
        adaptive=True)
    return scenario, policy


def test_adaptive_solver_cache_hit_rate(benchmark, report_sink, bench_json):
    """≥50% of steady-demand epochs replay a memoized solve."""
    scenario, policy = steady_adaptive_scenario()

    def run():
        started = time.perf_counter()
        run_policy(scenario, policy)
        elapsed = time.perf_counter() - started
        return policy.controller.solver_cache, elapsed

    cache, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = cache.stats()
    solves = stats["hits"] + stats["misses"]
    rows = [[key, value] for key, value in sorted(stats.items())]
    rows.append(["epoch solves", solves])
    rows.append(["run wall-clock (s)", elapsed])
    text = format_table(
        ["metric", "value"], rows,
        title="Solver memoization on a steady-demand adaptive run "
              f"(epoch={scenario.epoch}s, duration={scenario.duration}s)")
    report_sink("solver_cache", text)
    bench_json("sweep", {
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_hit_rate": stats["hit_rate"],
        "adaptive_epoch_solves": solves,
        "adaptive_solves_per_sec": solves / elapsed if elapsed else 0.0,
    })

    assert solves >= 8, "scenario too short to exercise the epoch loop"
    assert stats["hit_rate"] >= 0.5, stats
