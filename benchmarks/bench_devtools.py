"""Devtools wall-time: the lint pass and the whole-program analyzer.

Both run in `make check` on every CI build, so their cost is part of the
edit-test loop budget. The headline keys in ``BENCH_devtools.json`` are
wall-clock seconds over the real ``src`` tree (``lint_seconds``,
``analyze_seconds``) — tracked across PRs with a wide diff band, since
analysis time grows with the tree.

The analyzer parses everything once and runs fixpoints over ~900
functions, so it is benchmarked with a single round to keep the smoke
subset under budget.
"""

from pathlib import Path

from repro.devtools import run_analysis
from repro.devtools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _lint_tree():
    return lint_paths([SRC])


def _analyze_tree():
    _, result = run_analysis([SRC])
    return result


def test_lint_wall_time(benchmark, bench_json):
    """File-local AST lint over src (the `make lint` hot path)."""
    findings = benchmark.pedantic(_lint_tree, rounds=3, iterations=1)
    assert not findings   # the tree lints clean
    if benchmark.stats is not None:
        bench_json("devtools", {
            "lint_seconds": benchmark.stats.stats.mean,
        })


def test_analyze_wall_time(benchmark, bench_json):
    """Whole-program flow analysis over src (parse + 3 passes)."""
    result = benchmark.pedantic(_analyze_tree, rounds=1, iterations=1)
    assert result.stats["modules"] > 50   # really analyzed the tree
    if benchmark.stats is not None:
        bench_json("devtools", {
            "analyze_seconds": benchmark.stats.stats.mean,
            "analyze_modules": result.stats["modules"],
            "analyze_functions": result.stats["functions"],
        })
