"""Resilience under the §5 campaign: outage + WAN partition, three policies.

One campaign — Global Controller outage overlapping a full west<->east
partition — run under SLATE-with-fallback, static Waterfall, and static
locality failover. Per policy we record the p95 during the fault window,
failed/hung requests, and egress cost; for SLATE also the resilience
detection/recovery times against an unfaulted twin. All of it lands in
``BENCH_chaos.json`` so ``repro obs diff`` gates the trajectory in CI.

A partition blackholes cross-cluster calls, so every run gets a
:class:`~repro.sim.runner.TimeoutPolicy`: a call into the partition times
out and retries — excluding the dead cluster — rather than hanging.
"""

from repro.analysis.report import format_table
from repro.baselines.locality import LocalityFailoverPolicy
from repro.baselines.waterfall import WaterfallConfig, WaterfallPolicy
from repro.chaos import (ControlPlaneOutage, FaultPlan, WanFault, run_chaos)
from repro.core.controller.global_controller import GlobalControllerConfig
from repro.core.controller.policy import SlatePolicy
from repro.experiments.harness import Scenario
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import TimeoutPolicy

_DURATION = 30.0
_FAULT_START = 8.0
_FAULT_DURATION = 10.0


def _scenario() -> Scenario:
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 480.0,
                           ("default", "east"): 100.0})
    return Scenario(name="bench-chaos", app=app, deployment=deployment,
                    demand=demand, duration=_DURATION,
                    warmup=_DURATION / 6, seed=42, epoch=2.0)


def _plan() -> FaultPlan:
    return FaultPlan((
        ControlPlaneOutage(start=_FAULT_START, duration=_FAULT_DURATION),
        WanFault(start=_FAULT_START, duration=_FAULT_DURATION,
                 src="west", dst="east", partition=True),
    ))


def _policies(scenario: Scenario) -> dict:
    waterfall = WaterfallPolicy(WaterfallConfig.from_deployment(
        scenario.app, scenario.deployment, threshold_rho=0.98))
    return {
        "slate_fallback": (SlatePolicy(
            GlobalControllerConfig(rho_max=0.95, learn_profiles=False),
            adaptive=True), dict(fallback="locality", max_rule_age=5.0)),
        "waterfall": (waterfall, {}),
        "locality": (LocalityFailoverPolicy(), {}),
    }


def _p95(values) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _fault_window_p95(result) -> float:
    return _p95([lat for t, lat in result.samples
                 if lat is not None
                 and _FAULT_START <= t < _FAULT_START + _FAULT_DURATION])


def test_chaos_campaign(benchmark, report_sink, bench_json):
    """The outage+partition campaign under all three policies."""
    scenario = _scenario()
    plan = _plan()
    timeouts = TimeoutPolicy(call_timeout=0.5, max_attempts=3)

    def run_all():
        out = {}
        for label, (policy, kwargs) in _policies(scenario).items():
            out[label] = run_chaos(scenario, policy, plan,
                                   timeouts=timeouts, **kwargs)
        # unfaulted twin for resilience scoring (fresh policy: the faulted
        # SLATE instance has learned state from its own run)
        twin_policy = SlatePolicy(
            GlobalControllerConfig(rho_max=0.95, learn_profiles=False),
            adaptive=True)
        baseline = run_chaos(scenario, twin_policy, timeouts=timeouts)
        return out, baseline

    results, baseline = benchmark.pedantic(run_all, rounds=1, iterations=1)

    metrics = {}
    rows = []
    for label, result in results.items():
        fault_p95 = _fault_window_p95(result)
        failed = sum(1 for _, lat in result.samples if lat is None)
        metrics[f"{label}_fault_p95_ms"] = fault_p95 * 1000
        metrics[f"{label}_failed"] = failed
        metrics[f"{label}_hung"] = result.hung_requests
        metrics[f"{label}_egress_cost"] = result.egress_cost
        rows.append([label, fault_p95 * 1000, failed, result.hung_requests,
                     result.egress_cost])

    slate = results["slate_fallback"]
    resilience = slate.resilience(baseline)
    outage = next(e for e in resilience.episodes
                  if e.kind == "ControlPlaneOutage")
    assert slate.fallback_trips, "stale-rule guard never tripped"
    assert outage.detection_seconds is not None
    metrics["slate_detection_seconds"] = outage.detection_seconds
    metrics["slate_recovery_seconds"] = outage.recovery_seconds
    metrics["slate_reconciliations"] = sum(
        c.reconciliations for c in slate.controllers.values())

    text = format_table(
        ["policy", "fault p95 (ms)", "failed", "hung", "egress ($)"], rows,
        title=f"Chaos campaign: outage+partition "
              f"[{_FAULT_START:g}s, {_FAULT_START + _FAULT_DURATION:g}s)")
    report_sink("chaos_campaign", text)
    if benchmark.stats is not None:
        metrics["campaign_wall_seconds"] = benchmark.stats.stats.mean
    bench_json("chaos", metrics)
