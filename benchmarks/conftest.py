"""Benchmark harness support: result rendering and persistence.

Each bench regenerates one of the paper's figures (see DESIGN.md §3),
prints the series/rows, and writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report_sink():
    """Write a rendered report to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return save
