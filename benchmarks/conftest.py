"""Benchmark harness support: result rendering and persistence.

Each bench regenerates one of the paper's figures (see DESIGN.md §3),
prints the series/rows, and writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))   # noqa: E402
from reporting import update_bench_json   # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report_sink():
    """Write a rendered report to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return save


@pytest.fixture
def bench_json():
    """Merge machine-readable metrics into benchmarks/results/BENCH_<name>.json.

    The JSON artifacts are the cross-PR perf trajectory (events/sec,
    solve/sec, cache hit rate, sweep wall-clock, worker count); see
    benchmarks/reporting.py for the schema conventions.
    """

    def save(name: str, metrics: dict) -> None:
        path = update_bench_json(name, metrics)
        print(f"[bench json updated: {path}]")

    return save
