"""Microbenchmarks: substrate throughput and optimizer formulation cost.

Not a paper figure — these keep the simulator and LP builder honest so the
figure benches stay fast enough to iterate on. Each test also records its
headline number into ``BENCH_engine.json`` (events/sec, simulated
requests/sec, builds/sec, solves/sec) so the perf trajectory is tracked
across PRs. Pre-PR-2 baseline for reference: ~1.08M events/sec.
"""

from repro.core.optimizer import build_model, solve_model, TEProblem
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.engine import Simulator
from repro.sim.runner import MeshSimulation


def test_engine_event_throughput(benchmark, bench_json):
    """Raw event-loop throughput (events/second)."""
    def run():
        sim = Simulator()

        def tick(n):
            if n:
                sim.schedule(0.001, tick, n - 1)

        tick_count = 20_000
        sim.schedule(0.0, tick, tick_count)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 20_001
    if benchmark.stats is not None:   # absent under --benchmark-disable
        bench_json("engine", {
            "events_per_sec": events / benchmark.stats.stats.mean,
            "events_per_sec_best": events / benchmark.stats.stats.min,
        })


def test_simulation_requests_per_second(benchmark, bench_json):
    """End-to-end simulated requests per wall-second on the chain app."""
    app = linear_chain_app()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})

    def run():
        sim = MeshSimulation(app, deployment, seed=1)
        sim.run(demand, duration=5.0)
        return len(sim.telemetry.requests)

    completed = benchmark(run)
    assert completed > 1500
    if benchmark.stats is not None:
        bench_json("engine", {
            "sim_requests_per_sec": completed / benchmark.stats.stats.mean,
        })


def test_lp_build_cost(benchmark, bench_json):
    """Formulation (matrix assembly) cost for a mid-size instance."""
    app = linear_chain_app(n_services=5)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    problem = TEProblem.from_specs(app, deployment, demand)
    model = benchmark(lambda: build_model(problem))
    assert model.n_variables > 0
    if benchmark.stats is not None:
        bench_json("engine", {
            "lp_builds_per_sec": 1.0 / benchmark.stats.stats.mean,
        })


def test_lp_solve_cost(benchmark, bench_json):
    """HiGHS solve cost for the same instance."""
    app = linear_chain_app(n_services=5)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 600.0,
                           ("default", "east"): 100.0})
    problem = TEProblem.from_specs(app, deployment, demand)
    model = build_model(problem)
    result = benchmark(lambda: solve_model(model))
    assert result.ok
    if benchmark.stats is not None:
        bench_json("engine", {
            "lp_solves_per_sec": 1.0 / benchmark.stats.stats.mean,
        })
