"""Microbenchmarks: substrate throughput and optimizer formulation cost.

Not a paper figure — these keep the simulator and LP builder honest so the
figure benches stay fast enough to iterate on.
"""

from repro.core.optimizer import build_model, solve_model, TEProblem
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.engine import Simulator
from repro.sim.runner import MeshSimulation


def test_engine_event_throughput(benchmark):
    """Raw event-loop throughput (events/second)."""
    def run():
        sim = Simulator()

        def tick(n):
            if n:
                sim.schedule(0.001, tick, n - 1)

        tick_count = 20_000
        sim.schedule(0.0, tick, tick_count)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 20_001


def test_simulation_requests_per_second(benchmark):
    """End-to-end simulated requests per wall-second on the chain app."""
    app = linear_chain_app()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})

    def run():
        sim = MeshSimulation(app, deployment, seed=1)
        sim.run(demand, duration=5.0)
        return len(sim.telemetry.requests)

    completed = benchmark(run)
    assert completed > 1500


def test_lp_build_cost(benchmark):
    """Formulation (matrix assembly) cost for a mid-size instance."""
    app = linear_chain_app(n_services=5)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 300.0,
                           ("default", "east"): 100.0})
    problem = TEProblem.from_specs(app, deployment, demand)
    model = benchmark(lambda: build_model(problem))
    assert model.n_variables > 0


def test_lp_solve_cost(benchmark):
    """HiGHS solve cost for the same instance."""
    app = linear_chain_app(n_services=5)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 600.0,
                           ("default", "east"): 100.0})
    problem = TEProblem.from_specs(app, deployment, demand)
    model = build_model(problem)
    result = benchmark(lambda: solve_model(model))
    assert result.ok
