"""Seed robustness: the figure results are not one lucky sample.

Every fig6 bench runs at a fixed seed for reproducibility; this bench
re-runs the two headline scenarios at several seeds and reports the
per-seed latency ratios. The *direction* (SLATE wins) must hold at every
seed; the magnitude varies with queueing noise, which is exactly what the
per-seed spread quantifies.
"""

import statistics

from repro.analysis.report import format_table
from repro.experiments.harness import compare_policies
from repro.experiments.scenarios import fig6a_how_much, fig6d_traffic_classes

SEEDS = (42, 7, 101)


def run_all():
    rows = []
    ratios = {"fig6a": [], "fig6d": []}
    for seed in SEEDS:
        for name, setup in (
                ("fig6a", fig6a_how_much(duration=25.0, seed=seed)),
                ("fig6d", fig6d_traffic_classes(duration=25.0, seed=seed))):
            comparison = compare_policies(setup.scenario, setup.policies)
            ratio = comparison.latency_ratio("waterfall", "slate")
            ratios[name].append(ratio)
            rows.append([name, seed, ratio])
    return rows, ratios


def test_figures_hold_across_seeds(benchmark, report_sink):
    rows, ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)
    summary = [
        [name, min(values), statistics.mean(values), max(values)]
        for name, values in sorted(ratios.items())
    ]
    text = "\n".join([
        format_table(["scenario", "seed", "waterfall/slate mean ratio"],
                     rows, title="Per-seed latency ratios"),
        "",
        format_table(["scenario", "min", "mean", "max"], summary,
                     title="Across-seed spread"),
    ])
    report_sink("seed_robustness", text)

    # direction holds at every seed
    assert all(r > 1.3 for r in ratios["fig6a"]), ratios["fig6a"]
    assert all(r > 1.02 for r in ratios["fig6d"]), ratios["fig6d"]
