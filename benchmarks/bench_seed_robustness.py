"""Seed robustness: the figure results are not one lucky sample.

Every fig6 bench runs at a fixed seed for reproducibility; this bench
re-runs the two headline scenarios at several seeds and reports the
per-seed latency ratios. The *direction* (SLATE wins) must hold at every
seed; the magnitude varies with queueing noise, which is exactly what the
per-seed spread quantifies.

The scenario × seed × policy grid is fanned out through the
:class:`~repro.experiments.parallel.SweepExecutor` (worker count from
``REPRO_WORKERS`` / CPU count); results are order-deterministic, so the
tables are byte-identical at any worker count.
"""

import statistics

from repro.analysis.compare import Comparison
from repro.analysis.report import format_table
from repro.experiments.parallel import SweepExecutor, SweepUnit
from repro.experiments.scenarios import fig6a_how_much, fig6d_traffic_classes

SEEDS = (42, 7, 101)
SCENARIOS = ("fig6a", "fig6d")


def build_units():
    units = []
    for seed in SEEDS:
        for name, setup in (
                ("fig6a", fig6a_how_much(duration=25.0, seed=seed)),
                ("fig6d", fig6d_traffic_classes(duration=25.0, seed=seed))):
            for policy in setup.policies:
                units.append(SweepUnit(setup.scenario, policy,
                                       label=f"{name}:{seed}"))
    return units


def run_all(executor=None):
    executor = executor or SweepExecutor()
    units = build_units()
    outcomes = executor.run_units(units)
    comparisons = {}
    for unit, outcome in zip(units, outcomes):
        comparisons.setdefault(unit.label,
                               Comparison(unit.label)).add(outcome)
    rows = []
    ratios = {name: [] for name in SCENARIOS}
    for seed in SEEDS:
        for name in SCENARIOS:
            comparison = comparisons[f"{name}:{seed}"]
            ratio = comparison.latency_ratio("waterfall", "slate")
            ratios[name].append(ratio)
            rows.append([name, seed, ratio])
    return rows, ratios


def test_figures_hold_across_seeds(benchmark, report_sink, bench_json):
    executor = SweepExecutor()
    rows, ratios = benchmark.pedantic(run_all, args=(executor,),
                                      rounds=1, iterations=1)
    summary = [
        [name, min(values), statistics.mean(values), max(values)]
        for name, values in sorted(ratios.items())
    ]
    text = "\n".join([
        format_table(["scenario", "seed", "waterfall/slate mean ratio"],
                     rows, title="Per-seed latency ratios"),
        "",
        format_table(["scenario", "min", "mean", "max"], summary,
                     title="Across-seed spread"),
    ])
    report_sink("seed_robustness", text)
    bench_json("sweep", {
        "seed_robustness_units": len(SEEDS) * len(SCENARIOS) * 2,
        "seed_robustness_seconds": executor.last_elapsed,
        "seed_robustness_workers": executor.workers,
    })

    # direction holds at every seed
    assert all(r > 1.3 for r in ratios["fig6a"]), ratios["fig6a"]
    assert all(r > 1.02 for r in ratios["fig6d"]), ratios["fig6d"]
