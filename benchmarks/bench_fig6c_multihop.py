"""Fig. 6c — "Where in the topology to route?" (§4.3) + 11.6x egress claim.

Anomaly-detection app FR→MP→DB with DB absent in West and a DB response
~10x the frontend response. Locality failover and Waterfall cut at MP→DB;
SLATE cuts at FR→MP, saving ~10x egress (paper measured 11.6x on their
sizes) and avoiding West's tight MP pool.
"""

from repro.analysis.report import format_cdf_series, format_comparison
from repro.experiments.harness import compare_policies
from repro.experiments.scenarios import fig6c_multihop, locality_failover_policy


def run_fig6c():
    setup = fig6c_multihop()
    policies = setup.policies + [locality_failover_policy()]
    return compare_policies(setup.scenario, policies)


def test_fig6c_multihop(benchmark, report_sink):
    comparison = benchmark.pedantic(run_fig6c, rounds=1, iterations=1)
    egress_wf = comparison.egress_cost_ratio("waterfall", "slate")
    egress_lf = comparison.egress_cost_ratio("locality-failover", "slate")
    text = "\n".join([
        format_cdf_series(comparison.cdfs(),
                          title="Fig. 6c latency CDF (multi-hop)"),
        "",
        format_comparison(comparison, baseline="waterfall", target="slate"),
        f"egress ratio locality-failover/slate: {egress_lf:.2f}x "
        "(paper: 11.6x with their response sizes)",
    ])
    report_sink("fig6c_multihop", text)

    # paper shape: ~order-of-magnitude egress saving, latency no worse
    assert egress_wf > 5.0
    assert egress_lf > 5.0
    assert comparison.latency_ratio("waterfall", "slate") > 0.95
    assert comparison.latency_ratio("locality-failover", "slate") > 1.0
