"""Fig. 4 — Empirical cross-cluster routing threshold (§4.1).

Two clusters; East held at 100 RPS; West swept 100→1000 RPS; WAN one-way
latency in {5, 25, 50} ms. At each point SLATE's optimizer is solved and the
locally served RPS at West reported. Paper shape: each curve follows the
100%-local line (y = x) until a break point, and the break point moves to
lower loads as the network gets faster (cheaper to offload sooner).
"""

from repro.analysis.report import format_table
from repro.core.controller.global_controller import GlobalController
from repro.experiments.scenarios import fig4_offload_threshold_problem

NETWORK_LATENCIES_MS = (5.0, 25.0, 50.0)
WEST_LOADS = tuple(float(rps) for rps in range(100, 1001, 100))


def sweep():
    series = {}
    for one_way_ms in NETWORK_LATENCIES_MS:
        local_rps = []
        for west_rps in WEST_LOADS:
            scenario = fig4_offload_threshold_problem(one_way_ms, west_rps)
            result = GlobalController.oracle(
                scenario.app, scenario.deployment, scenario.demand)
            local_rps.append(
                result.ingress_local_fraction("default", "west") * west_rps)
        series[one_way_ms] = local_rps
    return series


def break_point(series_for_latency):
    """First swept load where the optimizer serves < 99.9% locally."""
    for west_rps, local in zip(WEST_LOADS, series_for_latency):
        if local < 0.999 * west_rps:
            return west_rps
    return float("inf")


def test_fig4_offload_threshold(benchmark, report_sink):
    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = (["west load (rps)", "100% local"]
               + [f"local rps @ {ms:g}ms" for ms in NETWORK_LATENCIES_MS])
    rows = []
    for index, west_rps in enumerate(WEST_LOADS):
        rows.append([west_rps, west_rps]
                    + [series[ms][index] for ms in NETWORK_LATENCIES_MS])
    text = format_table(
        headers, rows,
        title="Fig. 4: locally served RPS at West vs offered load "
              "(east fixed at 100 RPS; red dotted line = '100% local')")
    breaks = {ms: break_point(series[ms]) for ms in NETWORK_LATENCIES_MS}
    text += "\nbreak points (first load with offloading): " + ", ".join(
        f"{ms:g}ms -> {bp:g} rps" for ms, bp in sorted(breaks.items()))
    report_sink("fig4_offload_threshold", text)

    # paper shape: faster networks offload earlier (or at worst equal)
    assert breaks[5.0] <= breaks[25.0] <= breaks[50.0]
    # and offloading does kick in within the swept range for every latency
    assert breaks[50.0] <= 1000.0
    # below the break point the curve lies on y = x
    for ms in NETWORK_LATENCIES_MS:
        for west_rps, local in zip(WEST_LOADS, series[ms]):
            if west_rps < breaks[ms]:
                assert local == __import__("pytest").approx(west_rps,
                                                            rel=1e-3)
