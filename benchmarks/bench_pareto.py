"""§4.1 cost-latency tradeoff: "if an administrator values cost over
latency, an optimal request routing system (jointly optimizing latency and
cost) should reflect it by keeping more traffic local."

Sweeps the optimizer's ``cost_weight`` on the Fig. 6c (multi-hop) scenario
and reports the (mean latency, egress $/hour) frontier. Expected shape:
latency is non-decreasing and egress cost non-increasing in the weight —
the knob trades one for the other monotonically, ending at the cheap
FR→MP cut.

Each weight is an independent solve + fluid evaluation, so the sweep runs
through :meth:`~repro.experiments.parallel.SweepExecutor.map` (the point
function rebuilds the deterministic scenario inside the worker).
"""

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.core.optimizer import TEProblem, solve
from repro.experiments.parallel import SweepExecutor
from repro.experiments.scenarios import fig6c_multihop

COST_WEIGHTS = (0.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0)


def pareto_point(weight):
    """Solve fig6c at one cost weight (top-level so it pickles to workers)."""
    scenario = fig6c_multihop().scenario
    problem = TEProblem.from_specs(
        scenario.app, scenario.deployment, scenario.demand,
        cost_weight=weight)
    result = solve(problem)
    prediction = evaluate_rules(scenario.app, scenario.deployment,
                                scenario.demand, result.rules())
    return [weight, prediction.mean_latency * 1000,
            prediction.egress_cost_rate * 3600,
            prediction.cross_cluster_rate()]


def sweep(executor=None):
    executor = executor or SweepExecutor()
    return executor.map(pareto_point, COST_WEIGHTS)


def test_cost_latency_pareto(benchmark, report_sink):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["cost_weight", "mean latency (ms)", "egress ($/hour)",
         "crossings (rps)"],
        rows,
        title="Cost-latency Pareto frontier (fig6c scenario)")
    report_sink("pareto_cost_latency", text)

    latencies = [row[1] for row in rows]
    costs = [row[2] for row in rows]
    # monotone frontier (within LP degeneracy noise)
    for earlier, later in zip(costs, costs[1:]):
        assert later <= earlier * 1.001
    for earlier, later in zip(latencies, latencies[1:]):
        assert later >= earlier * 0.999
    # the knob is real: the extremes differ materially in cost
    assert costs[0] > costs[-1] * 2
