"""§4.1 cost-latency tradeoff: "if an administrator values cost over
latency, an optimal request routing system (jointly optimizing latency and
cost) should reflect it by keeping more traffic local."

Sweeps the optimizer's ``cost_weight`` on the Fig. 6c (multi-hop) scenario
and reports the (mean latency, egress $/hour) frontier. Expected shape:
latency is non-decreasing and egress cost non-increasing in the weight —
the knob trades one for the other monotonically, ending at the cheap
FR→MP cut.
"""

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.core.optimizer import TEProblem, solve
from repro.experiments.scenarios import fig6c_multihop

COST_WEIGHTS = (0.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0)


def sweep():
    scenario = fig6c_multihop().scenario
    rows = []
    for weight in COST_WEIGHTS:
        problem = TEProblem.from_specs(
            scenario.app, scenario.deployment, scenario.demand,
            cost_weight=weight)
        result = solve(problem)
        prediction = evaluate_rules(scenario.app, scenario.deployment,
                                    scenario.demand, result.rules())
        rows.append([weight, prediction.mean_latency * 1000,
                     prediction.egress_cost_rate * 3600,
                     prediction.cross_cluster_rate()])
    return rows


def test_cost_latency_pareto(benchmark, report_sink):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["cost_weight", "mean latency (ms)", "egress ($/hour)",
         "crossings (rps)"],
        rows,
        title="Cost-latency Pareto frontier (fig6c scenario)")
    report_sink("pareto_cost_latency", text)

    latencies = [row[1] for row in rows]
    costs = [row[2] for row in rows]
    # monotone frontier (within LP degeneracy noise)
    for earlier, later in zip(costs, costs[1:]):
        assert later <= earlier * 1.001
    for earlier, later in zip(latencies, latencies[1:]):
        assert later >= earlier * 0.999
    # the knob is real: the extremes differ materially in cost
    assert costs[0] > costs[-1] * 2
