"""Hybrid-fidelity substrate benchmarks (ISSUE 10 tentpole acceptance).

Two headline measurements, both exported to ``BENCH_fluid.json``:

* a diurnal day at **>= 1M simulated RPS** in hybrid fidelity — bulk
  traffic as fluid flows, a deterministic sampled slice through the real
  event-level proxies/pools/gateways for tail latencies — with the
  simulated-requests-per-wall-second rate the fluid substrate exists to
  deliver;
* sampled-slice p95 parity against event-level truth. Full event-level
  simulation at 1M RPS is out of reach by construction (that is the
  point of the substrate), so truth comes from a utilization-matched
  twin: the same diurnal shape, exec times, WAN matrix, and peak pool
  utilization (~0.66) at 1/100 the demand and replicas, run event-level.
  The stated band: hybrid sampled p95 within **20%** of event truth,
  asserted here and regression-gated by ``make bench-diff`` via the
  ``*_rel_error`` tolerance.
"""

from repro.analysis.report import format_table
from repro.experiments.harness import run_policy
from repro.experiments.scenarios import diurnal_control_setup
from repro.obs.timeseries import percentile

#: per-cluster base RPS for the million-scale day (two clusters)
MILLION_BASE_RPS = 525_000.0
MILLION_REPLICAS = 12_000          # peak utilization ~0.66
#: utilization-matched event-level twin: same shape at 1/100 scale
TWIN_SCALE = 100.0
#: acceptance band on |hybrid p95 - event p95| / event p95
P95_BAND = 0.20

DURATION = 6.0                     # one compressed diurnal period
SAMPLE_RATE = 2e-4                 # million-scale sampled slice
TWIN_SAMPLE_RATE = 0.05            # twin-scale sampled slice


def _run(setup, fidelity, **kwargs):
    import time
    started = time.perf_counter()
    outcome = run_policy(setup.scenario, setup.policy,
                         timeline=setup.timeline, fidelity=fidelity,
                         **kwargs)
    return outcome, time.perf_counter() - started


def test_fluid_million_rps_day(benchmark, report_sink, bench_json):
    """A >= 1M simulated RPS diurnal day, hybrid and pure fluid."""
    total_rps = 2 * MILLION_BASE_RPS
    assert total_rps >= 1e6
    offered = total_rps * DURATION

    def run_day():
        setup = diurnal_control_setup(base_rps=MILLION_BASE_RPS,
                                      duration=DURATION,
                                      replicas=MILLION_REPLICAS)
        fluid_outcome, fluid_wall = _run(setup, "fluid")
        setup = diurnal_control_setup(base_rps=MILLION_BASE_RPS,
                                      duration=DURATION,
                                      replicas=MILLION_REPLICAS)
        hybrid_outcome, hybrid_wall = _run(setup, "hybrid",
                                           sample_rate=SAMPLE_RATE)
        return fluid_outcome, fluid_wall, hybrid_outcome, hybrid_wall

    (fluid_outcome, fluid_wall, hybrid_outcome,
     hybrid_wall) = benchmark.pedantic(run_day, rounds=1, iterations=1)

    sampled = hybrid_outcome.latencies
    assert sampled, "hybrid run produced no sampled-slice latencies"
    hybrid_p95 = percentile(sampled, 0.95)

    rows = [["fluid", fluid_wall, offered / fluid_wall, 0],
            ["hybrid", hybrid_wall, offered / hybrid_wall, len(sampled)]]
    report_sink("fluid_million_rps", format_table(
        ["fidelity", "wall (s)", "simulated req/s", "sampled n"], rows,
        title=f"Diurnal day at {total_rps:,.0f} simulated RPS"))
    bench_json("fluid", {
        "simulated_rps": total_rps,
        "day_duration_sim_seconds": DURATION,
        "fluid_wall_seconds": fluid_wall,
        "hybrid_wall_seconds": hybrid_wall,
        "fluid_requests_per_sec": offered / fluid_wall,
        "hybrid_requests_per_sec": offered / hybrid_wall,
        "hybrid_sampled_requests": len(sampled),
        "hybrid_sampled_p95_seconds": hybrid_p95,
    })


def test_hybrid_p95_matches_event_truth(benchmark, report_sink,
                                        bench_json):
    """Sampled-slice p95 within P95_BAND of event-level truth."""
    base = MILLION_BASE_RPS / TWIN_SCALE
    replicas = round(MILLION_REPLICAS / TWIN_SCALE)

    def run_all():
        setup = diurnal_control_setup(base_rps=base, duration=DURATION,
                                      replicas=replicas)
        event_outcome, event_wall = _run(setup, "event")
        setup = diurnal_control_setup(base_rps=base, duration=DURATION,
                                      replicas=replicas)
        hybrid_outcome, hybrid_wall = _run(setup, "hybrid",
                                           sample_rate=TWIN_SAMPLE_RATE)
        setup = diurnal_control_setup(base_rps=MILLION_BASE_RPS,
                                      duration=DURATION,
                                      replicas=MILLION_REPLICAS)
        million_outcome, _ = _run(setup, "hybrid",
                                  sample_rate=SAMPLE_RATE)
        return (event_outcome, event_wall, hybrid_outcome, hybrid_wall,
                million_outcome)

    (event_outcome, event_wall, hybrid_outcome, hybrid_wall,
     million_outcome) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    event_p95 = percentile(event_outcome.latencies, 0.95)
    hybrid_p95 = percentile(hybrid_outcome.latencies, 0.95)
    million_p95 = percentile(million_outcome.latencies, 0.95)
    assert event_p95 > 0

    twin_error = abs(hybrid_p95 - event_p95) / event_p95
    million_error = abs(million_p95 - event_p95) / event_p95
    assert twin_error <= P95_BAND, (
        f"hybrid twin p95 {hybrid_p95:.4f}s vs event truth "
        f"{event_p95:.4f}s: {twin_error:.1%} > {P95_BAND:.0%} band")
    assert million_error <= P95_BAND, (
        f"million-scale hybrid p95 {million_p95:.4f}s vs event truth "
        f"{event_p95:.4f}s: {million_error:.1%} > {P95_BAND:.0%} band")

    speedup = event_wall / hybrid_wall if hybrid_wall else 0.0
    rows = [["event", len(event_outcome.latencies), event_p95 * 1000],
            ["hybrid twin", len(hybrid_outcome.latencies),
             hybrid_p95 * 1000],
            ["hybrid @1M RPS", len(million_outcome.latencies),
             million_p95 * 1000]]
    report_sink("fluid_p95_parity", format_table(
        ["run", "latencies n", "p95 (ms)"], rows,
        title=f"Sampled-slice p95 vs event truth (band {P95_BAND:.0%}, "
              f"twin speedup {speedup:.1f}x)"))
    bench_json("fluid", {
        "event_twin_p95_seconds": event_p95,
        "hybrid_twin_p95_seconds": hybrid_p95,
        "hybrid_million_p95_seconds": million_p95,
        "hybrid_p95_rel_error": twin_error,
        "hybrid_million_p95_rel_error": million_error,
        "fluid_event_speedup": speedup,
        "p95_band": P95_BAND,
    })
