"""§3.3 "Latency Modeling" validation: does the M/M/c model track reality?

SLATE's whole premise is that "with appropriate request classification, the
average behavior can be predicted" by a queueing model. This bench sweeps
offered load across the utilization range and compares the analytic
prediction (fluid model on the same rules) against the simulator's measured
means — the within-repo analogue of validating the latency model against a
testbed. Errors should stay within sampling noise until deep saturation.
"""

from repro.analysis.fluid import evaluate_rules
from repro.analysis.report import format_table
from repro.core.rules import RuleSet, RoutingRule
from repro.mesh.routing_table import WILDCARD_CLASS
from repro.sim import (DemandMatrix, DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation

LOADS = (100.0, 200.0, 300.0, 400.0, 450.0, 475.0)
DURATION = 120.0


def local_rules(app):
    rules = RuleSet()
    for service in app.services():
        for cluster in ("west", "east"):
            rules.add(RoutingRule.make(service, WILDCARD_CLASS, cluster,
                                       {cluster: 1.0}))
    return rules


def sweep():
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    rules = local_rules(app)
    rows = []
    for west_rps in LOADS:
        demand = DemandMatrix({("default", "west"): west_rps})
        predicted = evaluate_rules(app, deployment, demand,
                                   rules).mean_latency
        sim = MeshSimulation(app, deployment, seed=37)
        rules.apply(sim.table)
        sim.run(demand, duration=DURATION)
        lats = sim.telemetry.latencies(after=DURATION / 6)
        measured = sum(lats) / len(lats)
        rho = west_rps * 0.010 / 5
        error = abs(measured - predicted) / predicted
        rows.append([west_rps, rho, predicted * 1000, measured * 1000,
                     error * 100])
    return rows


def test_latency_model_accuracy(benchmark, report_sink):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["west load (rps)", "utilization", "M/M/c predicted (ms)",
         "simulated (ms)", "error (%)"],
        rows,
        title="Latency-model validation: analytic prediction vs simulation")
    report_sink("model_accuracy", text)

    # the model premise: accurate through the operating range...
    for west_rps, rho, predicted, measured, error in rows:
        if rho <= 0.92:
            assert error < 10.0, f"{error:.1f}% error at rho={rho}"
    # ...and still sane (same order) at deep saturation, where finite-run
    # sampling noise and slow mixing dominate
    assert rows[-1][4] < 50.0
