"""§5 "Scalability & fast reaction": how fast the control loop absorbs a
microburst, as a function of epoch length.

"The request routing system for user-facing, latency-sensitive applications
must be able to react to microbursts." We stage a step burst and measure,
for several controller epoch lengths, the time until per-epoch mean latency
returns below a recovery threshold. Expected shape: recovery time grows
with the epoch length (slower telemetry → slower reaction), and even the
slowest SLATE loop is far faster than autoscaler timescales (tens of
seconds, see bench_autoscaler.py).
"""

import statistics

from repro.analysis.report import format_table
from repro.core.controller.global_controller import (GlobalController,
                                                     GlobalControllerConfig)
from repro.sim import (DeploymentSpec, linear_chain_app,
                       two_region_latency)
from repro.sim.runner import MeshSimulation
from repro.sim.workload import RateProfile, RateSegment, TrafficSource

BURST_AT = 20.0
DURATION = 90.0
RECOVERY_THRESHOLD = 0.120   # seconds of mean per-epoch latency
EPOCH_LENGTHS = (1.0, 2.0, 4.0, 8.0)


def run_with_epoch(epoch: float, seed: int = 23,
                   forecast: bool = False) -> float:
    """Return seconds from burst onset to sustained recovery."""
    app = linear_chain_app(n_services=3, exec_time=0.010)
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=5,
        latency=two_region_latency(25.0))
    sim = MeshSimulation(app, deployment, seed=seed)
    controller = GlobalController(
        app, deployment, GlobalControllerConfig(demand_alpha=0.8,
                                                forecast_demand=forecast))
    epoch_means: list[tuple[float, float]] = []

    def on_epoch(reports, simulation):
        lats = [lat for r in reports for lat in r.request_latencies]
        if lats:
            epoch_means.append((simulation.sim.now, statistics.mean(lats)))
        controller.observe(reports)
        result = controller.plan()
        if result is not None:
            result.rules().apply(simulation.table)

    profiles = {
        "west": RateProfile([RateSegment(0.0, BURST_AT, 250.0),
                             RateSegment(BURST_AT, DURATION, 650.0)]),
        "east": RateProfile.constant(100.0, DURATION),
    }
    for cluster, profile in profiles.items():
        TrafficSource(
            sim=sim.sim, profile=profile,
            attributes=app.classes["default"].attributes,
            ingress_cluster=cluster,
            accept=sim.gateways[cluster].accept,
            rng=sim.rngs.stream(f"arrivals/{cluster}"),
        ).start()

    boundary = epoch
    while boundary <= DURATION:
        sim.sim.schedule_at(boundary, sim._epoch_tick, on_epoch)
        boundary += epoch
    sim.sim.run(until=DURATION)
    sim.sim.run_until_idle()

    # recovery: first post-burst epoch under threshold with the next one
    # also under it (sustained, not a lucky window)
    post = [(t, m) for t, m in epoch_means if t > BURST_AT + epoch]
    for (t, mean), (_, next_mean) in zip(post, post[1:]):
        if mean < RECOVERY_THRESHOLD and next_mean < RECOVERY_THRESHOLD:
            return t - BURST_AT
    return float("inf")


def run_all():
    return {epoch: run_with_epoch(epoch) for epoch in EPOCH_LENGTHS}


def test_reaction_time_vs_epoch_length(benchmark, report_sink):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["epoch length (s)", "recovery time after burst (s)"],
        [[epoch, recovery] for epoch, recovery in sorted(results.items())],
        title="Control-loop reaction to a 250->650 RPS burst "
              f"(recovered = epoch mean < {RECOVERY_THRESHOLD * 1000:.0f} ms)")
    report_sink("reaction_time", text)

    # every loop recovers, and well inside autoscaler timescales (~45s+)
    assert all(recovery < 40.0 for recovery in results.values())
    # slower telemetry cannot beat the fastest loop by much
    assert results[8.0] >= results[1.0]


def test_predictive_planning_reacts_no_slower(benchmark, report_sink):
    """Reactive EWMA vs Holt-forecast planning on the same burst.

    With a step burst the forecaster cannot see the jump coming, but once
    the first post-burst epoch lands its trend term extrapolates the rise,
    so the predictive controller reaches a sufficient offload in at most
    as many epochs as the reactive one.
    """
    def run_both():
        return {
            "reactive (EWMA)": run_with_epoch(4.0, forecast=False),
            "predictive (Holt)": run_with_epoch(4.0, forecast=True),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = format_table(
        ["controller", "recovery time after burst (s)"],
        [[name, value] for name, value in results.items()],
        title="Reactive vs predictive demand estimation (4s epochs)")
    report_sink("reaction_predictive", text)
    assert results["predictive (Holt)"] <= results["reactive (EWMA)"]
