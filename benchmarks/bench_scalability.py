"""§5 "Scalability & fast reaction": optimizer solve time vs problem size.

"The optimization problem run by SLATE's controller expands with the number
of clusters, services, and traffic classes ... an optimization time on the
order of seconds for large-scale deployments is desirable."

Measures LP build+solve wall time as each dimension grows, on the seeded
synthetic topologies from :mod:`repro.experiments.scenarios` (so the same
instances are reachable from tests, benches, and the optimizer bench).
Assertions keep the reproduction honest (seconds, not minutes, at the
largest size) without being brittle about hardware.

The sweep now extends well past the paper's 4-region testbed: 32 clusters
of arc formulation here, and BENCH_optimizer.json carries the 100-cluster
path-formulation planet case.
"""

import time

from repro.analysis.report import format_table
from repro.core.optimizer import solve
from repro.experiments.parallel import SweepExecutor
from repro.experiments.scenarios import synthetic_te_problem


def synthetic_problem(n_clusters, n_services, n_classes,
                      rps_per_class=50.0):
    """The scaling-sweep instance family (seeded, fully replicated)."""
    return synthetic_te_problem(n_clusters, n_services, n_classes,
                                rps_per_class=rps_per_class,
                                replicas=max(4, n_classes * 2))


SIZES = [
    (2, 3, 1),
    (4, 6, 2),
    (8, 10, 4),
    (12, 15, 8),
    (16, 15, 8),
    (24, 15, 8),
    (32, 12, 8),
]


def solve_size(size):
    """Build + solve one synthetic instance (top-level so it pickles)."""
    n_clusters, n_services, n_classes = size
    problem = synthetic_problem(n_clusters, n_services, n_classes)
    started = time.perf_counter()
    result = solve(problem)
    elapsed = time.perf_counter() - started
    return [n_clusters, n_services, n_classes,
            n_clusters * n_services * n_classes,
            elapsed, result.solve_time]


def sweep(executor=None):
    executor = executor or SweepExecutor()
    return executor.map(solve_size, SIZES)


def test_optimizer_scalability(benchmark, report_sink):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["clusters", "services", "classes", "product",
         "build+solve (s)", "solve (s)"],
        rows, title="Optimizer scaling (LP, HiGHS)")
    report_sink("scalability", text)

    # §5's bar: "optimization time on the order of seconds" at scale
    largest = rows[-1]
    assert largest[4] < 10.0
    # every instance solved
    assert all(row[5] > 0 for row in rows)


def test_single_solve_latency(benchmark):
    """Microbenchmark: one mid-size solve (what an epoch costs)."""
    problem = synthetic_problem(4, 6, 2)
    result = benchmark(lambda: solve(problem))
    assert result.ok


def test_contraction_speedup(benchmark, report_sink):
    """§5 acceleration: contracted solves vs the full LP on a large fleet.

    16 clusters, 10 services, 4 classes. Contraction to 4 super-clusters
    should cut solve time substantially while staying near the full
    optimum (quality measured with the fluid model on the true topology).
    """
    from repro.analysis.fluid import evaluate_rules
    from repro.core.optimizer.contraction import solve_contracted
    from repro.sim.workload import DemandMatrix as DM

    problem = synthetic_problem(16, 10, 4)
    # skew the demand (alternating hot/cold clusters) so offloading is
    # actually required and contraction has an optimality gap to reveal
    skewed = {}
    for index, cluster in enumerate(problem.clusters):
        rps = 370.0 if index % 2 == 0 else 30.0
        for cls, workload in problem.workloads.items():
            workload.demand[cluster] = rps
            skewed[(cls, cluster)] = rps
    app_demand = DM(skewed)

    def app_and_deployment():
        # reconstruct spec objects for the fluid evaluation
        from repro.sim.apps import AppSpec
        from repro.sim.topology import ClusterSpec, DeploymentSpec
        app = AppSpec(name="synthetic", classes={
            name: workload.spec
            for name, workload in problem.workloads.items()})
        clusters = [
            ClusterSpec(cluster, {
                service: problem.replica_count(service, cluster)
                for service in sorted({s for w in problem.workloads.values()
                                       for s in w.spec.services()})
            }) for cluster in problem.clusters
        ]
        deployment = DeploymentSpec(clusters, problem.latency,
                                    problem.pricing)
        return app, deployment

    def run_all():
        import time as _time
        rows = []
        app, deployment = app_and_deployment()
        started = _time.perf_counter()
        full = solve(problem)
        full_time = _time.perf_counter() - started
        full_quality = evaluate_rules(app, deployment, app_demand,
                                      full.rules()).mean_latency
        rows.append(["full (16 clusters)", full_time, full_quality * 1000])
        for n_groups in (8, 4, 2):
            for expansion in ("affinity", "rebalance"):
                solution = solve_contracted(problem, n_groups,
                                            expansion=expansion)
                quality = evaluate_rules(app, deployment, app_demand,
                                         solution.rules).mean_latency
                rows.append([f"contracted to {n_groups} ({expansion})",
                             solution.total_time, quality * 1000])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["variant", "solve time (s)", "true mean latency (ms)"],
        rows, title="Topology contraction: speed vs quality "
                    "(16 clusters x 10 services x 4 classes, skewed load)")
    text += ("\nintra-group rebalancing is discarded by contraction — the "
             "gap between\nboth expansions and the full solve is the §5 "
             "open acceleration challenge")
    report_sink("scalability_contraction", text)

    full_time, full_quality = rows[0][1], rows[0][2]
    contracted_rows = rows[1:]
    assert all(row[1] < full_time for row in contracted_rows)   # all faster
    best_quality = min(row[2] for row in contracted_rows)
    assert best_quality < full_quality * 2.0   # best expansion stays close
