"""Deterministic online forecasting models shared across layers.

§5 "Scalability & fast reaction" asks the routing system to plan for where
load is *going*, not where it was; Demand Engineering (PAPERS.md) shows
acting on predicted demand beats reacting to observed demand. This module
is the single home for the incremental models both consumers share:

- the Global Controller's ``forecast_demand`` mode
  (:mod:`repro.core.controller.forecast` re-exports
  :class:`HoltForecaster` from here), and
- the predictive observability pillar (:mod:`repro.obs.forecast`), which
  fits the same models over scraped time series and backtests them.

It deliberately lives outside both ``repro.core`` and ``repro.obs``: the
layering contract (analyzer rule A04) forbids the core from importing the
observability layer, so the shared implementation sits in neutral ground.

Every model is purely arithmetic — no RNG, no wall clock — and fitted one
observation at a time in O(1) per update, so fitting inside the sim-time
scrape loop can never perturb a run. :class:`BacktestTracker` wraps any
model with a rolling one-step-ahead evaluation (MASE and sMAPE against
the naive last-value forecast) so forecast quality is a measured,
diffable quantity rather than an article of faith.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BacktestScore",
    "BacktestTracker",
    "EwmaForecaster",
    "HoltForecaster",
    "HoltWintersForecaster",
]


@dataclass
class _SeriesState:
    level: float
    trend: float = 0.0
    observations: int = 1


class EwmaForecaster:
    """Exponentially weighted moving average per keyed series.

    The flat baseline model: no trend, no seasonality. Forecasts at any
    horizon equal the current level. One forecaster tracks many series,
    keyed by hashable keys.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._series: dict = {}

    def observe(self, key, value: float) -> None:
        """Fold one observation into the keyed series."""
        state = self._series.get(key)
        if state is None:
            self._series[key] = _SeriesState(level=value)
            return
        state.level = self.alpha * value + (1 - self.alpha) * state.level
        state.observations += 1

    def forecast(self, key, steps_ahead: int = 1) -> float:
        """Forecast ``steps_ahead`` out; 0.0 for unseen keys."""
        if steps_ahead < 0:
            raise ValueError("steps_ahead must be >= 0")
        state = self._series.get(key)
        if state is None:
            return 0.0
        return state.level

    def known(self, key) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)


class HoltForecaster:
    """Holt's linear (double exponential) smoothing per keyed series.

    ``alpha`` smooths the level, ``beta`` the trend, and ``phi`` damps the
    trend (Gardner–McKenzie): ``phi=1`` is classic Holt — the default, and
    bit-identical to the historical controller implementation — while
    ``phi<1`` flattens long-horizon forecasts toward an asymptote instead
    of extrapolating a straight line forever. Forecasts are clamped at
    zero (demand cannot be negative). One forecaster tracks many series
    (one per (class, cluster) in the controller), keyed by hashable keys.
    """

    def __init__(self, alpha: float = 0.6, beta: float = 0.3,
                 phi: float = 1.0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        self.alpha = alpha
        self.beta = beta
        self.phi = phi
        self._series: dict = {}

    def observe(self, key, value: float) -> None:
        """Fold one observation into the keyed series."""
        if value < 0:
            raise ValueError(f"negative observation {value} for {key!r}")
        state = self._series.get(key)
        if state is None:
            self._series[key] = _SeriesState(level=value)
            return
        previous_level = state.level
        if self.phi == 1.0:
            state.level = (self.alpha * value
                           + (1 - self.alpha) * (state.level + state.trend))
            state.trend = (self.beta * (state.level - previous_level)
                           + (1 - self.beta) * state.trend)
        else:
            damped = self.phi * state.trend
            state.level = (self.alpha * value
                           + (1 - self.alpha) * (state.level + damped))
            state.trend = (self.beta * (state.level - previous_level)
                           + (1 - self.beta) * damped)
        state.observations += 1

    def forecast(self, key, steps_ahead: int = 1) -> float:
        """Forecast ``steps_ahead`` epochs out; 0.0 for unseen keys."""
        if steps_ahead < 0:
            raise ValueError("steps_ahead must be >= 0")
        state = self._series.get(key)
        if state is None:
            return 0.0
        if self.phi == 1.0:
            return max(0.0, state.level + steps_ahead * state.trend)
        damping = 0.0
        factor = self.phi
        for _ in range(steps_ahead):
            damping += factor
            factor *= self.phi
        return max(0.0, state.level + damping * state.trend)

    def known(self, key) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)


@dataclass
class _SeasonalState:
    level: float = 0.0
    trend: float = 0.0
    seasonal: list = None  # type: ignore[assignment]
    warmup: list = None  # type: ignore[assignment]
    observations: int = 0
    ready: bool = False


class HoltWintersForecaster:
    """Additive Holt–Winters (triple exponential) smoothing per series.

    Extends Holt with an additive seasonal component of integer period
    ``season_length`` (in observations — the obs pillar derives it from
    the scenario's diurnal period over the scrape interval). The first
    full season bootstraps the state: level = season mean, trend = 0,
    seasonal[i] = value_i - mean. Before the bootstrap completes,
    forecasts fall back to the running mean of what has been seen, so
    early reads are defined and deterministic.
    """

    def __init__(self, alpha: float = 0.3, beta: float = 0.1,
                 gamma: float = 0.3, season_length: int = 12) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if not 0 <= gamma <= 1:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if season_length < 2:
            raise ValueError(
                f"season_length must be >= 2, got {season_length}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_length = season_length
        self._series: dict = {}

    def observe(self, key, value: float) -> None:
        """Fold one observation into the keyed series."""
        state = self._series.get(key)
        if state is None:
            state = _SeasonalState(seasonal=[], warmup=[])
            self._series[key] = state
        if not state.ready:
            state.warmup.append(value)
            state.observations += 1
            if len(state.warmup) == self.season_length:
                mean = sum(state.warmup) / self.season_length
                state.level = mean
                state.trend = 0.0
                state.seasonal = [v - mean for v in state.warmup]
                state.warmup = []
                state.ready = True
            return
        idx = state.observations % self.season_length
        previous_level = state.level
        state.level = (self.alpha * (value - state.seasonal[idx])
                       + (1 - self.alpha) * (state.level + state.trend))
        state.trend = (self.beta * (state.level - previous_level)
                       + (1 - self.beta) * state.trend)
        state.seasonal[idx] = (self.gamma * (value - state.level)
                               + (1 - self.gamma) * state.seasonal[idx])
        state.observations += 1

    def forecast(self, key, steps_ahead: int = 1) -> float:
        """Forecast ``steps_ahead`` out; 0.0 for unseen keys."""
        if steps_ahead < 0:
            raise ValueError("steps_ahead must be >= 0")
        state = self._series.get(key)
        if state is None:
            return 0.0
        if not state.ready:
            return sum(state.warmup) / len(state.warmup)
        if steps_ahead == 0:
            idx = (state.observations - 1) % self.season_length
            return state.level + state.seasonal[idx]
        idx = (state.observations + steps_ahead - 1) % self.season_length
        return state.level + steps_ahead * state.trend + state.seasonal[idx]

    def known(self, key) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)


@dataclass(frozen=True)
class BacktestScore:
    """Rolling one-step-ahead forecast quality for one keyed series."""

    #: one-step-ahead forecasts evaluated so far
    evaluations: int
    #: mean absolute scaled error vs. the naive last-value forecast
    #: (< 1.0 means the model beats naive)
    mase: float
    #: symmetric mean absolute percentage error, in [0, 2]
    smape: float
    #: mean absolute one-step-ahead error of the model
    mae: float

    def as_dict(self) -> dict:
        return {"evaluations": self.evaluations, "mase": self.mase,
                "smape": self.smape, "mae": self.mae}


class BacktestTracker:
    """Wrap any keyed forecaster with a rolling one-step-ahead backtest.

    On every :meth:`observe`, the wrapped model's standing one-step-ahead
    forecast (made *before* seeing the new value) is scored against the
    value, alongside the naive forecast (previous value carried forward).
    MASE is the ratio of the model's mean absolute error to naive's —
    the standard scale-free "did forecasting help at all" statistic —
    and sMAPE the bounded relative error.
    """

    # the precise union (not a duck-typed Any) lets the flow analyzer
    # prove `self.model.observe(...)` only reaches these pure models, so
    # obs-read-only (A01) holds without a suppression
    def __init__(
        self,
        model: EwmaForecaster | HoltForecaster | HoltWintersForecaster,
    ) -> None:
        self.model: (EwmaForecaster | HoltForecaster
                     | HoltWintersForecaster) = model
        self._last_value: dict = {}
        self._abs_error: dict = {}
        self._naive_error: dict = {}
        self._smape_sum: dict = {}
        self._evaluations: dict = {}

    def observe(self, key, value: float) -> float:
        """Score the standing forecast against ``value``, then fold it in.

        Returns the one-step-ahead forecast that was scored (the model's
        prediction for this observation), or ``value`` itself on the very
        first observation of a key.
        """
        predicted = value
        if self.model.known(key):
            predicted = self.model.forecast(key, steps_ahead=1)
            last = self._last_value[key]
            self._abs_error[key] = (self._abs_error.get(key, 0.0)
                                    + abs(predicted - value))
            self._naive_error[key] = (self._naive_error.get(key, 0.0)
                                      + abs(last - value))
            denominator = abs(predicted) + abs(value)
            if denominator > 0:
                self._smape_sum[key] = (self._smape_sum.get(key, 0.0)
                                        + 2 * abs(predicted - value)
                                        / denominator)
            else:
                self._smape_sum[key] = self._smape_sum.get(key, 0.0)
            self._evaluations[key] = self._evaluations.get(key, 0) + 1
        self._last_value[key] = value
        self.model.observe(key, value)
        return predicted

    def forecast(self, key, steps_ahead: int = 1) -> float:
        return self.model.forecast(key, steps_ahead=steps_ahead)

    def known(self, key) -> bool:
        return self.model.known(key)

    def score(self, key) -> BacktestScore | None:
        """The rolling backtest for one key; ``None`` before 1 evaluation."""
        count = self._evaluations.get(key, 0)
        if count == 0:
            return None
        mae = self._abs_error[key] / count
        naive_mae = self._naive_error[key] / count
        mase = mae / naive_mae if naive_mae > 0 else (
            0.0 if mae == 0 else float("inf"))
        return BacktestScore(evaluations=count, mase=mase,
                             smape=self._smape_sum[key] / count, mae=mae)

    def scores(self) -> dict:
        """Backtest scores for every evaluated key, sorted by key."""
        return {key: self.score(key)
                for key in sorted(self._evaluations, key=repr)}
