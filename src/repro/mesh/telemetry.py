"""Telemetry: what SLATE-proxies measure and controllers consume.

Per §3.1, each proxy reports "the load on the service, request specific
information, latency, trace information, and request traffic classes". Here
a :class:`ProxyTelemetry` per cluster accumulates span- and request-level
counters over an epoch; ``harvest`` produces a :class:`ClusterEpochReport`
(what a Cluster Controller relays upward, already tagged with the cluster
id, §3.2). :class:`RunTelemetry` additionally keeps raw end-to-end latencies
for offline analysis (CDFs — Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.request import Request, Span
from ..sim.service import PoolStats

__all__ = ["ServiceClassWindow", "ClusterEpochReport", "ProxyTelemetry",
           "RunTelemetry"]


@dataclass
class ServiceClassWindow:
    """Counters for one (service, traffic class) in one cluster and epoch."""

    arrivals: int = 0
    completions: int = 0
    latency_sum: float = 0.0
    exec_sum: float = 0.0
    queue_wait_sum: float = 0.0
    remote_arrivals: int = 0

    def observe(self, span: Span) -> None:
        self.completions += 1
        self.latency_sum += span.total_time
        self.exec_sum += span.exec_time
        self.queue_wait_sum += span.queue_wait
        if span.remote:
            self.remote_arrivals += 1

    @property
    def mean_latency(self) -> float:
        """Mean span time (queue + compute + downstream), seconds."""
        return self.latency_sum / self.completions if self.completions else 0.0

    @property
    def mean_exec(self) -> float:
        return self.exec_sum / self.completions if self.completions else 0.0

    @property
    def mean_queue_wait(self) -> float:
        return (self.queue_wait_sum / self.completions
                if self.completions else 0.0)


@dataclass
class ClusterEpochReport:
    """One cluster's aggregated telemetry for one epoch."""

    cluster: str
    start_time: float
    duration: float
    #: (service, traffic class) → window counters
    service_class: dict[tuple[str, str], ServiceClassWindow] = field(
        default_factory=dict)
    #: service → replica-pool stats (utilization, queue wait)
    pool_stats: dict[str, PoolStats] = field(default_factory=dict)
    #: traffic class → requests that entered at this cluster's gateway
    ingress_counts: dict[str, int] = field(default_factory=dict)
    #: e2e latencies of requests that ingressed here and completed this epoch
    request_latencies: list[float] = field(default_factory=list)
    #: sampled raw spans ("trace information", §3.1) for structure learning
    span_samples: list[Span] = field(default_factory=list)

    def ingress_rps(self, traffic_class: str) -> float:
        """Observed ingress demand for a class, requests/second."""
        if self.duration <= 0:
            return 0.0
        return self.ingress_counts.get(traffic_class, 0) / self.duration

    def service_rps(self, service: str, traffic_class: str) -> float:
        """Observed completion rate at (service, class), requests/second."""
        if self.duration <= 0:
            return 0.0
        window = self.service_class.get((service, traffic_class))
        return window.completions / self.duration if window else 0.0


class ProxyTelemetry:
    """Epoch accumulator for one cluster's proxies and gateway.

    ``trace_sample_rate`` controls how many raw spans are attached to epoch
    reports for structure learning: each span is kept independently with
    that probability, drawn from the supplied (seeded) generator so runs
    stay reproducible. Bernoulli sampling matters: deterministic stride
    sampling aliases against the periodic span patterns a call chain emits
    (FR, MP, FR, MP, ...) and wrecks the learned fan-out ratios. 0 disables
    span forwarding; aggregated windows are always kept.
    """

    def __init__(self, cluster: str, trace_sample_rate: float = 0.0,
                 rng=None) -> None:
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {trace_sample_rate}")
        if trace_sample_rate > 0 and trace_sample_rate < 1 and rng is None:
            raise ValueError(
                "fractional trace sampling requires an rng for "
                "reproducible draws")
        self.cluster = cluster
        self._windows: dict[tuple[str, str], ServiceClassWindow] = {}
        self._ingress: dict[str, int] = {}
        self._latencies: list[float] = []
        self._window_start = 0.0
        self._span_samples: list[Span] = []
        self._sample_rate = trace_sample_rate
        self._rng = rng

    def record_span(self, span: Span) -> None:
        if span.cluster != self.cluster:
            raise ValueError(
                f"span for cluster {span.cluster!r} reported to telemetry of "
                f"{self.cluster!r}")
        key = (span.service, span.traffic_class)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = ServiceClassWindow()
        window.observe(span)
        if self._sample_rate >= 1.0:
            self._span_samples.append(span)
        elif self._sample_rate > 0 and self._rng.random() < self._sample_rate:
            self._span_samples.append(span)

    def record_ingress(self, request: Request) -> None:
        cls = request.traffic_class
        self._ingress[cls] = self._ingress.get(cls, 0) + 1

    def record_ingress_bulk(self, traffic_class: str, count: int) -> None:
        """Meter ``count`` fluid-mode admissions without Request objects.

        Keeps :meth:`ClusterEpochReport.ingress_rps` — the signal adaptive
        policies re-plan on — meaningful when demand arrives as bulk flow.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._ingress[traffic_class] = (
            self._ingress.get(traffic_class, 0) + count)

    def observe_bulk(self, service: str, traffic_class: str,
                     completions: int, latency_sum: float = 0.0,
                     exec_sum: float = 0.0, queue_wait_sum: float = 0.0,
                     remote_arrivals: int = 0) -> None:
        """Fold a tick's bulk flow through one (service, class) window.

        The fluid substrate's counterpart of :meth:`record_span`: the
        aggregate sums come from the M/M/c solution (wait + compute per
        request) rather than individual spans, so
        :meth:`ClusterEpochReport.service_rps` and the window means read
        the same under either fidelity. Bulk windows never contribute span
        samples — structure learning sees only the sampled event slice.
        """
        if completions < 0 or remote_arrivals < 0:
            raise ValueError("bulk window counts must be >= 0")
        key = (service, traffic_class)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = ServiceClassWindow()
        window.completions += completions
        window.latency_sum += latency_sum
        window.exec_sum += exec_sum
        window.queue_wait_sum += queue_wait_sum
        window.remote_arrivals += remote_arrivals

    def record_completion(self, request: Request) -> None:
        self._latencies.append(request.latency)

    def harvest(self, now: float,
                pool_stats: dict[str, PoolStats]) -> ClusterEpochReport:
        """Produce this epoch's report and reset the accumulators."""
        report = ClusterEpochReport(
            cluster=self.cluster,
            start_time=self._window_start,
            duration=now - self._window_start,
            service_class=self._windows,
            pool_stats=pool_stats,
            ingress_counts=self._ingress,
            request_latencies=self._latencies,
            span_samples=self._span_samples,
        )
        self._windows = {}
        self._ingress = {}
        self._latencies = []
        self._span_samples = []
        self._window_start = now
        return report


class RunTelemetry:
    """Whole-run collection for offline analysis (latency CDFs, warm-up cut).

    ``keep_spans`` retains every span — useful for call-graph inference and
    debugging, off by default to bound memory on long runs.

    ``reservoir_size`` bounds memory on *long* runs: instead of retaining
    every completed request, a per-class reservoir sample (Algorithm R) of
    at most that many ``(arrival_time, latency)`` pairs is kept, each
    completion equally likely to survive. Sampling draws come from the
    supplied generator (a named :class:`~repro.sim.rng.RngRegistry` stream)
    so runs stay reproducible. Exact retention remains the default — figure
    reproduction wants every point — and exact completion/failure *counts*
    are maintained in both modes.
    """

    def __init__(self, keep_spans: bool = False,
                 reservoir_size: int | None = None, rng=None) -> None:
        if reservoir_size is not None:
            if reservoir_size < 1:
                raise ValueError(
                    f"reservoir_size must be >= 1, got {reservoir_size}")
            if rng is None:
                raise ValueError(
                    "reservoir sampling requires an rng for "
                    "reproducible draws")
        self.requests: list[Request] = []
        self.failed_requests: list[Request] = []
        self.spans: list[Span] = []
        self._keep_spans = keep_spans
        self._reservoir_size = reservoir_size
        self._rng = rng
        #: exact lifetime counters, maintained in both retention modes
        self.completed_count = 0
        self.failed_count = 0
        #: per-traffic-class lifetime counters, also retention-independent
        #: (the scrape loop and SLO error-rate rules read these)
        self.completed_by_class: dict[str, int] = {}
        self.failed_by_class: dict[str, int] = {}
        #: class → (arrival_time, latency) sample (reservoir mode only)
        self._reservoirs: dict[str, list[tuple[float, float]]] = {}
        self._seen_by_class: dict[str, int] = {}

    @property
    def reservoir_mode(self) -> bool:
        return self._reservoir_size is not None

    def record_completion(self, request: Request) -> None:
        self.completed_count += 1
        cls = request.traffic_class
        self.completed_by_class[cls] = self.completed_by_class.get(cls, 0) + 1
        if self._reservoir_size is None:
            self.requests.append(request)
            return
        seen = self._seen_by_class.get(cls, 0)
        bucket = self._reservoirs.get(cls)
        if bucket is None:
            bucket = self._reservoirs[cls] = []
        if seen < self._reservoir_size:
            bucket.append((request.arrival_time, request.latency))
        else:
            slot = int(self._rng.integers(seen + 1))
            if slot < self._reservoir_size:
                bucket[slot] = (request.arrival_time, request.latency)
        self._seen_by_class[cls] = seen + 1

    def record_failure(self, request: Request) -> None:
        self.failed_count += 1
        cls = request.traffic_class
        self.failed_by_class[cls] = self.failed_by_class.get(cls, 0) + 1
        if self._reservoir_size is None:
            self.failed_requests.append(request)

    def record_bulk(self, traffic_class: str, completed: int,
                    failed: int = 0) -> None:
        """Account a batch of fluid-mode outcomes (counters only).

        Bulk traffic never materialises :class:`Request` objects, so the
        retained-request lists and reservoirs are untouched —
        :meth:`latencies` keeps returning only the sampled event-level
        slice, while the lifetime counters (what the scrape loop and SLO
        error-rate rules read) cover the full simulated load.
        """
        if completed < 0 or failed < 0:
            raise ValueError("bulk counts must be >= 0")
        if completed:
            self.completed_count += completed
            self.completed_by_class[traffic_class] = (
                self.completed_by_class.get(traffic_class, 0) + completed)
        if failed:
            self.failed_count += failed
            self.failed_by_class[traffic_class] = (
                self.failed_by_class.get(traffic_class, 0) + failed)

    def record_span(self, span: Span) -> None:
        if self._keep_spans:
            self.spans.append(span)

    def latencies(self, after: float = 0.0) -> list[float]:
        """E2E latencies of requests arriving at/after ``after`` (warm-up cut).

        In reservoir mode these are the sampled latencies (recording order
        within each class, classes in sorted order).
        """
        if self._reservoir_size is not None:
            return [latency
                    for cls in sorted(self._reservoirs)
                    for arrival, latency in self._reservoirs[cls]
                    if arrival >= after]
        return [r.latency for r in self.requests
                if r.done and r.arrival_time >= after]

    def latencies_by_class(self, after: float = 0.0) -> dict[str, list[float]]:
        if self._reservoir_size is not None:
            return {cls: [latency for arrival, latency in samples
                          if arrival >= after]
                    for cls, samples in sorted(self._reservoirs.items())}
        out: dict[str, list[float]] = {}
        for request in self.requests:
            if request.done and request.arrival_time >= after:
                out.setdefault(request.traffic_class, []).append(request.latency)
        return out

    def sample_counts(self) -> dict[str, tuple[int, int]]:
        """Per class: (completions seen, samples retained). Reservoir mode."""
        return {cls: (self._seen_by_class[cls], len(self._reservoirs[cls]))
                for cls in sorted(self._reservoirs)}

    def traces(self) -> dict[int, "Trace"]:
        """Assemble per-request traces from retained spans.

        Requires ``keep_spans=True``; returns request id → trace. Spans of
        failed/hedged/orphaned work are included — that work really ran.
        """
        from ..sim.request import Trace
        out: dict[int, Trace] = {}
        for span in self.spans:
            trace = out.get(span.request_id)
            if trace is None:
                trace = out[span.request_id] = Trace(span.request_id)
            trace.add(span)
        return out
