"""Weighted rendezvous hashing: sticky cluster choice under fractional rules.

§5 "Caching & data locality": spreading a class across clusters splits its
working set. But fractional routing doesn't *have* to randomize per
request — if each data key deterministically maps to one cluster, with the
population of keys split according to the rule weights, the aggregate
split matches the optimizer's plan while every key stays cache-local.

That is exactly weighted rendezvous (highest-random-weight) hashing: for a
key and candidate clusters with weights ``w_i``, score each cluster
``-w_i / ln(u_i)`` where ``u_i ∈ (0,1)`` is a uniform hash of (key,
cluster), and pick the argmax. Properties:

* P(cluster i wins) = w_i / Σw — exactly the rule's fractions;
* fully deterministic per key (affinity);
* monotone under weight changes: when w_i grows, keys only ever move *to*
  i, never between bystanders (minimal disruption re-balancing).

The caching benchmark shows this recovering the hit rate a random split
destroys.
"""

from __future__ import annotations

import hashlib
import math

__all__ = ["weighted_rendezvous"]


def _uniform_hash(key: int, cluster: str) -> float:
    """A stable uniform draw in (0, 1) for a (key, cluster) pair."""
    digest = hashlib.sha256(f"{key}|{cluster}".encode("utf-8")).digest()
    # 53 bits -> exactly representable float in [0, 1); shift off 0
    raw = int.from_bytes(digest[:8], "big") >> 11
    return (raw + 0.5) / (1 << 53)


def weighted_rendezvous(key: int, weights: dict[str, float]) -> str:
    """Pick the cluster owning ``key`` under ``weights``.

    Weights must be non-negative with a positive sum; zero-weight clusters
    never win. Deterministic across processes and runs.
    """
    if not weights:
        raise ValueError("empty weight map")
    best_name = None
    best_score = -math.inf
    for cluster in sorted(weights):
        weight = weights[cluster]
        if weight < 0:
            raise ValueError(f"negative weight {weight} for {cluster!r}")
        if weight == 0:
            continue
        draw = _uniform_hash(key, cluster)
        score = -weight / math.log(draw)
        if score > best_score:
            best_score = score
            best_name = cluster
    if best_name is None:
        raise ValueError(f"weights sum to zero: {weights}")
    return best_name
