"""Cluster ingress gateways.

User requests enter the system at the gateway of their nearest cluster. The
gateway classifies the request into a traffic class (using whatever
classifier the control plane installed), records ingress telemetry, and
hands the request to the dispatcher (the simulation runner) which starts the
root service call. On response it stamps the completion time — the e2e
latency the paper's CDFs plot.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..sim.request import Request, RequestAttributes
from .telemetry import ProxyTelemetry, RunTelemetry

__all__ = ["Classifier", "IngressGateway"]


class Classifier(Protocol):
    """Maps request attributes to a traffic-class name.

    Implementations live in :mod:`repro.core.classes`; the mesh depends only
    on this protocol.
    """

    def classify(self, attributes: RequestAttributes) -> str: ...


class _DefaultClassifier:
    """Single-class fallback: everything is ``"default"``."""

    def classify(self, attributes: RequestAttributes) -> str:
        return "default"


class IngressGateway:
    """Entry point of one cluster."""

    def __init__(self, cluster: str, telemetry: ProxyTelemetry,
                 run_telemetry: RunTelemetry,
                 classifier: Classifier | None = None) -> None:
        self.cluster = cluster
        self._telemetry = telemetry
        self._run_telemetry = run_telemetry
        self._classifier: Classifier = classifier or _DefaultClassifier()
        self._dispatch: Callable[[Request], None] | None = None
        # lifetime conservation counters (read by the debug invariant
        # checker: admitted == completed + failed + open at quiesce)
        self.admitted_count = 0
        self.completed_count = 0
        self.failed_count = 0
        self.open_requests = 0

    def bind(self, dispatch: Callable[[Request], None]) -> None:
        """Attach the dispatcher that starts the root call (set by runner)."""
        self._dispatch = dispatch

    def set_classifier(self, classifier: Classifier) -> None:
        """Swap the classifier (a control-plane push)."""
        self._classifier = classifier

    def accept(self, request: Request) -> None:
        """Admit one request: classify, meter, dispatch."""
        if self._dispatch is None:
            raise RuntimeError(
                f"gateway {self.cluster!r} has no dispatcher bound")
        if request.ingress_cluster != self.cluster:
            raise ValueError(
                f"request for {request.ingress_cluster!r} sent to gateway "
                f"{self.cluster!r}")
        request.traffic_class = self._classifier.classify(request.attributes)
        self.admitted_count += 1
        self.open_requests += 1
        self._telemetry.record_ingress(request)
        self._dispatch(request)

    def admit_bulk(self, traffic_class: str, count: int) -> None:
        """Admit ``count`` fluid-mode requests as counters, no dispatch.

        The fluid substrate's bulk counterpart of :meth:`accept`: demand
        arrives pre-classified (bulk flow is per traffic class by
        construction) and no per-request call tree is started — the
        substrate settles the cohort later via :meth:`settle_bulk`, keeping
        the conservation identity ``admitted == completed + failed + open``
        intact at every instant.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.admitted_count += count
        self.open_requests += count
        self._telemetry.record_ingress_bulk(traffic_class, count)

    def settle_bulk(self, traffic_class: str, completed: int,
                    failed: int) -> None:
        """Settle a bulk cohort admitted earlier via :meth:`admit_bulk`."""
        if completed < 0 or failed < 0:
            raise ValueError("bulk counts must be >= 0")
        self.completed_count += completed
        self.failed_count += failed
        self.open_requests -= completed + failed
        self._run_telemetry.record_bulk(traffic_class, completed, failed)

    def complete(self, request: Request, now: float) -> None:
        """Record the response leaving the gateway."""
        request.completion_time = now
        self.completed_count += 1
        self.open_requests -= 1
        self._telemetry.record_completion(request)
        self._run_telemetry.record_completion(request)

    def fail(self, request: Request, now: float) -> None:
        """Record the request ending in an error (retries exhausted)."""
        request.completion_time = now
        request.failed = True
        self.failed_count += 1
        self.open_requests -= 1
        self._run_telemetry.record_failure(request)
