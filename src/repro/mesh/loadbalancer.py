"""Intra-cluster load-balancing policies.

§2 of the paper: "load balancing of requests among service replicas is done
locally at each sidecar and uses relatively simple policies like round-robin,
consistent hashing, or least outstanding requests." These are the policies
the survey respondents rely on today; SLATE keeps them for the *within-
cluster* replica choice after its rules pick the cluster.

The simulator's replica pools expose a single FIFO queue per (service,
cluster), which subsumes the replica choice for queueing purposes, so these
balancers are exercised by tests and available to library users embedding
their own endpoint model. ``WeightedRandomSelector`` is the one component in
the request path: proxies use it to realise SLATE's fractional cluster
weights.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Protocol, Sequence

import numpy as np

__all__ = ["Endpoint", "LoadBalancer", "RoundRobinBalancer",
           "LeastOutstandingBalancer", "ConsistentHashBalancer",
           "WeightedRandomSelector"]


class Endpoint(Protocol):
    """What a balancer needs to know about a backend."""

    name: str
    outstanding: int


class LoadBalancer(Protocol):
    """Picks one endpoint for a request."""

    def pick(self, endpoints: Sequence[Endpoint],
             key: str | None = None) -> Endpoint: ...


def _require_endpoints(endpoints: Sequence[Endpoint]) -> None:
    if not endpoints:
        raise ValueError("cannot balance over an empty endpoint list")


class RoundRobinBalancer:
    """Classic round-robin; state survives endpoint-set changes by index."""

    def __init__(self) -> None:
        self._next = 0

    def pick(self, endpoints: Sequence[Endpoint],
             key: str | None = None) -> Endpoint:
        _require_endpoints(endpoints)
        choice = endpoints[self._next % len(endpoints)]
        self._next += 1
        return choice


class LeastOutstandingBalancer:
    """Pick the endpoint with the fewest in-flight requests.

    Ties break by position for determinism (Envoy uses power-of-two-choices;
    exhaustive min is equivalent for the small replica counts tested here).
    """

    def pick(self, endpoints: Sequence[Endpoint],
             key: str | None = None) -> Endpoint:
        _require_endpoints(endpoints)
        return min(endpoints, key=lambda e: e.outstanding)


class ConsistentHashBalancer:
    """Ring consistent hashing on a request key (session affinity).

    ``vnodes`` virtual nodes per endpoint smooth the distribution; removing
    an endpoint only remaps keys that hashed to its arcs.
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._ring: list[tuple[int, int]] = []   # (hash, endpoint index)
        self._ring_names: tuple[str, ...] = ()

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    def _rebuild(self, endpoints: Sequence[Endpoint]) -> None:
        ring = []
        for index, endpoint in enumerate(endpoints):
            for vnode in range(self._vnodes):
                ring.append((self._hash(f"{endpoint.name}#{vnode}"), index))
        ring.sort()
        self._ring = ring
        self._ring_names = tuple(e.name for e in endpoints)

    def pick(self, endpoints: Sequence[Endpoint],
             key: str | None = None) -> Endpoint:
        _require_endpoints(endpoints)
        if key is None:
            raise ValueError("consistent hashing requires a request key")
        names = tuple(e.name for e in endpoints)
        if names != self._ring_names:
            self._rebuild(endpoints)
        point = self._hash(key)
        hashes = [h for h, _ in self._ring]
        slot = bisect.bisect_right(hashes, point) % len(self._ring)
        return endpoints[self._ring[slot][1]]


class WeightedRandomSelector:
    """Sample a name according to normalised weights.

    This realises SLATE's fractional routing rules per request: over many
    requests the empirical split converges to the rule's weights.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def pick(self, weights: dict[str, float]) -> str:
        if not weights:
            raise ValueError("empty weight map")
        names = list(weights)
        values = np.fromiter((weights[n] for n in names), dtype=float)
        total = values.sum()
        if total <= 0:
            raise ValueError(f"weights sum to {total}, need > 0")
        if len(names) == 1:
            return names[0]
        point = self._rng.random() * total
        cumulative = 0.0
        for name, value in zip(names, values):
            cumulative += value
            if point < cumulative:
                return name
        return names[-1]   # floating-point edge: point == total
