"""SLATE-proxy: the data-plane element (§3.1).

One proxy object per cluster stands in for the per-instance sidecars (all
sidecars in a cluster hold identical rules, so one router per cluster is
behaviourally equivalent and cheaper to simulate). Its two jobs mirror the
paper's: *telemetry* (delegated to :class:`~repro.mesh.telemetry
.ProxyTelemetry`) and *request routing policy enforcement* — per-request,
per-class weighted cluster selection from the rules the controllers push.

When no rule matches, the proxy applies the mesh default the paper's survey
found in production: serve locally, failing over to the nearest cluster that
has the service (Istio locality failover).
"""

from __future__ import annotations

import numpy as np

from ..sim.network import LatencyMatrix
from ..sim.topology import DeploymentSpec
from .affinity import weighted_rendezvous
from .loadbalancer import WeightedRandomSelector
from .routing_table import RoutingTable
from .telemetry import ProxyTelemetry

__all__ = ["SlateProxy", "RoutingError"]


class RoutingError(RuntimeError):
    """No destination cluster can serve a call."""


class SlateProxy:
    """Outbound router + telemetry reporter for one cluster."""

    def __init__(self, cluster: str, table: RoutingTable,
                 deployment: DeploymentSpec, latency: LatencyMatrix,
                 rng: np.random.Generator,
                 trace_sample_rate: float = 0.0) -> None:
        self.cluster = cluster
        self._table = table
        self._deployment = deployment
        self._latency = latency
        self._selector = WeightedRandomSelector(rng)
        self.telemetry = ProxyTelemetry(cluster,
                                        trace_sample_rate=trace_sample_rate,
                                        rng=rng)

    def choose_cluster(self, service: str, traffic_class: str,
                       exclude: str | None = None,
                       affinity_key: int | None = None) -> str:
        """Pick the destination cluster for one call to ``service``.

        Order of precedence:

        1. an installed rule for (service, class, this cluster) — weights are
           first restricted to clusters where the service is actually
           deployed, guarding against rules that outlive a decommission;
        2. the local cluster, if it runs the service;
        3. locality failover: the nearest cluster running the service.

        ``exclude`` removes one cluster from consideration (retrying after
        a timeout there) unless it is the only option left. With
        ``affinity_key`` set, rule weights are realised by weighted
        rendezvous hashing on the key instead of per-request sampling: the
        same key always lands on the same cluster while the key population
        still splits by the weights (cache/data locality, §5).
        """
        deployed = self._deployment.clusters_with(service)
        if not deployed:
            raise RoutingError(
                f"service {service!r} is not deployed in any cluster")
        if exclude is not None and len(deployed) > 1:
            deployed = [c for c in deployed if c != exclude]
        weights = self._table.weights_for(service, traffic_class, self.cluster)
        if weights:
            usable = {c: w for c, w in weights.items() if c in deployed}
            if usable:
                if affinity_key is not None:
                    return weighted_rendezvous(affinity_key, usable)
                return self._selector.pick(usable)
        if self.cluster in deployed:
            return self.cluster
        return min(deployed,
                   key=lambda c: (self._latency.one_way(self.cluster, c), c))

    def __repr__(self) -> str:
        return f"SlateProxy(cluster={self.cluster!r})"
