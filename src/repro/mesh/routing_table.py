"""Routing tables: the rules SLATE's control plane pushes to proxies.

A rule is keyed by *(callee service, traffic class, source cluster)* and maps
destination clusters to weights — the paper's "when a request matches class
X, send 60% to the local cluster, 30% to remote cluster B and 10% to remote
cluster C" (§3.3). Weights are normalised on insert; lookups fall back from
the exact class to the wildcard class ``"*"`` so class-agnostic policies
(Waterfall, locality failover) install one rule per service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RouteKey", "RoutingTable", "WILDCARD_CLASS"]

WILDCARD_CLASS = "*"


@dataclass(frozen=True)
class RouteKey:
    """Identifies one routing rule."""

    service: str
    traffic_class: str
    src_cluster: str


class RoutingTable:
    """Weighted per-class cluster-selection rules for one mesh.

    The table is shared by all proxies (in the real system each proxy holds
    a copy distributed via its Cluster Controller; sharing one object is
    behaviourally identical in simulation). ``replace_all`` swaps the rule
    set atomically, mirroring a controller push.
    """

    def __init__(self) -> None:
        self._rules: dict[RouteKey, dict[str, float]] = {}
        self.version = 0

    def set_weights(self, key: RouteKey, weights: dict[str, float]) -> None:
        """Install one rule; weights are validated and normalised."""
        self._rules[key] = _normalise(key, weights)
        self.version += 1

    def replace_all(self, rules: dict[RouteKey, dict[str, float]]) -> None:
        """Atomically replace the entire rule set (a controller push)."""
        fresh = {key: _normalise(key, w) for key, w in rules.items()}
        self._rules = fresh
        self.version += 1

    def clear(self) -> None:
        self._rules.clear()
        self.version += 1

    def remove(self, key: RouteKey) -> bool:
        """Drop one rule (True if it existed).

        Lookups for its class then fall back to the wildcard rule or the
        proxy default — how a Cluster Controller retires rules it no
        longer trusts (e.g. the stale-rule guard purging a dead Global
        Controller's per-class rules so its fallback wildcards apply).
        """
        if self._rules.pop(key, None) is None:
            return False
        self.version += 1
        return True

    def keys_for_cluster(self, src_cluster: str) -> list[RouteKey]:
        """All installed rule keys whose source is ``src_cluster``."""
        return [key for key in self._rules if key.src_cluster == src_cluster]

    def weights_for(self, service: str, traffic_class: str,
                    src_cluster: str) -> dict[str, float] | None:
        """Look up weights, falling back to the wildcard class.

        Returns ``None`` when no rule matches — the proxy then applies its
        default (local-first) behaviour.
        """
        rule = self._rules.get(RouteKey(service, traffic_class, src_cluster))
        if rule is None and traffic_class != WILDCARD_CLASS:
            rule = self._rules.get(
                RouteKey(service, WILDCARD_CLASS, src_cluster))
        return rule

    def rules(self) -> dict[RouteKey, dict[str, float]]:
        """A copy of the installed rules (for inspection/tests)."""
        return {key: dict(w) for key, w in self._rules.items()}

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"RoutingTable(rules={len(self._rules)}, version={self.version})"


def _normalise(key: RouteKey, weights: dict[str, float]) -> dict[str, float]:
    if not weights:
        raise ValueError(f"rule {key}: empty weight map")
    for cluster, weight in weights.items():
        if not math.isfinite(weight) or weight < 0:
            raise ValueError(
                f"rule {key}: invalid weight {weight} for {cluster!r}")
    total = sum(weights.values())
    if total <= 0:
        raise ValueError(f"rule {key}: weights sum to {total}, need > 0")
    normalised = {cluster: weight / total
                  for cluster, weight in weights.items()}
    # drop zeros *after* dividing: a subnormal weight can underflow to 0.0
    return {cluster: weight
            for cluster, weight in normalised.items() if weight > 0}
