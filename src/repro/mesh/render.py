"""Render routing rules as Istio traffic-management manifests.

The paper's prototype enforces rules "in the Envoy data plane" via the
service mesh; operationally that means the Global Controller's output
becomes Istio ``VirtualService`` (weighted cluster splits, per-class match
clauses) and ``DestinationRule`` (one subset per cluster) objects. This
module performs that translation so the optimizer's plans can be inspected
— or applied — in mesh-native form.

Per-class matches use the application's class attributes (HTTP method +
path, §3.3 "Deriving Classes"); per-source-cluster rules are expressed with
``sourceLabels`` on the topology label Istio multi-cluster setups use.
YAML is emitted directly (no external dependency) for the limited value
shapes involved.
"""

from __future__ import annotations

from ..core.rules import RuleSet
from ..mesh.routing_table import WILDCARD_CLASS
from ..sim.apps import AppSpec

__all__ = ["rules_to_virtualservices", "destination_rules",
           "CLUSTER_LABEL"]

#: the pod label carrying the cluster/locality identity
CLUSTER_LABEL = "topology.istio.io/cluster"


def _match_block(app: AppSpec, traffic_class: str, src_cluster: str,
                 indent: str) -> list[str]:
    lines = [f"{indent}- sourceLabels:",
             f"{indent}    {CLUSTER_LABEL}: {src_cluster}"]
    if traffic_class != WILDCARD_CLASS and traffic_class in app.classes:
        attributes = app.classes[traffic_class].attributes
        lines += [f"{indent}  method:",
                  f"{indent}    exact: {attributes.method}",
                  f"{indent}  uri:",
                  f"{indent}    exact: {attributes.path}"]
    return lines


def rules_to_virtualservices(rules: RuleSet, app: AppSpec,
                             namespace: str = "default") -> str:
    """One VirtualService per routed service, YAML multi-document string.

    Routes are ordered class-specific first (wildcard matches last), the
    order Istio applies them in; weights are rounded to integer percents
    with the remainder assigned to the largest destination so each route
    sums to exactly 100.
    """
    services = sorted({rule.service for rule in rules})
    documents = []
    for service in services:
        lines = [
            "apiVersion: networking.istio.io/v1beta1",
            "kind: VirtualService",
            "metadata:",
            f"  name: slate-{service.lower()}",
            f"  namespace: {namespace}",
            "spec:",
            f"  hosts:",
            f"  - {service.lower()}.{namespace}.svc.cluster.local",
            "  http:",
        ]
        service_rules = [rule for rule in rules if rule.service == service]
        # class-specific rules must precede wildcard catch-alls
        service_rules.sort(key=lambda rule: (
            rule.traffic_class == WILDCARD_CLASS, rule.traffic_class,
            rule.src_cluster))
        for rule in service_rules:
            lines.append("  - match:")
            lines += _match_block(app, rule.traffic_class,
                                  rule.src_cluster, "    ")
            lines.append("    route:")
            for cluster, percent in _integer_percents(rule.weight_map()):
                lines += [
                    "    - destination:",
                    f"        host: {service.lower()}.{namespace}"
                    ".svc.cluster.local",
                    f"        subset: {cluster}",
                    f"      weight: {percent}",
                ]
        documents.append("\n".join(lines))
    return "\n---\n".join(documents) + "\n"


def destination_rules(rules: RuleSet, namespace: str = "default") -> str:
    """DestinationRules declaring one subset per destination cluster."""
    subsets: dict[str, set[str]] = {}
    for rule in rules:
        subsets.setdefault(rule.service, set()).update(rule.weight_map())
    documents = []
    for service in sorted(subsets):
        lines = [
            "apiVersion: networking.istio.io/v1beta1",
            "kind: DestinationRule",
            "metadata:",
            f"  name: slate-{service.lower()}",
            f"  namespace: {namespace}",
            "spec:",
            f"  host: {service.lower()}.{namespace}.svc.cluster.local",
            "  subsets:",
        ]
        for cluster in sorted(subsets[service]):
            lines += [f"  - name: {cluster}",
                      "    labels:",
                      f"      {CLUSTER_LABEL}: {cluster}"]
        documents.append("\n".join(lines))
    return "\n---\n".join(documents) + "\n"


def _integer_percents(weights: dict[str, float]) -> list[tuple[str, int]]:
    """Round weights to integer percents summing to exactly 100."""
    ordered = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    percents = [(cluster, int(round(weight * 100)))
                for cluster, weight in ordered]
    drift = 100 - sum(p for _, p in percents)
    if percents and drift:
        cluster, percent = percents[0]
        percents[0] = (cluster, percent + drift)
    return [(cluster, percent) for cluster, percent in percents
            if percent > 0]
