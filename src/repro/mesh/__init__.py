"""Service-mesh layer: proxies, gateways, routing tables, telemetry."""

from .affinity import weighted_rendezvous
from .gateway import Classifier, IngressGateway
from .loadbalancer import (ConsistentHashBalancer, LeastOutstandingBalancer,
                           RoundRobinBalancer, WeightedRandomSelector)
from .proxy import RoutingError, SlateProxy
from .render import destination_rules, rules_to_virtualservices
from .routing_table import WILDCARD_CLASS, RouteKey, RoutingTable
from .telemetry import (ClusterEpochReport, ProxyTelemetry, RunTelemetry,
                        ServiceClassWindow)

__all__ = [
    "weighted_rendezvous",
    "Classifier", "IngressGateway",
    "destination_rules", "rules_to_virtualservices",
    "ConsistentHashBalancer", "LeastOutstandingBalancer",
    "RoundRobinBalancer", "WeightedRandomSelector",
    "RoutingError", "SlateProxy",
    "WILDCARD_CLASS", "RouteKey", "RoutingTable",
    "ClusterEpochReport", "ProxyTelemetry", "RunTelemetry",
    "ServiceClassWindow",
]
