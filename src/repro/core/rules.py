"""Routing rules: the Global Controller's output (§3.3).

Each rule says, for one (service, traffic class, source cluster): what
fraction of calls go to each destination cluster — "send 60% of requests to
the local cluster, 30% to remote cluster B and the remaining 10% to remote
cluster C". A :class:`RuleSet` converts to the routing-table update the
Cluster Controllers distribute to proxies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..mesh.routing_table import RouteKey, RoutingTable

__all__ = ["RoutingRule", "RuleSet"]


@dataclass(frozen=True)
class RoutingRule:
    """Weighted destination split for one (service, class, source)."""

    service: str
    traffic_class: str
    src_cluster: str
    weights: tuple[tuple[str, float], ...]

    @staticmethod
    def make(service: str, traffic_class: str, src_cluster: str,
             weights: dict[str, float]) -> "RoutingRule":
        total = sum(weights.values())
        if total <= 0 or not all(math.isfinite(w) and w >= 0
                                 for w in weights.values()):
            raise ValueError(
                f"invalid weights for {service}/{traffic_class}@{src_cluster}:"
                f" {weights}")
        # filter after dividing: a subnormal weight can underflow to 0.0
        normalised = tuple(sorted(
            (cluster, share)
            for cluster, share in ((c, w / total)
                                   for c, w in weights.items())
            if share > 0))
        return RoutingRule(service, traffic_class, src_cluster, normalised)

    def weight_map(self) -> dict[str, float]:
        return dict(self.weights)

    def local_fraction(self) -> float:
        """Fraction of calls kept in the source cluster."""
        return self.weight_map().get(self.src_cluster, 0.0)

    @property
    def key(self) -> RouteKey:
        return RouteKey(self.service, self.traffic_class, self.src_cluster)


@dataclass
class RuleSet:
    """A coherent batch of rules, applied atomically to a routing table."""

    rules: list[RoutingRule] = field(default_factory=list)

    def add(self, rule: RoutingRule) -> None:
        self.rules.append(rule)

    def merge(self, other: "RuleSet") -> "RuleSet":
        return RuleSet(self.rules + other.rules)

    def by_key(self) -> dict[RouteKey, dict[str, float]]:
        out: dict[RouteKey, dict[str, float]] = {}
        for rule in self.rules:
            if rule.key in out:
                raise ValueError(f"duplicate rule for {rule.key}")
            out[rule.key] = rule.weight_map()
        return out

    def apply(self, table: RoutingTable) -> None:
        """Replace the table's contents with this rule set."""
        table.replace_all(self.by_key())

    def apply_incremental(self, table: RoutingTable) -> None:
        """Upsert these rules without clearing unrelated entries."""
        for key, weights in self.by_key().items():
            table.set_weights(key, weights)

    def rule_for(self, service: str, traffic_class: str,
                 src_cluster: str) -> RoutingRule | None:
        for rule in self.rules:
            if (rule.service == service
                    and rule.traffic_class == traffic_class
                    and rule.src_cluster == src_cluster):
                return rule
        return None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)
