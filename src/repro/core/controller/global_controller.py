"""Global Controller (§3.3): telemetry in, optimized routing rules out.

The controller keeps two pieces of learned state between epochs:

* per-(class, cluster) ingress demand estimates (EWMA over observed RPS),
* per-(service, class) latency profiles (:class:`ProfileRegistry`), when
  profile learning is enabled.

Every planning cycle it assembles a :class:`TEProblem` — call-tree structure
comes from the application spec, demands and compute times from the learned
state — solves it, and emits a :class:`RuleSet` for the Cluster Controllers.

``GlobalController.oracle`` is the one-shot path used by benchmarks: known
demand, ground-truth compute times, single solve.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ...mesh.telemetry import ClusterEpochReport
from ...sim.apps import AppSpec
from ...sim.topology import DeploymentSpec
from ...sim.workload import DemandMatrix
from ..classes.callgraph import CallGraphLearner
from ..latency.profiles import ProfileRegistry
from .forecast import HoltForecaster
from ..optimizer.cache import SolverCache
from ..optimizer.problem import ClassWorkload, TEProblem
from ..optimizer.result import OptimizationResult
from ..optimizer.solve import SolverError, solve
from ..optimizer.vectorized import StructureCache
from ..optimizer.warm import EpochSolver
from ..rules import RuleSet

__all__ = ["GlobalControllerConfig", "GlobalController"]


@dataclass(frozen=True)
class GlobalControllerConfig:
    """Tuning knobs for the Global Controller."""

    rho_max: float = 0.95
    cost_weight: float = 0.0
    #: hard $/s cap on egress (None = unconstrained)
    egress_budget: float | None = None
    delay_model: str = "mmc"
    #: EWMA factor for demand estimates (weight of the newest epoch)
    demand_alpha: float = 0.5
    #: learn compute times from telemetry instead of trusting the app spec
    learn_profiles: bool = True
    #: learn the entire call-tree structure (edges, fan-outs, byte sizes)
    #: from sampled trace spans instead of trusting the app spec — requires
    #: the mesh to forward span samples (``trace_sample_rate > 0``)
    learn_structure: bool = False
    #: plan against Holt-forecast next-epoch demand instead of the EWMA of
    #: observed demand (predictive vs reactive control, §5 fast reaction)
    forecast_demand: bool = False
    #: MILP split limit per rule; None = pure LP (fractional splits)
    max_splits: int | None = None
    #: round demand estimates to multiples of this (requests/second) before
    #: planning. Acts as re-plan hysteresis: sub-quantum telemetry jitter no
    #: longer produces a numerically distinct TE instance every epoch, so
    #: steady-demand epochs assemble *identical* models and the solver
    #: cache replays them instead of re-solving. 0 disables quantization.
    demand_quantum: float = 0.0
    #: LRU bound of the per-controller solver memoization cache;
    #: 0 disables caching entirely
    solver_cache_size: int = 64
    #: optimizer formulation: "arc" (per-edge flow variables, the exact
    #: §3.3 model) or "path" (k-best candidate embeddings — linear in
    #: demand entries instead of quadratic in clusters; pick it past ~30
    #: clusters, see docs/performance.md)
    formulation: str = "arc"
    #: candidate paths per (class, ingress) in path formulation
    path_k: int = 4
    #: cap candidate clusters per call-tree hop (path formulation); None
    #: considers every deployed cluster
    path_prune_limit: int | None = None
    #: attempt warm-started re-solves when only demand values moved since
    #: the previous epoch (exact: certified by reduced-cost pricing)
    warm_start: bool = True
    #: LRU bound of the structure cache behind warm builds; 0 disables
    #: structure reuse (every epoch reassembles matrices from scratch)
    structure_cache_size: int = 8


class GlobalController:
    """The centralized optimizer-driven brain of SLATE."""

    def __init__(self, app: AppSpec, deployment: DeploymentSpec,
                 config: GlobalControllerConfig | None = None,
                 profiles: ProfileRegistry | None = None) -> None:
        self.app = app
        self.deployment = deployment
        self.config = config or GlobalControllerConfig()
        self.profiles = profiles or ProfileRegistry()
        self.callgraph = CallGraphLearner()
        self.forecaster = HoltForecaster()
        self._demand_estimate: dict[tuple[str, str], float] = {}
        self.last_result: OptimizationResult | None = None
        self.epochs_observed = 0
        #: end of the newest telemetry window folded in (None until first
        #: observe); lets the decision log report how stale the planning
        #: input was — nonzero only when telemetry was delayed or dropped
        self.last_observe_time: float | None = None
        #: memoizes epoch solves; see GlobalControllerConfig.solver_cache_size
        self.solver_cache: SolverCache | None = (
            SolverCache(self.config.solver_cache_size)
            if self.config.solver_cache_size > 0 else None)
        #: the build+solve pipeline with structure reuse and warm starts;
        #: composes the solver cache (replay) with the structure cache
        #: (warm builds) and previous-solution warm re-solves
        self.epoch_solver = EpochSolver(
            cache=self.solver_cache,
            structure_cache=(StructureCache(self.config.structure_cache_size)
                             if self.config.structure_cache_size > 0
                             else None),
            warm_start=self.config.warm_start,
            max_splits=self.config.max_splits,
            formulation=self.config.formulation,
            path_k=self.config.path_k,
            path_prune_limit=self.config.path_prune_limit,
        )

    def attach_profiler(self, profiler) -> None:
        """Route optimizer build/solve timings into a control-plane
        profiler (duck-typed ``section(name)`` context manager)."""
        self.epoch_solver.profiler = profiler

    def attach_provenance(self, recorder) -> None:
        """Route per-epoch reuse-ladder outcomes into a provenance
        recorder (duck-typed ``record_solve(info)`` hook)."""
        self.epoch_solver.recorder = recorder

    # ------------------------------------------------------------ learning

    def observe(self, reports: list[ClusterEpochReport]) -> None:
        """Fold one epoch of cluster reports into the learned state."""
        if self.config.learn_profiles:
            self.profiles.ingest(reports)
        if self.config.learn_structure:
            for report in reports:
                self.callgraph.ingest(report.span_samples)
        alpha = self.config.demand_alpha
        for report in reports:
            window_end = report.start_time + report.duration
            if (self.last_observe_time is None
                    or window_end > self.last_observe_time):
                self.last_observe_time = window_end
            for cls in self.app.classes:
                observed = report.ingress_rps(cls)
                key = (cls, report.cluster)
                self.forecaster.observe(key, observed)
                current = self._demand_estimate.get(key)
                if current is None:
                    self._demand_estimate[key] = observed
                else:
                    self._demand_estimate[key] = (
                        (1 - alpha) * current + alpha * observed)
        self.epochs_observed += 1

    def demand_estimate(self, traffic_class: str, cluster: str) -> float:
        """The demand the next plan will use (forecast or EWMA).

        With ``demand_quantum`` set, the estimate is rounded to the nearest
        quantum so steady demand yields a bit-stable planning input.
        """
        key = (traffic_class, cluster)
        if self.config.forecast_demand and self.forecaster.known(key):
            estimate = self.forecaster.forecast(key, steps_ahead=1)
        else:
            estimate = self._demand_estimate.get(key, 0.0)
        quantum = self.config.demand_quantum
        if quantum > 0:
            estimate = round(estimate / quantum) * quantum
        return estimate

    # ------------------------------------------------------------ planning

    def build_problem(self) -> TEProblem:
        """Assemble the TE instance from current learned state."""
        workloads = {}
        for name, spec in self.app.classes.items():
            if self.config.learn_structure and self.callgraph.ready(name):
                # the whole spec — edges, fan-outs, byte sizes, compute
                # times — comes from trace evidence; only the matching
                # attributes are taken from the declared class
                spec = self.callgraph.infer_spec(name, spec.attributes)
            elif self.config.learn_profiles:
                learned = self.profiles.exec_time_map(name, spec.services())
                # keep ground truth for pairs with no telemetry yet: a wrong
                # default would be worse than the spec's declared value
                exec_time = {
                    service: (learned[service]
                              if self.profiles.known(service, name)
                              else spec.exec_time_of(service))
                    for service in spec.services()
                }
                spec = dataclasses.replace(spec, exec_time=exec_time)
            demand = {
                cluster: self.demand_estimate(name, cluster)
                for cluster in self.deployment.cluster_names
                if self.demand_estimate(name, cluster) > 0
            }
            workloads[name] = ClassWorkload(spec=spec, demand=demand)
        replicas = {
            (service, cluster.name): count
            for cluster in self.deployment.clusters
            for service, count in cluster.replicas.items()
            if count > 0
        }
        return TEProblem(
            clusters=list(self.deployment.cluster_names),
            latency=self.deployment.latency,
            pricing=self.deployment.pricing,
            replicas=replicas,
            workloads=workloads,
            rho_max=self.config.rho_max,
            cost_weight=self.config.cost_weight,
            egress_budget=self.config.egress_budget,
            delay_model=self.config.delay_model,
        )

    def plan(self) -> OptimizationResult | None:
        """Solve for current state; ``None`` when no demand observed yet.

        When the (possibly forecast) demand exceeds global capacity the
        instance is infeasible; rather than fail mid-flight, the demand is
        scaled down to the largest feasible fraction and solved — the
        resulting *routing fractions* remain the right proportions to
        install, and the overload itself is a provisioning problem outside
        the router's control.
        """
        problem = self.build_problem()
        if problem.total_demand() <= 0:
            return None
        try:
            result = self.epoch_solver.solve(problem)
        except SolverError:
            scale = self._feasible_scale(problem)
            if scale >= 1.0:
                raise   # infeasible for some other reason: surface it
            for workload in problem.workloads.values():
                for cluster in workload.demand:
                    workload.demand[cluster] *= scale
            result = self.epoch_solver.solve(problem)
        self.last_result = result
        return result

    @staticmethod
    def _feasible_scale(problem: TEProblem) -> float:
        """Largest demand fraction that fits under every service's global
        work capacity (with a small safety margin)."""
        scale = 1.0
        services = {s for w in problem.workloads.values()
                    for s in w.spec.services()}
        for service in services:
            work = 0.0
            for workload in problem.workloads.values():
                st = workload.spec.exec_time_of(service)
                execs = workload.spec.executions_per_request().get(service,
                                                                   0.0)
                work += workload.total_demand * execs * st
            capacity = problem.rho_max * sum(
                problem.replica_count(service, c) for c in problem.clusters)
            if work > 0 and capacity > 0:
                scale = min(scale, capacity / work)
        return scale * 0.999

    def rules(self) -> RuleSet:
        """Rules from the most recent plan (empty before the first plan)."""
        if self.last_result is None:
            return RuleSet()
        return self.last_result.rules()

    # -------------------------------------------------------------- oracle

    @staticmethod
    def oracle(app: AppSpec, deployment: DeploymentSpec,
               demand: DemandMatrix, rho_max: float = 0.95,
               cost_weight: float = 0.0,
               egress_budget: float | None = None,
               delay_model: str = "mmc",
               max_splits: int | None = None) -> OptimizationResult:
        """One-shot solve with known demand and ground-truth profiles."""
        problem = TEProblem.from_specs(
            app, deployment, demand, rho_max=rho_max,
            cost_weight=cost_weight, egress_budget=egress_budget,
            delay_model=delay_model)
        return solve(problem, max_splits=max_splits)
