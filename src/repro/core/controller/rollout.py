"""Resilient incremental rule rollout (§5 "Resilience to prediction error").

The paper's proposed design: "use the optimizer's output as a guideline,
without fully relying on it. For instance, if the optimizer suggests
increasing the fraction of requests routed to a certain cluster by 50%,
SLATE could implement incremental increases of, say, 10%, evaluate the
system objectives (latency and cost) using real-time telemetry, and proceed
only if the objectives improve as predicted."

:class:`IncrementalRollout` implements exactly that: each epoch it moves the
live rules a bounded ``step`` toward the optimizer's target, watches the
observed objective, and rolls back (and backs off the step) when the
objective regresses beyond tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...mesh.routing_table import RouteKey
from ..rules import RoutingRule, RuleSet

__all__ = ["RolloutConfig", "IncrementalRollout"]


@dataclass(frozen=True)
class RolloutConfig:
    """Rollout behaviour knobs."""

    #: fraction of the remaining distance to the target applied per epoch
    step: float = 0.25
    #: observed objective may grow by this factor before we call it a
    #: regression (absorbs measurement noise)
    regression_tolerance: float = 1.15
    #: multiplicative step back-off after a rollback
    backoff: float = 0.5
    #: step recovers toward ``step`` by this factor per clean epoch
    recovery: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.step <= 1:
            raise ValueError(f"step must be in (0, 1], got {self.step}")
        if self.regression_tolerance < 1:
            raise ValueError("regression_tolerance must be >= 1")
        if not 0 < self.backoff < 1:
            raise ValueError("backoff must be in (0, 1)")
        if self.recovery <= 1:
            raise ValueError("recovery must be > 1")


class IncrementalRollout:
    """Moves live routing rules gradually toward an optimizer target."""

    def __init__(self, config: RolloutConfig | None = None) -> None:
        self.config = config or RolloutConfig()
        self._current: dict[RouteKey, dict[str, float]] = {}
        self._previous: dict[RouteKey, dict[str, float]] | None = None
        self._last_objective: float | None = None
        self._step = self.config.step
        self.rollbacks = 0

    @property
    def current_step(self) -> float:
        return self._step

    def advance(self, target: RuleSet,
                observed_objective: float | None = None) -> RuleSet:
        """One epoch of rollout; returns the rules to install now.

        ``observed_objective`` is last epoch's measured system objective
        (e.g. mean latency): lower is better. On regression beyond
        tolerance the previous rules are restored and the step backs off.
        """
        if observed_objective is not None and self._last_objective is not None:
            regressed = (observed_objective
                         > self._last_objective
                         * self.config.regression_tolerance)
            if regressed and self._previous is not None:
                # restore every installed key to its previous weights; keys
                # that had none revert to an explicit local rule so the
                # rollback actually overwrites what the proxies hold
                restored = {
                    key: self._previous.get(key, {key.src_cluster: 1.0})
                    for key in sorted(
                        set(self._current) | set(self._previous),
                        key=lambda k: (k.service, k.traffic_class,
                                       k.src_cluster))
                }
                self._current = restored
                self._previous = None
                self._step = max(self._step * self.config.backoff, 0.01)
                self.rollbacks += 1
                # keep the pre-regression objective as the baseline
                return self._as_rule_set(self._current)
            self._step = min(self._step * self.config.recovery,
                             self.config.step)
        if observed_objective is not None:
            self._last_objective = observed_objective

        blended: dict[RouteKey, dict[str, float]] = {}
        for key, target_weights in target.by_key().items():
            current = self._current.get(key, {key.src_cluster: 1.0})
            blended[key] = _blend(current, target_weights, self._step)
        # keys no longer in the target decay toward the local default
        for key, current in self._current.items():
            if key not in blended:
                blended[key] = _blend(current, {key.src_cluster: 1.0},
                                      self._step)
        self._previous = self._current
        self._current = blended
        return self._as_rule_set(blended)

    @staticmethod
    def _as_rule_set(rules: dict[RouteKey, dict[str, float]]) -> RuleSet:
        out = RuleSet()
        for key, weights in sorted(rules.items(),
                                   key=lambda kv: (kv[0].service,
                                                   kv[0].traffic_class,
                                                   kv[0].src_cluster)):
            out.add(RoutingRule.make(key.service, key.traffic_class,
                                     key.src_cluster, weights))
        return out


def _blend(current: dict[str, float], target: dict[str, float],
           step: float) -> dict[str, float]:
    """Convex combination of two weight vectors, dropping dust weights."""
    clusters = set(current) | set(target)
    blended = {
        cluster: ((1 - step) * current.get(cluster, 0.0)
                  + step * target.get(cluster, 0.0))
        for cluster in clusters
    }
    return {c: w for c, w in blended.items() if w > 1e-9}
