"""SLATE as a routing policy: the optimizer behind the policy interface.

Wraps :class:`GlobalController` so the experiment harness can run SLATE and
the baselines through the same machinery. In static (oracle) mode the rules
come from one solve over the known demand; in adaptive mode each epoch's
telemetry feeds the controller, optionally through the incremental rollout
guard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...mesh.telemetry import ClusterEpochReport
from ..rules import RuleSet
from .global_controller import GlobalController, GlobalControllerConfig
from .rollout import IncrementalRollout

if TYPE_CHECKING:   # avoids a core <-> baselines import cycle
    from ...baselines.base import PolicyContext

__all__ = ["SlatePolicy"]


class SlatePolicy:
    """Global TE-optimized request routing (the paper's system)."""

    name = "slate"

    def __init__(self, config: GlobalControllerConfig | None = None,
                 adaptive: bool = False,
                 rollout: IncrementalRollout | None = None) -> None:
        self.config = config or GlobalControllerConfig()
        self.adaptive = adaptive
        self.rollout = rollout
        self._controller: GlobalController | None = None
        self._profiler = None
        self._provenance = None

    def attach_profiler(self, profiler) -> None:
        """Route optimizer timings into a control-plane profiler.

        Duck-typed (``section(name)`` context manager) so the harness can
        pass the obs-layer profiler without core importing it. Takes effect
        immediately if the controller exists, else on its lazy creation.
        """
        self._profiler = profiler
        if self._controller is not None:
            self._controller.attach_profiler(profiler)

    def attach_provenance(self, recorder) -> None:
        """Route per-epoch solver decisions into a provenance recorder.

        Duck-typed (``record_solve(info)``) like :meth:`attach_profiler`,
        and with the same lazy-creation semantics.
        """
        self._provenance = recorder
        if self._controller is not None:
            self._controller.attach_provenance(recorder)

    @property
    def controller(self) -> GlobalController | None:
        """The adaptive-mode controller (None before the first epoch).

        Exposes learned state and the solver memoization cache
        (``controller.solver_cache``) for diagnostics and benchmarks.
        """
        return self._controller

    def compute_rules(self, ctx: PolicyContext) -> RuleSet:
        result = GlobalController.oracle(
            ctx.app, ctx.deployment, ctx.demand,
            rho_max=self.config.rho_max,
            cost_weight=self.config.cost_weight,
            delay_model=self.config.delay_model,
            max_splits=self.config.max_splits,
        )
        rules = result.rules()
        if self.rollout is not None:
            rules = self.rollout.advance(rules)
        return rules

    def on_epoch(self, reports: list[ClusterEpochReport],
                 ctx: PolicyContext) -> RuleSet | None:
        if not self.adaptive:
            return None
        if self._controller is None:
            self._controller = GlobalController(ctx.app, ctx.deployment,
                                                self.config)
            if self._profiler is not None:
                self._controller.attach_profiler(self._profiler)
            if self._provenance is not None:
                self._controller.attach_provenance(self._provenance)
        self._controller.observe(reports)
        result = self._controller.plan()
        if result is None:
            return None
        rules = result.rules()
        if self.rollout is not None:
            objective = _observed_mean_latency(reports)
            rules = self.rollout.advance(rules, objective)
        return rules


def _observed_mean_latency(reports: list[ClusterEpochReport]) -> float | None:
    latencies = [lat for report in reports
                 for lat in report.request_latencies]
    if not latencies:
        return None
    return sum(latencies) / len(latencies)
