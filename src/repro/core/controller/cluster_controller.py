"""Cluster Controller (§3.2): per-region metrics relay and rule distributor.

"The Cluster Controller acts as a metrics aggregator for a certain region, to
avoid the scaling limitations of having every individual service connect to a
global controller ... as well as attaching the cluster ID of the metrics."
When the Global Controller has new rules, they are "pushed to the Cluster
Controller, which then redistributes those rules to every relevant service."

In simulation the proxies already tag spans with their cluster; the
controller's enforcement here is validation (rejecting mislabelled metrics)
plus filtering rule pushes down to this cluster's proxies.
"""

from __future__ import annotations

from ...mesh.routing_table import RoutingTable
from ...mesh.telemetry import ClusterEpochReport
from ..rules import RuleSet

__all__ = ["ClusterController"]


class ClusterController:
    """Metrics relay and rule distributor for one cluster."""

    def __init__(self, cluster: str) -> None:
        self.cluster = cluster
        self._pending: list[ClusterEpochReport] = []
        self.reports_relayed = 0
        self.rules_distributed = 0

    # ------------------------------------------------------------- metrics

    def ingest(self, report: ClusterEpochReport) -> None:
        """Accept one epoch report from this cluster's proxies."""
        if report.cluster != self.cluster:
            raise ValueError(
                f"cluster controller {self.cluster!r} received a report "
                f"tagged {report.cluster!r}")
        self._pending.append(report)

    def relay(self) -> list[ClusterEpochReport]:
        """Hand pending reports to the Global Controller and clear them."""
        reports, self._pending = self._pending, []
        self.reports_relayed += len(reports)
        return reports

    # --------------------------------------------------------------- rules

    def distribute(self, rules: RuleSet, table: RoutingTable) -> int:
        """Install the rules relevant to this cluster's proxies.

        Only rules whose source cluster is this cluster are installed — each
        region's proxies hold exactly the rules they enforce. Returns the
        number of rules installed.
        """
        count = 0
        for rule in rules:
            if rule.src_cluster == self.cluster:
                table.set_weights(rule.key, rule.weight_map())
                count += 1
        self.rules_distributed += count
        return count

    def __repr__(self) -> str:
        return (f"ClusterController({self.cluster!r}, "
                f"pending={len(self._pending)})")
