"""Cluster Controller (§3.2): per-region metrics relay and rule distributor.

"The Cluster Controller acts as a metrics aggregator for a certain region, to
avoid the scaling limitations of having every individual service connect to a
global controller ... as well as attaching the cluster ID of the metrics."
When the Global Controller has new rules, they are "pushed to the Cluster
Controller, which then redistributes those rules to every relevant service."

In simulation the proxies already tag spans with their cluster; the
controller's enforcement here is validation (rejecting mislabelled metrics)
plus filtering rule pushes down to this cluster's proxies.

Degraded mode (§5): when the Global Controller becomes unreachable the rules
a cluster holds silently go stale. Configured with a ``max_rule_age`` and a
``fallback`` policy, the controller runs a staleness guard each epoch: once
``now - last_contact`` exceeds the max age it installs the fallback policy's
rules for its own cluster (locality failover or waterfall — "fall back to
routing rules that prioritize local routing first") and flags itself
``fallback_active``. The next successful distribution from the returned
Global Controller reconciles: optimized rules overwrite the fallback ones
and the flag clears.
"""

from __future__ import annotations

from typing import Protocol

from ...mesh.routing_table import RoutingTable
from ...mesh.telemetry import ClusterEpochReport
from ..rules import RuleSet

__all__ = ["ClusterController", "FallbackPolicy"]


class FallbackPolicy(Protocol):
    """What the staleness guard needs from a local routing policy.

    Both :class:`~repro.baselines.locality.LocalityFailoverPolicy` and
    :class:`~repro.baselines.waterfall.WaterfallPolicy` satisfy it; the
    object is injected by the harness so ``repro.core`` never imports
    ``repro.baselines``.
    """

    def compute_rules(self, ctx) -> RuleSet: ...


class ClusterController:
    """Metrics relay and rule distributor for one cluster.

    ``max_rule_age`` / ``fallback`` arm the §5 degraded mode; both default
    to off, in which case behaviour is identical to the pre-chaos
    controller (the guard never trips).
    """

    def __init__(self, cluster: str, *, max_rule_age: float | None = None,
                 fallback: FallbackPolicy | None = None) -> None:
        if max_rule_age is not None and max_rule_age <= 0:
            raise ValueError(f"max_rule_age must be > 0, got {max_rule_age}")
        self.cluster = cluster
        self.max_rule_age = max_rule_age
        self.fallback = fallback
        self._pending: list[ClusterEpochReport] = []
        self.reports_relayed = 0
        self.rules_distributed = 0
        #: sim time of the last successful Global Controller contact
        self.last_contact = 0.0
        self.fallback_active = False
        self.fallback_activations = 0
        self.fallback_tripped_at: float | None = None
        self.reconciliations = 0

    # ------------------------------------------------------------- metrics

    def ingest(self, report: ClusterEpochReport) -> None:
        """Accept one epoch report from this cluster's proxies."""
        if report.cluster != self.cluster:
            raise ValueError(
                f"cluster controller {self.cluster!r} received a report "
                f"tagged {report.cluster!r}")
        self._pending.append(report)

    def relay(self) -> list[ClusterEpochReport]:
        """Hand pending reports to the Global Controller and clear them."""
        reports, self._pending = self._pending, []
        self.reports_relayed += len(reports)
        return reports

    # --------------------------------------------------------------- rules

    def touch(self, now: float) -> None:
        """Record a successful Global Controller contact at ``now``.

        Called whenever the controller is reachable, even when hysteresis
        decided no rule update was needed — a healthy-but-quiet controller
        must not trip the staleness guard.
        """
        if now > self.last_contact:
            self.last_contact = now

    def distribute(self, rules: RuleSet, table: RoutingTable,
                   now: float | None = None) -> int:
        """Install the rules relevant to this cluster's proxies.

        Only rules whose source cluster is this cluster are installed — each
        region's proxies hold exactly the rules they enforce. Returns the
        number of rules installed. When ``now`` is given it counts as
        controller contact; a distribution that lands while the fallback is
        active reconciles it (optimized rules overwrite fallback rules).
        """
        count = 0
        for rule in rules:
            if rule.src_cluster == self.cluster:
                table.set_weights(rule.key, rule.weight_map())
                count += 1
        self.rules_distributed += count
        if now is not None:
            self.touch(now)
        if self.fallback_active and count:
            self.fallback_active = False
            self.reconciliations += 1
        return count

    def rule_age(self, now: float) -> float:
        """Seconds since the last successful Global Controller contact."""
        return max(0.0, now - self.last_contact)

    def check_staleness(self, now: float, table: RoutingTable, ctx) -> bool:
        """Trip the stale-rule guard if contact has been lost too long.

        Returns True exactly once per outage episode — the call that
        installs the fallback rules. Requires both ``max_rule_age`` and
        ``fallback`` to be configured; otherwise it is a no-op.
        """
        if (self.max_rule_age is None or self.fallback is None
                or self.fallback_active):
            return False
        if self.rule_age(now) <= self.max_rule_age:
            return False
        # purge the dead controller's per-class rules for this cluster so
        # the fallback's wildcard rules actually take effect (exact-class
        # lookups would otherwise keep hitting the stale entries)
        for key in sorted(table.keys_for_cluster(self.cluster),
                          key=lambda k: (k.service, k.traffic_class)):
            table.remove(key)
        for rule in self.fallback.compute_rules(ctx):
            if rule.src_cluster == self.cluster:
                table.set_weights(rule.key, rule.weight_map())
        self.fallback_active = True
        self.fallback_activations += 1
        self.fallback_tripped_at = now
        return True

    def __repr__(self) -> str:
        return (f"ClusterController({self.cluster!r}, "
                f"pending={len(self._pending)}, "
                f"fallback_active={self.fallback_active})")
