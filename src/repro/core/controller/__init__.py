"""SLATE control plane: Global Controller, Cluster Controller, rollout."""

from .cluster_controller import ClusterController, FallbackPolicy
from .forecast import HoltForecaster
from .global_controller import GlobalController, GlobalControllerConfig
from .policy import SlatePolicy
from .rollout import IncrementalRollout, RolloutConfig

__all__ = [
    "ClusterController", "FallbackPolicy",
    "HoltForecaster",
    "GlobalController", "GlobalControllerConfig",
    "SlatePolicy",
    "IncrementalRollout", "RolloutConfig",
]
