"""Demand forecasting: plan for where load is going, not where it was.

§5 "Scalability & fast reaction" asks the routing system to handle
microbursts. A purely reactive controller (EWMA of observed demand) always
plans one epoch behind; during a ramp it persistently under-provisions the
offload. :class:`HoltForecaster` implements Holt's linear exponential
smoothing — level + trend — so the Global Controller can optimize for the
*next* epoch's demand. The reaction benchmark compares the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HoltForecaster"]


@dataclass
class _SeriesState:
    level: float
    trend: float = 0.0
    observations: int = 1


class HoltForecaster:
    """Holt's linear (double exponential) smoothing per keyed series.

    ``alpha`` smooths the level, ``beta`` the trend. Forecasts are clamped
    at zero (demand cannot be negative). One forecaster tracks many series
    (one per (class, cluster) here), keyed by hashable keys.
    """

    def __init__(self, alpha: float = 0.6, beta: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 <= beta <= 1:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self._series: dict = {}

    def observe(self, key, value: float) -> None:
        """Fold one observation into the keyed series."""
        if value < 0:
            raise ValueError(f"negative observation {value} for {key!r}")
        state = self._series.get(key)
        if state is None:
            self._series[key] = _SeriesState(level=value)
            return
        previous_level = state.level
        state.level = (self.alpha * value
                       + (1 - self.alpha) * (state.level + state.trend))
        state.trend = (self.beta * (state.level - previous_level)
                       + (1 - self.beta) * state.trend)
        state.observations += 1

    def forecast(self, key, steps_ahead: int = 1) -> float:
        """Forecast ``steps_ahead`` epochs out; 0.0 for unseen keys."""
        if steps_ahead < 0:
            raise ValueError("steps_ahead must be >= 0")
        state = self._series.get(key)
        if state is None:
            return 0.0
        return max(0.0, state.level + steps_ahead * state.trend)

    def known(self, key) -> bool:
        return key in self._series

    def __len__(self) -> int:
        return len(self._series)
