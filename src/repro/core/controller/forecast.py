"""Demand forecasting: plan for where load is going, not where it was.

§5 "Scalability & fast reaction" asks the routing system to handle
microbursts. A purely reactive controller (EWMA of observed demand) always
plans one epoch behind; during a ramp it persistently under-provisions the
offload. :class:`HoltForecaster` implements Holt's linear exponential
smoothing — level + trend — so the Global Controller can optimize for the
*next* epoch's demand. The reaction benchmark compares the two modes.

The implementation lives in :mod:`repro.forecasting`, the shared model
library the predictive observability pillar (:mod:`repro.obs.forecast`)
also fits and backtests — one Holt, not two. This module re-exports it so
controller code keeps its historical import path; at the default
``phi=1.0`` (undamped) the arithmetic is bit-identical to the original
in-controller implementation, which the equivalence test in
``tests/test_forecast.py`` pins.
"""

from __future__ import annotations

from ...forecasting import HoltForecaster

__all__ = ["HoltForecaster"]
