"""SLATE core: traffic classes, latency models, optimizer, controllers."""

from .controller import (ClusterController, GlobalController,
                         GlobalControllerConfig, IncrementalRollout,
                         RolloutConfig, SlatePolicy)
from .optimizer import (ClassWorkload, OptimizationResult, SolverError,
                        TEProblem, solve)
from .rules import RoutingRule, RuleSet

__all__ = [
    "ClusterController", "GlobalController", "GlobalControllerConfig",
    "IncrementalRollout", "RolloutConfig", "SlatePolicy",
    "ClassWorkload", "OptimizationResult", "SolverError", "TEProblem",
    "solve",
    "RoutingRule", "RuleSet",
]
