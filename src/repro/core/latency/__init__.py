"""Load-to-latency models and online profile learning (§3.3, §5)."""

from .fitting import (FitResult, LoadLatencySample, fit_mmc_service_time,
                      service_time_from_window)
from .mm1 import (PoolDelayModel, erlang_c, mm1_backlog, mm1_sojourn,
                  mmc_backlog, mmc_mean_wait, mmc_sojourn)
from .profiles import Profile, ProfileRegistry

__all__ = [
    "FitResult", "LoadLatencySample", "fit_mmc_service_time",
    "service_time_from_window",
    "PoolDelayModel", "erlang_c", "mm1_backlog", "mm1_sojourn",
    "mmc_backlog", "mmc_mean_wait", "mmc_sojourn",
    "Profile", "ProfileRegistry",
]
