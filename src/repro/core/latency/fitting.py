"""Learning latency profiles from telemetry (§5 "Latency prediction").

The paper argues profiles should be learned "dynamically in production,
rather than profiling offline". Two estimators are provided:

* :func:`service_time_from_window` — when proxies can measure pure compute
  time per span (response time minus downstream time), the per-class service
  time is just the telemetry mean. This is the production path.
* :func:`fit_mmc_service_time` — when only (arrival rate, mean sojourn)
  pairs are observable, invert the M/M/c sojourn curve by least squares over
  the single unknown ``service_time``. Used when compute time is opaque.

Both feed the optimizer's per-(service, class) compute demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from ...mesh.telemetry import ServiceClassWindow
from .mm1 import mmc_sojourn

__all__ = ["LoadLatencySample", "service_time_from_window",
           "fit_mmc_service_time", "FitResult"]


@dataclass(frozen=True)
class LoadLatencySample:
    """One observation: arrival rate (req/s) and mean sojourn (s)."""

    arrival_rate: float
    mean_sojourn: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.mean_sojourn < 0:
            raise ValueError(f"negative sample: {self}")


@dataclass(frozen=True)
class FitResult:
    """Outcome of a least-squares service-time fit."""

    service_time: float
    residual: float
    n_samples: int


def service_time_from_window(window: ServiceClassWindow) -> float | None:
    """Mean observed compute time for a (service, class) window.

    Returns ``None`` when the window has no completions (cannot estimate).
    """
    if window.completions == 0:
        return None
    return window.mean_exec


def fit_mmc_service_time(samples: list[LoadLatencySample], servers: int,
                         min_samples: int = 3) -> FitResult:
    """Fit the M/M/c mean-sojourn curve ``W(λ; st)`` to observations.

    The single parameter is the mean service time ``st``. The search domain
    keeps every sample in the stable region (``λ · st < servers``).
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    usable = [s for s in samples if s.arrival_rate > 0 and s.mean_sojourn > 0]
    if len(usable) < min_samples:
        raise ValueError(
            f"need at least {min_samples} positive samples, got {len(usable)}")

    max_rate = max(s.arrival_rate for s in usable)
    st_upper = 0.999 * servers / max_rate
    # the sojourn can never be below the service time, so the smallest
    # observed sojourn bounds st from above as well
    st_upper = min(st_upper, min(s.mean_sojourn for s in usable))
    st_lower = 1e-9
    if st_upper <= st_lower:
        raise ValueError("samples admit no stable service time")

    def loss(st: float) -> float:
        total = 0.0
        for sample in usable:
            predicted = mmc_sojourn(sample.arrival_rate, st, servers)
            if not math.isfinite(predicted):
                return 1e18
            total += (predicted - sample.mean_sojourn) ** 2
        return total

    outcome = optimize.minimize_scalar(
        loss, bounds=(st_lower, st_upper), method="bounded")
    st = float(outcome.x)
    return FitResult(service_time=st, residual=float(loss(st)),
                     n_samples=len(usable))
