"""Latency profile registry: the Global Controller's learned model state.

Profiles are per (service, traffic class) mean compute times, learned online
from the Cluster Controllers' epoch reports and smoothed with an EWMA so a
single noisy epoch cannot yank the optimizer's inputs (§5 "Resilience to
prediction error" motivates conservative updating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...mesh.telemetry import ClusterEpochReport
from .fitting import service_time_from_window

__all__ = ["ProfileRegistry", "Profile"]


@dataclass
class Profile:
    """Learned state for one (service, traffic class)."""

    service_time: float
    observations: int = 0

    def update(self, sample: float, alpha: float) -> None:
        self.service_time = (1 - alpha) * self.service_time + alpha * sample
        self.observations += 1


@dataclass
class ProfileRegistry:
    """EWMA-smoothed per-(service, class) service-time estimates."""

    #: smoothing factor: weight of the newest epoch's estimate
    alpha: float = 0.3
    #: used for pairs never observed (forces conservative routing until data
    #: arrives)
    default_service_time: float = 0.005
    _profiles: dict[tuple[str, str], Profile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.default_service_time <= 0:
            raise ValueError("default_service_time must be > 0")

    def ingest(self, reports: list[ClusterEpochReport]) -> None:
        """Fold one epoch's cluster reports into the profiles.

        Windows from different clusters for the same (service, class) are
        merged weighted by completions before the EWMA step, so a cluster
        handling 10x the traffic contributes 10x the evidence.
        """
        merged: dict[tuple[str, str], tuple[float, int]] = {}
        for report in reports:
            for (service, cls), window in report.service_class.items():
                sample = service_time_from_window(window)
                if sample is None:
                    continue
                exec_sum, count = merged.get((service, cls), (0.0, 0))
                merged[(service, cls)] = (
                    exec_sum + sample * window.completions,
                    count + window.completions)
        for key, (exec_sum, count) in merged.items():
            sample = exec_sum / count
            profile = self._profiles.get(key)
            if profile is None:
                self._profiles[key] = Profile(service_time=sample,
                                              observations=1)
            else:
                profile.update(sample, self.alpha)

    def service_time(self, service: str, traffic_class: str) -> float:
        """Best current estimate, falling back to the default."""
        profile = self._profiles.get((service, traffic_class))
        if profile is None:
            return self.default_service_time
        return profile.service_time

    def known(self, service: str, traffic_class: str) -> bool:
        return (service, traffic_class) in self._profiles

    def exec_time_map(self, traffic_class: str,
                      services: list[str]) -> dict[str, float]:
        """Per-service compute times for one class (optimizer input)."""
        return {service: self.service_time(service, traffic_class)
                for service in services}

    def __len__(self) -> int:
        return len(self._profiles)
