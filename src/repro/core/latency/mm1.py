"""Queueing models for service load-to-latency behaviour (§3.3).

The paper models per-class latency at a service "as a function of load with a
variation of a M/M/1 queuing model". The simulator's replica pools are
multi-server FIFO queues, so we provide both:

* the classic M/M/1 relations (what the Global Controller's LP linearises in
  its cheapest mode), and
* exact M/M/c (Erlang-C) relations matching the simulated pools.

Throughout, *offered work* ``a = λ · service_time`` is measured in erlangs —
the natural unit for multi-class pools, where a request's "size" is its
compute demand. ``system_backlog`` functions return the mean number of
requests in the system, which by Little's law is the pool's contribution of
latency-seconds per second — the quantity the TE objective sums.
"""

from __future__ import annotations

import math

__all__ = ["mm1_sojourn", "mm1_backlog", "erlang_c", "mmc_mean_wait",
           "mmc_sojourn", "mmc_backlog", "PoolDelayModel"]


def mm1_sojourn(lam: float, mu: float) -> float:
    """Mean time in an M/M/1 system: ``1 / (mu - lam)``. Infinite at λ≥μ."""
    if lam < 0 or mu <= 0:
        raise ValueError(f"need lam >= 0 and mu > 0, got {lam}, {mu}")
    if lam >= mu:
        return math.inf
    return 1.0 / (mu - lam)


def mm1_backlog(rho: float) -> float:
    """Mean number in an M/M/1 system at utilization ρ: ``ρ / (1 - ρ)``."""
    if rho < 0:
        raise ValueError(f"utilization must be >= 0, got {rho}")
    if rho >= 1.0:
        return math.inf
    return rho / (1.0 - rho)


def erlang_c(servers: int, offered: float) -> float:
    """Erlang-C: probability an arrival waits in an M/M/c queue.

    ``offered`` is the load in erlangs (= λ·service_time); must be below
    ``servers`` for a stable queue. Computed with the standard recurrence on
    the Erlang-B formula for numerical stability at large ``servers``.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered < 0:
        raise ValueError(f"offered load must be >= 0, got {offered}")
    if offered == 0:
        return 0.0
    if offered >= servers:
        return 1.0
    # Erlang-B via recurrence: B(0) = 1; B(n) = a·B(n-1) / (n + a·B(n-1))
    blocking = 1.0
    for n in range(1, servers + 1):
        blocking = offered * blocking / (n + offered * blocking)
    rho = offered / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_wait(lam: float, service_time: float, servers: int) -> float:
    """Mean queueing delay (excluding service) in an M/M/c system."""
    if service_time <= 0 or lam == 0:
        return 0.0
    offered = lam * service_time
    if offered >= servers:
        return math.inf
    wait_prob = erlang_c(servers, offered)
    return wait_prob * service_time / (servers - offered)


def mmc_sojourn(lam: float, service_time: float, servers: int) -> float:
    """Mean time in system (wait + service) for an M/M/c queue."""
    wait = mmc_mean_wait(lam, service_time, servers)
    return wait + service_time if math.isfinite(wait) else math.inf


def mmc_backlog(offered: float, servers: int) -> float:
    """Mean number in an M/M/c system given offered erlangs.

    ``N(a) = a + a · C(c, a) / (c - a)`` — the in-service erlangs plus the
    queue. Expressed purely in erlangs so multi-class pools can use it with
    ``a = Σ_k λ_k · st_k``.
    """
    if offered < 0:
        raise ValueError(f"offered load must be >= 0, got {offered}")
    if offered >= servers:
        return math.inf
    if offered == 0:
        return 0.0
    return offered + offered * erlang_c(servers, offered) / (servers - offered)


class PoolDelayModel:
    """Mean backlog of one replica pool as a function of offered erlangs.

    Two modes:

    * ``"mmc"`` (default): exact M/M/c — matches the simulator's pools for
      single-class traffic and is a close work-conserving approximation for
      mixed classes.
    * ``"mm1"``: the pool as one fast M/M/1 server (the classic Kleinrock
      network-TE delay function) — cheaper and more pessimistic at low load.
    """

    MODES = ("mmc", "mm1")

    def __init__(self, servers: int, mode: str = "mmc") -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {self.MODES}")
        self.servers = servers
        self.mode = mode

    @property
    def capacity(self) -> float:
        """Maximum sustainable offered load, erlangs."""
        return float(self.servers)

    def backlog(self, offered: float) -> float:
        """Mean requests in system at ``offered`` erlangs."""
        if self.mode == "mmc":
            return mmc_backlog(offered, self.servers)
        rho = offered / self.servers
        return mm1_backlog(rho)

    def __repr__(self) -> str:
        return f"PoolDelayModel(servers={self.servers}, mode={self.mode!r})"
