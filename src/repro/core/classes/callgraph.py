"""Call-graph inference from trace telemetry.

The real SLATE cannot read an application's source: per §3.1 the proxies
export "trace information", and the Global Controller must learn each
traffic class's call tree — which services call which, how many child
calls one execution spawns, the request/response sizes, and per-service
compute times — from those traces. This module does exactly that.

:class:`CallGraphLearner` accumulates sampled spans across epochs and
produces, per traffic class, a :class:`~repro.sim.apps.TrafficClassSpec`
the optimizer can consume. Inference is purely statistical:

* ``calls_per_request`` of edge u→v = observed v-executions with caller u
  divided by observed u-executions (so fan-out and probabilistic calls are
  captured as expectations);
* byte sizes and compute times are running means;
* the root service is the one invoked by the ingress gateway
  (``caller_service is None``).

A callee observed with multiple distinct callers in one class violates the
tree assumption; the learner keeps the dominant caller and flags the class
(``tree_violations``) so operators can split the class (§5 "the majority
of requests in a meaningful traffic class should spawn the same child call
graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...sim.apps import CallEdge, TrafficClassSpec
from ...sim.request import RequestAttributes, Span

__all__ = ["EdgeEstimate", "CallGraphLearner"]


@dataclass
class EdgeEstimate:
    """Running statistics for one observed caller→callee edge."""

    calls: int = 0
    request_bytes_sum: float = 0.0
    response_bytes_sum: float = 0.0

    def observe(self, span: Span) -> None:
        self.calls += 1
        self.request_bytes_sum += span.request_bytes
        self.response_bytes_sum += span.response_bytes

    @property
    def mean_request_bytes(self) -> int:
        return round(self.request_bytes_sum / self.calls) if self.calls else 0

    @property
    def mean_response_bytes(self) -> int:
        return round(self.response_bytes_sum / self.calls) if self.calls else 0


@dataclass
class _ClassState:
    """Accumulated evidence for one traffic class."""

    #: service → execution count
    executions: dict[str, int] = field(default_factory=dict)
    #: service → summed exec seconds
    exec_time_sum: dict[str, float] = field(default_factory=dict)
    #: (caller, callee) → edge stats; caller None = ingress
    edges: dict[tuple[str | None, str], EdgeEstimate] = field(
        default_factory=dict)

    def observe(self, span: Span) -> None:
        self.executions[span.service] = (
            self.executions.get(span.service, 0) + 1)
        self.exec_time_sum[span.service] = (
            self.exec_time_sum.get(span.service, 0.0) + span.exec_time)
        key = (span.caller_service, span.service)
        estimate = self.edges.get(key)
        if estimate is None:
            estimate = self.edges[key] = EdgeEstimate()
        estimate.observe(span)


class CallGraphLearner:
    """Learns per-class call-tree structure from sampled spans."""

    def __init__(self, min_executions: int = 20) -> None:
        if min_executions < 1:
            raise ValueError("min_executions must be >= 1")
        self.min_executions = min_executions
        self._classes: dict[str, _ClassState] = {}
        #: classes where a callee had calls from more than one caller
        self.tree_violations: dict[str, list[str]] = {}

    def ingest(self, spans: list[Span]) -> None:
        """Fold a batch of sampled spans into the evidence."""
        for span in spans:
            state = self._classes.get(span.traffic_class)
            if state is None:
                state = self._classes[span.traffic_class] = _ClassState()
            state.observe(span)

    @property
    def classes_seen(self) -> list[str]:
        return sorted(self._classes)

    def root_service(self, traffic_class: str) -> str | None:
        """The service invoked directly by gateways, if observed."""
        state = self._classes.get(traffic_class)
        if state is None:
            return None
        roots = [callee for (caller, callee) in state.edges
                 if caller is None]
        return roots[0] if roots else None

    def ready(self, traffic_class: str) -> bool:
        """Enough evidence to emit a spec for this class?"""
        state = self._classes.get(traffic_class)
        if state is None or self.root_service(traffic_class) is None:
            return False
        root = self.root_service(traffic_class)
        return state.executions.get(root, 0) >= self.min_executions

    def infer_spec(self, traffic_class: str,
                   attributes: RequestAttributes) -> TrafficClassSpec:
        """Build a :class:`TrafficClassSpec` from the observed evidence.

        ``attributes`` is the class's matching template (the learner sees
        spans, not ingress attributes; the classifier that named the class
        knows them). Raises when the class is not :meth:`ready`.
        """
        if not self.ready(traffic_class):
            raise ValueError(
                f"not enough trace evidence for class {traffic_class!r}")
        state = self._classes[traffic_class]
        root = self.root_service(traffic_class)

        # pick the dominant caller for each callee; record violations
        chosen: dict[str, tuple[str, EdgeEstimate]] = {}
        violated: list[str] = []
        for (caller, callee), estimate in state.edges.items():
            if caller is None:
                continue
            current = chosen.get(callee)
            if current is None or estimate.calls > current[1].calls:
                if current is not None:
                    violated.append(callee)
                chosen[callee] = (caller, estimate)
            elif current is not None and caller != current[0]:
                violated.append(callee)
        if violated:
            self.tree_violations[traffic_class] = sorted(set(violated))

        edges = []
        for callee, (caller, estimate) in sorted(chosen.items()):
            caller_execs = state.executions.get(caller, 0)
            if caller_execs == 0:
                continue
            edges.append(CallEdge(
                caller=caller, callee=callee,
                calls_per_request=estimate.calls / caller_execs,
                request_bytes=estimate.mean_request_bytes,
                response_bytes=estimate.mean_response_bytes,
            ))

        exec_time = {
            service: state.exec_time_sum[service] / count
            for service, count in state.executions.items() if count > 0
        }
        ingress = state.edges[(None, root)]
        return TrafficClassSpec(
            name=traffic_class,
            attributes=attributes,
            root_service=root,
            edges=edges,
            exec_time=exec_time,
            ingress_request_bytes=ingress.mean_request_bytes,
            ingress_response_bytes=ingress.mean_response_bytes,
        )
