"""Traffic classes: classification and derivation (§3.3, §5)."""

from .callgraph import CallGraphLearner
from .classifier import (AppSpecClassifier, AssignmentClassifier, MatchRule,
                         MethodPathClassifier, RuleBasedClassifier,
                         SingleClassClassifier, canonical_class_name)
from .derivation import (OTHER_CLASS, DerivedClasses, derive_classes,
                         derive_classes_by_behavior)

__all__ = [
    "CallGraphLearner",
    "AppSpecClassifier", "AssignmentClassifier", "MatchRule",
    "MethodPathClassifier", "RuleBasedClassifier", "SingleClassClassifier",
    "canonical_class_name",
    "OTHER_CLASS", "DerivedClasses", "derive_classes",
    "derive_classes_by_behavior",
]
