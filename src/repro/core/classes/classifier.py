"""Traffic classifiers: mapping request attributes to traffic classes.

§3.3 "Deriving Classes": SLATE classifies HTTP requests on (service, HTTP
method, HTTP path). Classifiers here implement the
:class:`repro.mesh.gateway.Classifier` protocol, so any of them can be
installed at the gateways by the control plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...sim.apps import AppSpec
from ...sim.request import RequestAttributes

__all__ = ["SingleClassClassifier", "MatchRule", "RuleBasedClassifier",
           "MethodPathClassifier", "AssignmentClassifier",
           "AppSpecClassifier", "canonical_class_name"]


def canonical_class_name(service: str, method: str, path: str) -> str:
    """The paper's class identity: service + method + path."""
    return f"{service}:{method}:{path}"


class SingleClassClassifier:
    """Treat all requests homogeneously (how Waterfall sees traffic)."""

    def __init__(self, name: str = "default") -> None:
        self.name = name

    def classify(self, attributes: RequestAttributes) -> str:
        return self.name


@dataclass(frozen=True)
class MatchRule:
    """One match clause: all present fields must match the request.

    ``path_prefix`` matches ``attributes.path.startswith``; ``header`` is a
    (name, value) pair compared case-insensitively on the name.
    """

    traffic_class: str
    service: str | None = None
    method: str | None = None
    path_prefix: str | None = None
    header: tuple[str, str] | None = None

    def matches(self, attributes: RequestAttributes) -> bool:
        if self.service is not None and attributes.service != self.service:
            return False
        if self.method is not None and attributes.method != self.method:
            return False
        if (self.path_prefix is not None
                and not attributes.path.startswith(self.path_prefix)):
            return False
        if self.header is not None:
            name, value = self.header
            if attributes.header(name) != value:
                return False
        return True


@dataclass
class RuleBasedClassifier:
    """First-match-wins ordered rules with a fallback class."""

    rules: list[MatchRule] = field(default_factory=list)
    fallback: str = "default"

    def classify(self, attributes: RequestAttributes) -> str:
        for rule in self.rules:
            if rule.matches(attributes):
                return rule.traffic_class
        return self.fallback


class MethodPathClassifier:
    """One class per distinct (service, method, path) — the paper's heuristic.

    ``known`` restricts output to an allow-list (unknown combinations fall
    back), which is how a bounded class set derived offline is enforced
    online.
    """

    def __init__(self, known: set[str] | None = None,
                 fallback: str = "default") -> None:
        self._known = known
        self._fallback = fallback

    def classify(self, attributes: RequestAttributes) -> str:
        name = canonical_class_name(attributes.service, attributes.method,
                                    attributes.path)
        if self._known is not None and name not in self._known:
            return self._fallback
        return name


class AssignmentClassifier:
    """Classify by an explicit signature → class mapping.

    The online form of a derivation result: every observed
    (service, method, path) signature maps to its derived class (possibly a
    merged behavioural class named after its leader signature); unseen
    signatures fall back.
    """

    def __init__(self, assignment: dict[str, str],
                 fallback: str = "other") -> None:
        self._assignment = dict(assignment)
        self._fallback = fallback

    def classify(self, attributes: RequestAttributes) -> str:
        signature = canonical_class_name(attributes.service,
                                         attributes.method, attributes.path)
        return self._assignment.get(signature, self._fallback)


class AppSpecClassifier:
    """Ground-truth classifier for simulations: match an app's class specs.

    Requests are matched to the application class whose template attributes
    share (service, method, path). Used when the true classes are known —
    the oracle against which derived classes are compared.
    """

    def __init__(self, app: AppSpec, fallback: str | None = None) -> None:
        self._index: dict[tuple[str, str, str], str] = {}
        for name, spec in app.classes.items():
            attrs = spec.attributes
            key = (attrs.service, attrs.method, attrs.path)
            if key in self._index:
                raise ValueError(
                    f"app {app.name!r}: classes {self._index[key]!r} and "
                    f"{name!r} share attributes {key}")
            self._index[key] = name
        if fallback is None and len(app.classes) == 1:
            fallback = next(iter(app.classes))
        self._fallback = fallback

    def classify(self, attributes: RequestAttributes) -> str:
        key = (attributes.service, attributes.method, attributes.path)
        name = self._index.get(key)
        if name is not None:
            return name
        if self._fallback is not None:
            return self._fallback
        raise KeyError(f"no traffic class matches attributes {key}")
