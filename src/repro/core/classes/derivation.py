"""Automatic traffic-class derivation from observed traffic (§5).

The challenge: "an extremely large number of classes could more accurately
characterize traffic in principle, but makes it hard to get enough samples
... and worsens performance of the centralized optimizer. Finding the right
tradeoff with 'just enough' meaningful classes is the key."

:func:`derive_classes` implements the paper's heuristic with the two knobs
that tradeoff demands: keep a distinct class for each sufficiently popular
(service, method, path) signature, subject to a hard cap, and fold the long
tail into a catch-all class so every class retains enough observations to
characterise its average behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ...sim.request import RequestAttributes
from .classifier import (AssignmentClassifier, MethodPathClassifier,
                         canonical_class_name)

__all__ = ["DerivedClasses", "derive_classes", "derive_classes_by_behavior"]

OTHER_CLASS = "other"


@dataclass
class DerivedClasses:
    """The outcome of a derivation pass."""

    #: canonical signature → derived class name (tail signatures map to
    #: the catch-all)
    assignment: dict[str, str]
    #: derived class name → observation count backing it
    support: dict[str, int]
    total_observations: int

    @property
    def class_names(self) -> list[str]:
        return sorted(self.support)

    def classifier(self) -> AssignmentClassifier:
        """An online classifier enforcing the derived class set.

        Uses the full signature → class mapping, so behaviourally merged
        signatures route to their cluster's class; unseen signatures fall
        back to the catch-all.
        """
        return AssignmentClassifier(self.assignment, fallback=OTHER_CLASS)

    def share(self, class_name: str) -> float:
        """Fraction of observations carried by one derived class."""
        if self.total_observations == 0:
            return 0.0
        return self.support.get(class_name, 0) / self.total_observations


def derive_classes(observations: list[RequestAttributes],
                   max_classes: int = 16,
                   min_share: float = 0.01,
                   min_samples: int = 30) -> DerivedClasses:
    """Group observed requests into "just enough" traffic classes.

    A (service, method, path) signature keeps its own class when it has at
    least ``min_samples`` observations *and* at least ``min_share`` of total
    traffic; at most ``max_classes - 1`` such classes are kept (most popular
    first), everything else folds into the ``"other"`` catch-all.
    """
    if max_classes < 1:
        raise ValueError(f"max_classes must be >= 1, got {max_classes}")
    if not 0 <= min_share <= 1:
        raise ValueError(f"min_share must be in [0, 1], got {min_share}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")

    counts: Counter[str] = Counter()
    for attributes in observations:
        counts[canonical_class_name(attributes.service, attributes.method,
                                    attributes.path)] += 1
    total = sum(counts.values())

    assignment: dict[str, str] = {}
    support: dict[str, int] = {}
    kept = 0
    # most popular first; ties broken by name for determinism
    for signature, count in sorted(counts.items(),
                                   key=lambda item: (-item[1], item[0])):
        popular = (count >= min_samples
                   and total > 0 and count / total >= min_share)
        if popular and kept < max_classes - 1:
            assignment[signature] = signature
            support[signature] = count
            kept += 1
        else:
            assignment[signature] = OTHER_CLASS
            support[OTHER_CLASS] = support.get(OTHER_CLASS, 0) + count
    return DerivedClasses(assignment=assignment, support=support,
                          total_observations=total)


def derive_classes_by_behavior(samples: list[tuple["RequestAttributes", float]],
                               max_classes: int = 8,
                               merge_tolerance: float = 0.3,
                               min_samples: int = 10) -> DerivedClasses:
    """Group signatures by observed *behaviour*, not identity (§5).

    The paper's future-work direction: "more advanced techniques, such as
    machine learning, could be applied to derive a small yet precise set of
    classes." Here each (service, method, path) signature is characterised
    by its mean observed cost (e.g. root-span compute or total latency),
    and signatures whose costs differ by less than ``merge_tolerance``
    (relative) are merged into one behavioural class — agglomerative 1-D
    clustering. This keeps the optimizer's class count small while
    preserving the compute distinctions routing actually cares about, even
    when an application exposes hundreds of distinct URLs.

    ``samples`` are (attributes, cost) observations. Signatures with fewer
    than ``min_samples`` observations fold into the catch-all class.
    Derived class names are the dominant member's signature, so classifiers
    built from the result still match on attributes.
    """
    if max_classes < 1:
        raise ValueError(f"max_classes must be >= 1, got {max_classes}")
    if merge_tolerance < 0:
        raise ValueError(f"merge_tolerance must be >= 0")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")

    sums: dict[str, float] = {}
    counts: Counter[str] = Counter()
    for attributes, cost in samples:
        if cost < 0:
            raise ValueError(f"negative cost sample {cost}")
        signature = canonical_class_name(attributes.service,
                                         attributes.method, attributes.path)
        counts[signature] += 1
        sums[signature] = sums.get(signature, 0.0) + cost
    total = sum(counts.values())

    assignment: dict[str, str] = {}
    support: dict[str, int] = {}
    # thin signatures straight to the catch-all
    rich = []
    for signature, count in counts.items():
        if count < min_samples:
            assignment[signature] = OTHER_CLASS
            support[OTHER_CLASS] = support.get(OTHER_CLASS, 0) + count
        else:
            rich.append((sums[signature] / count, signature))

    # agglomerate along the cost axis: sort by mean cost, start a new
    # cluster whenever the next signature's cost exceeds the tolerance
    # relative to the current cluster's (count-weighted) mean
    rich.sort()
    clusters: list[list[str]] = []
    cluster_cost = 0.0
    cluster_weight = 0
    for cost, signature in rich:
        weight = counts[signature]
        if clusters and (cost <= cluster_cost * (1 + merge_tolerance)
                         or cluster_cost == 0.0 and cost == 0.0):
            clusters[-1].append(signature)
            cluster_cost = ((cluster_cost * cluster_weight + cost * weight)
                            / (cluster_weight + weight))
            cluster_weight += weight
        else:
            clusters.append([signature])
            cluster_cost = cost
            cluster_weight = weight

    # enforce the cap: merge the smallest clusters into the catch-all
    clusters.sort(key=lambda members: -sum(counts[s] for s in members))
    budget = max_classes - 1
    for index, members in enumerate(clusters):
        cluster_count = sum(counts[s] for s in members)
        if index < budget:
            # name the class after the most popular member signature
            leader = max(members, key=lambda s: (counts[s], s))
            for signature in members:
                assignment[signature] = leader
            support[leader] = cluster_count
        else:
            for signature in members:
                assignment[signature] = OTHER_CLASS
            support[OTHER_CLASS] = (support.get(OTHER_CLASS, 0)
                                    + cluster_count)
    return DerivedClasses(assignment=assignment, support=support,
                          total_observations=total)
