"""Warm-started epoch solving: previous-solution reuse across re-plans.

scipy's HiGHS bindings expose no basis I/O, so classic simplex warm starts
are unavailable. What *is* available — and exact — is column restriction
with a pricing certificate:

1. keep the columns the previous epoch's solution actually used (its
   support) plus every pool epigraph column;
2. solve the LP restricted to those columns (tiny compared to the full
   model);
3. price every excluded column with the restricted solve's duals:
   ``r = c − A_ubᵀ·y_ub − A_eqᵀ·y_eq``. If every excluded reduced cost is
   nonnegative, the restricted optimum is optimal for the **full** LP —
   this is exactly delayed column generation's termination test, so the
   warm result is not an approximation;
4. columns that price negative are admitted and the restriction re-solved;
   if optimality still cannot be certified, fall back to a cold solve.

:class:`EpochSolver` packages this with the other two reuse layers so the
controller gets a strict cost ladder per epoch:

* demand unchanged (after ``demand_quantum`` rounding) → identical
  fingerprint → :class:`~repro.core.optimizer.cache.SolverCache` replay,
  no solver at all;
* demand values moved, structure didn't → structure-cache rescatter build
  + warm restricted solve;
* structure moved (topology, classes, replicas) → cold build + cold solve.

Under ``REPRO_DEBUG_INVARIANTS=1`` every warm solve is shadowed by a full
cold solve and must land on the same optimal vertex: agreement to a scaled
``WARM_SHADOW_TOLERANCE`` (1e-9 relative). Bitwise equality is checked
first and usually holds — on the seed scenarios, whose round demand values
produce exactly-representable vertices, it always does, and the property
tests pin that down — but it is not a structural guarantee: the restricted
problem takes a different arithmetic route through HiGHS presolve, so
instances with non-representable vertex coordinates (e.g. EWMA-estimated
demand) can differ from the cold solve in the last float bit. Exact
*optimality* is never in question either way — that is what the pricing
certificate proves.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

import numpy as np
from scipy import optimize

from ...devtools.invariants import InvariantViolation, invariants_enabled
from .cache import SolverCache, model_fingerprint
from .model import build_model
from .piecewise import DEFAULT_KNOT_FRACTIONS
from .problem import TEProblem
from .result import OptimizationResult, extract_result
from .solve import SolverError, _solve_lp, _solve_milp
from .vectorized import StructureCache

__all__ = ["EpochSolver", "warm_solve"]

#: solution entries below this are not part of the support
SUPPORT_EPSILON = 1e-9

#: pricing slack: an excluded column is admissible at zero when its reduced
#: cost is above -tol (scaled by objective magnitude)
PRICING_TOLERANCE = 1e-9

#: rounds of admit-and-re-solve before giving up and solving cold
MAX_WARM_ROUNDS = 2

#: shadow-check tolerance (relative, scaled by the cold solution's
#: magnitude) for solver-arithmetic last-bit noise; see module docstring
WARM_SHADOW_TOLERANCE = 1e-9

#: "caller did not choose" marker for EpochSolver's structure_cache param
#: (None is a real value there: it disables structure reuse)
_DEFAULT = object()


def warm_solve(model, previous_solution: np.ndarray,
               profiler=None) -> np.ndarray | None:
    """Re-solve an LP restricted to the previous solution's support.

    Returns the full-length solution vector when optimality of the
    restriction is certified by pricing, else ``None`` (caller solves
    cold). Only valid for pure LPs. ``profiler`` duck-types the
    control-plane profiler: the restricted solves are timed under
    ``warm_solve`` and the reduced-cost pricing under
    ``pricing_certificate``.
    """
    if model.is_mip:
        return None

    def _section(name):
        return nullcontext() if profiler is None else profiler.section(name)
    n = model.n_variables
    n_routes = len(model.route_columns)
    if len(previous_solution) != n:
        return None
    support = np.flatnonzero(previous_solution > SUPPORT_EPSILON)
    # epigraph/pool columns are always kept: they are few, always basic,
    # and keeping them preserves feasibility of every pin/epigraph row
    keep = np.union1d(support, np.arange(n_routes, n, dtype=np.intp))
    if len(keep) >= n:
        return None   # nothing restricted, a "warm" solve would be cold

    c = model.objective
    a_ub = model.a_ub.tocsc()
    a_eq = model.a_eq.tocsc()
    upper = model.upper_bounds
    tolerance = PRICING_TOLERANCE * (1.0 + float(np.abs(c).max(initial=0.0)))

    for _ in range(MAX_WARM_ROUNDS):
        with _section("warm_solve"):
            outcome = optimize.linprog(
                c=c[keep],
                A_ub=a_ub[:, keep], b_ub=model.b_ub,
                A_eq=a_eq[:, keep], b_eq=model.b_eq,
                bounds=[(0.0, ub if np.isfinite(ub) else None)
                        for ub in upper[keep]],
                method="highs",
            )
        if not outcome.success:
            return None
        y_ub = outcome.ineqlin.marginals
        y_eq = outcome.eqlin.marginals
        if y_ub is None or y_eq is None:
            return None
        # price the full column set with the restricted duals
        with _section("pricing_certificate"):
            reduced = c - model.a_ub.T @ y_ub - model.a_eq.T @ y_eq
            excluded = np.setdiff1d(np.arange(n, dtype=np.intp), keep,
                                    assume_unique=False)
            violated = excluded[reduced[excluded] < -tolerance]
        if not violated.size:
            x = np.zeros(n)
            x[keep] = outcome.x
            return x
        keep = np.union1d(keep, violated)
        if len(keep) >= n:
            return None
    return None


class EpochSolver:
    """Build + solve pipeline with structure reuse and warm starts.

    One instance lives inside each adaptive :class:`GlobalController`; the
    oracle/one-shot paths keep using :func:`~repro.core.optimizer.solve
    .solve`. ``profiler`` duck-types the control-plane profiler's
    ``section(name)`` context manager, and ``recorder`` duck-types the
    provenance log's ``record_solve(info)`` hook (both kept duck-typed so
    ``repro.core`` never imports ``repro.obs``; both None by default, so
    the instrumented path costs one attribute check per epoch).
    """

    def __init__(self, cache: SolverCache | None = None,
                 structure_cache: StructureCache | None = _DEFAULT,
                 warm_start: bool = True,
                 max_splits: int | None = None,
                 knot_fractions=DEFAULT_KNOT_FRACTIONS,
                 formulation: str = "arc",
                 path_k: int = 4,
                 path_objective: str = "latency",
                 path_prune_limit: int | None = None,
                 profiler=None) -> None:
        if formulation not in ("arc", "path"):
            raise ValueError(f"unknown formulation {formulation!r}")
        self.cache = cache
        #: None disables structure reuse (every build is cold)
        self.structure_cache = (StructureCache()
                                if structure_cache is _DEFAULT
                                else structure_cache)
        self.warm_start = warm_start
        self.max_splits = max_splits
        self.knot_fractions = knot_fractions
        self.formulation = formulation
        self.path_k = path_k
        self.path_objective = path_objective
        self.path_prune_limit = path_prune_limit
        self.profiler = profiler
        #: duck-typed provenance sink: ``record_solve(info: dict)`` is
        #: called once per solve() with the reuse-ladder outcome
        self.recorder = None
        #: path-formulation candidate stats of the most recent build
        #: (None for the arc formulation) — surfaced via stats()/collect
        self.last_candidate_stats: dict | None = None
        self._previous: tuple[int, np.ndarray] | None = None
        # counters surfaced through stats() → repro.obs collectors
        self.builds = 0
        self.warm_builds = 0
        self.build_seconds = 0.0
        self.solves = 0
        self.warm_solves = 0
        self.warm_rejects = 0
        self.replays = 0
        self.solve_seconds = 0.0

    # ------------------------------------------------------------- helpers

    def _section(self, name: str):
        profiler = self.profiler
        if profiler is None:
            return nullcontext()
        return profiler.section(name)

    def _build(self, problem: TEProblem):
        # "vectorized_build" nests inside the legacy "optimizer-build"
        # section so existing dashboards keep their totals while the PR 7
        # phase gets its own row
        if self.formulation == "path":
            from .paths import build_path_model
            with self._section("vectorized_build"):
                return build_path_model(
                    problem, k=self.path_k, objective=self.path_objective,
                    prune_limit=self.path_prune_limit,
                    knot_fractions=self.knot_fractions,
                    structure_cache=self.structure_cache)
        with self._section("vectorized_build"):
            return build_model(problem, max_splits=self.max_splits,
                               knot_fractions=self.knot_fractions,
                               structure_cache=self.structure_cache)

    def _candidate_stats(self, model) -> dict | None:
        """Candidate-set sizes for a path-formulation model.

        Groups are (traffic_class, ingress) pairs — the unit the k-best
        enumeration ran per. None for the arc formulation.
        """
        path_vars = getattr(model, "path_vars", None)
        if path_vars is None:
            return None
        groups: dict[tuple[str, str], int] = {}
        for var in path_vars:
            key = (var.traffic_class, var.ingress)
            groups[key] = groups.get(key, 0) + 1
        return {
            "paths": len(path_vars),
            "groups": len(groups),
            "k": self.path_k,
            "max_group": max(groups.values(), default=0),
        }

    def _notify(self, solver_path: str, warm_build: bool,
                pricing: str | None, model) -> None:
        """Feed the reuse-ladder outcome to the provenance recorder."""
        recorder = self.recorder
        if recorder is None:
            return
        recorder.record_solve({
            "solver_path": solver_path,
            "warm_build": warm_build,
            "pricing": pricing,
            "formulation": self.formulation,
            "n_variables": model.n_variables,
            "candidates": self.last_candidate_stats,
        })

    def _extract(self, model, solution, status, elapsed):
        if self.formulation == "path":
            from .paths import extract_path_result
            return extract_path_result(model, solution, status, elapsed)
        return extract_result(model, solution, status, elapsed)

    # --------------------------------------------------------------- solve

    def solve(self, problem: TEProblem) -> OptimizationResult:
        """Solve one epoch's instance through the reuse ladder."""
        # solver wall time is diagnostic output, never simulation input
        started = time.perf_counter()   # lint: ignore[D02]
        structure_hits = (self.structure_cache.hits
                          if self.structure_cache is not None else 0)
        with self._section("optimizer-build"):
            model = self._build(problem)
        build_elapsed = time.perf_counter() - started   # lint: ignore[D02]
        self.builds += 1
        self.build_seconds += build_elapsed
        warm_build = (self.structure_cache is not None
                      and self.structure_cache.hits > structure_hits)
        if warm_build:
            self.warm_builds += 1
        self.last_candidate_stats = self._candidate_stats(model)

        fingerprint = None
        if self.cache is not None:
            fingerprint = model_fingerprint(model)
            entry = self.cache.lookup(fingerprint)
            if entry is not None:
                solution, status = entry
                self.replays += 1
                result = self._extract(
                    model, solution, status,
                    time.perf_counter() - started)   # lint: ignore[D02]
                result.cache_hit = True
                self._notify("replay", warm_build, None, model)
                return self._decorate(result, fingerprint, build_elapsed,
                                      warm_build, warm_start=False)

        solve_started = time.perf_counter()   # lint: ignore[D02]
        solution = None
        warm = False
        pricing = None
        if self.warm_start and self._previous is not None:
            prev_structure, prev_x = self._previous
            # object identity of the constraint matrix ⇔ same structure
            # snapshot ⇔ only b_eq/bounds may differ from last epoch
            if prev_structure == id(model.a_eq) and not model.is_mip:
                with self._section("optimizer-warm-solve"):
                    solution = warm_solve(model, prev_x,
                                          profiler=self.profiler)
                if solution is not None:
                    warm = True
                    pricing = "certified"
                    self.warm_solves += 1
                    status = "optimal"
                    self._check_warm_invariant(model, solution)
                else:
                    pricing = "rejected"
                    self.warm_rejects += 1
        if solution is None:
            with self._section("optimizer-solve"):
                if model.is_mip:
                    solution, status = _solve_milp(model)
                else:
                    solution, status = _solve_lp(model)
        elapsed = time.perf_counter() - solve_started  # lint: ignore[D02]
        self.solves += 1
        self.solve_seconds += elapsed
        if status != "optimal":
            self._previous = None
            raise SolverError(f"optimization failed: {status}")
        if not model.is_mip:
            self._previous = (id(model.a_eq), solution)
        if self.cache is not None:
            self.cache.store(fingerprint, solution, status)
        result = self._extract(model, solution, status, elapsed)
        self._notify("warm" if warm else "cold", warm_build, pricing, model)
        return self._decorate(result, fingerprint, build_elapsed,
                              warm_build, warm)

    def _decorate(self, result: OptimizationResult, fingerprint,
                  build_elapsed: float, warm_build: bool,
                  warm_start: bool) -> OptimizationResult:
        result.build_time = build_elapsed
        result.warm_build = warm_build
        result.warm_start = warm_start
        if self.cache is not None:
            result.cache_hits = self.cache.hits
            result.cache_misses = self.cache.misses
            result.fingerprint = fingerprint
        return result

    @staticmethod
    def _check_warm_invariant(model, warm_x: np.ndarray) -> None:
        """Debug mode: shadow every warm solve with a cold one.

        The warm solution must land on the cold solve's optimal vertex —
        bitwise when the vertex is exactly representable (all seed
        scenarios), and always within the scaled
        ``WARM_SHADOW_TOLERANCE`` (module docstring explains why bitwise
        is not a structural guarantee).
        """
        if not invariants_enabled():
            return
        cold_x, status = _solve_lp(model)
        if status != "optimal":
            raise InvariantViolation(
                f"warm solve succeeded but cold solve failed: {status}")
        if np.array_equal(warm_x, cold_x):
            return
        delta = np.abs(warm_x - cold_x)
        tolerance = WARM_SHADOW_TOLERANCE * (
            1.0 + float(np.abs(cold_x).max(initial=0.0)))
        if float(delta.max()) <= tolerance:
            return
        worst = int(np.argmax(delta))
        raise InvariantViolation(
            "warm-started solution diverges from cold solve: "
            f"max |Δ|={delta.max():.3e} at column {worst} "
            f"(warm={warm_x[worst]!r}, cold={cold_x[worst]!r})")

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Counters in a JSON-friendly shape (collectors, BENCH exports)."""
        return {
            "builds": self.builds,
            "warm_builds": self.warm_builds,
            "build_seconds": self.build_seconds,
            "solves": self.solves,
            "warm_solves": self.warm_solves,
            "warm_rejects": self.warm_rejects,
            "replays": self.replays,
            "solve_seconds": self.solve_seconds,
            "candidates": self.last_candidate_stats,
            "structure_cache": (self.structure_cache.stats()
                                if self.structure_cache is not None else None),
            "solver_cache": (self.cache.stats()
                             if self.cache is not None else None),
        }
