"""Path-based k-best formulation: tractability at planet scale (§5).

The arc formulation's variable count is Σ_classes Σ_edges |src|·|dst| —
quadratic in clusters — which is what makes 100 clusters × 1000 classes
(~10⁷ variables) hopeless no matter how fast assembly is. The hypergiant
TE literature's answer is to decide among *candidate paths* instead of
arcs: enumerate the k best end-to-end embeddings of each class's call
tree per ingress, and let the LP split traffic across those candidates
only. Variables collapse to k per (class, ingress) — linear in demand
entries, independent of cluster count.

An **embedding** assigns every service of a class's call tree to one
cluster; its unit latency/egress per ingress request are fixed scalars
(WAN rtt and transfer cost summed over the tree with the call-multiplier
on each edge), so path enumeration is pure geometry and the LP only
balances queueing against those precomputed path costs.

Three objectives, selected per build:

* ``"latency"`` — minimize backlog epigraph + Σ y·(rtt + α·egress); the
  path-space analogue of the arc objective (same units, same pools);
* ``"min_mlu"`` — minimize the maximum pool utilization subject to
  serving all demand (the classic TE objective; utilization may exceed
  ``rho_max``, which makes overload *visible* rather than infeasible);
* ``"max_throughput"`` — serve as much demand as possible under pool
  capacity caps (admission-control view).

Candidate generation is beam search down the call tree (BFS order, so a
service's caller is always embedded first), with the candidate clusters
per hop optionally pruned to the nearest deployed clusters — the
service-layer analogue of topology contraction, provided by
:func:`repro.core.optimizer.contraction.candidate_clusters`. Everything
is deterministic: ties break on the assignment tuple.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from .contraction import candidate_clusters
from .model import INGRESS_EDGE, class_edges, pool_segments_for
from .piecewise import DEFAULT_KNOT_FRACTIONS, Segment
from .problem import TEProblem
from .result import (FLOW_EPSILON, OptimizationResult, finalize_result)
from .vectorized import _Coo, structure_key

__all__ = ["CandidateEmbedding", "PathModel", "PathStructure",
           "candidate_paths", "build_path_model", "extract_path_result",
           "PATH_OBJECTIVES"]

PATH_OBJECTIVES = ("latency", "min_mlu", "max_throughput")


@dataclass(frozen=True)
class CandidateEmbedding:
    """One candidate end-to-end embedding of a class's call tree.

    ``assignment`` maps every service to its serving cluster, in the call
    tree's BFS order. ``unit_latency``/``unit_egress`` are per ingress
    request (call multipliers folded in); ``score`` is the ranking key
    ``unit_latency + cost_weight · unit_egress``.
    """

    traffic_class: str
    ingress: str
    assignment: tuple[tuple[str, str], ...]
    unit_latency: float
    unit_egress: float
    score: float


@dataclass
class PathModel:
    """Assembled path-formulation LP, fingerprint-compatible with
    :class:`~repro.core.optimizer.model.LinearModel` consumers."""

    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    integrality: np.ndarray
    upper_bounds: np.ndarray
    path_vars: list[CandidateEmbedding]
    #: columns of the path variables (warm-solve support detection)
    route_columns: list[int]
    #: (service, cluster) → epigraph column ("latency" objective only)
    pool_columns: dict[tuple[str, str], int]
    #: every pool of the problem, for result finalization
    pool_keys: list[tuple[str, str]]
    pool_segments: dict[tuple[str, str], list[Segment]]
    path_objective: str
    problem: TEProblem

    @property
    def n_variables(self) -> int:
        return len(self.objective)

    @property
    def is_mip(self) -> bool:
        return bool(self.integrality.any())


# --------------------------------------------------------------------------
# candidate enumeration
# --------------------------------------------------------------------------

def _stratified_beam(frontier: list, beam: int) -> list:
    """Prune ``frontier`` to ``beam`` entries, round-robin per cluster.

    Plain top-``beam`` truncation collapses the frontier onto the handful
    of clusters nearest the hot ingresses, and at planet scale that makes
    every surviving embedding share the same bottleneck pools (the LP
    goes infeasible even though fleet capacity is ample). Stratifying the
    cut by the current hop's cluster keeps the best partial for *each*
    reachable cluster before admitting anyone's second best.
    """
    if len(frontier) <= beam:
        return frontier
    by_cluster: dict[str, list] = {}
    for entry in frontier:
        by_cluster.setdefault(entry[3][-1][1], []).append(entry)
    groups = sorted(by_cluster.values(), key=lambda g: (g[0][0], g[0][3]))
    kept: list = []
    rank = 0
    while len(kept) < beam:
        admitted = False
        for group in groups:
            if rank < len(group):
                kept.append(group[rank])
                admitted = True
                if len(kept) == beam:
                    break
        if not admitted:
            break
        rank += 1
    kept.sort(key=lambda p: (p[0], p[3]))
    return kept


def _penalized_walk(problem: TEProblem, ingress: str, spec, execs,
                    incoming, order, prune_limit, pool_use) -> tuple:
    """One greedy embedding that avoids already-used pools.

    The service-layer analogue of link-disjoint k-shortest paths: each
    hop picks the deployed cluster minimizing ``(times this pool already
    appears in chosen embeddings, hop score, cluster name)``. Pool reuse
    only steers the *choice*; the returned score/latency/egress are the
    true unpenalized values, so the LP sees honest coefficients.
    """
    score = lat = egress = 0.0
    assign: tuple = ()
    placed: dict[str, str] = {}
    for service in order:
        edge = incoming[service]
        if service == spec.root_service:
            mult, caller_cluster = 1.0, ingress
        else:
            mult = execs[edge.caller] * edge.calls_per_request
            caller_cluster = placed[edge.caller]
        best = None
        for cluster in candidate_clusters(
                problem.latency, problem.deployed_in(service),
                caller_cluster, prune_limit):
            hop_lat = mult * problem.rtt(caller_cluster, cluster)
            hop_egress = mult * (
                problem.transfer_cost(caller_cluster, cluster,
                                      edge.request_bytes)
                + problem.transfer_cost(cluster, caller_cluster,
                                        edge.response_bytes))
            hop_score = hop_lat + problem.cost_weight * hop_egress
            key = (pool_use[(service, cluster)], hop_score, cluster)
            if best is None or key < best[0]:
                best = (key, cluster, hop_lat, hop_egress, hop_score)
        _, cluster, hop_lat, hop_egress, hop_score = best
        assign += ((service, cluster),)
        placed[service] = cluster
        lat += hop_lat
        egress += hop_egress
        score += hop_score
    return (score, lat, egress, assign)


def candidate_paths(problem: TEProblem, name: str, ingress: str,
                    k: int = 4, prune_limit: int | None = None,
                    beam: int | None = None) -> list[CandidateEmbedding]:
    """k best embeddings of class ``name``'s call tree from ``ingress``.

    Beam search over services in BFS order; each hop considers the
    caller's deployed clusters, pruned to the ``prune_limit`` nearest the
    caller's assigned cluster. ``beam`` (default ``max(4k, 8)``) bounds
    the partial frontier, so the result is the exact k best only when the
    beam is wide enough — the LP is correct for *any* candidate set, the
    beam only trades path quality for enumeration time.

    Slot 1 is the beam's best embedding; the remaining slots alternate
    penalized greedy walks (:func:`_penalized_walk`) with ranked beam
    entries. The walks actively avoid pools the chosen embeddings
    already use, so the candidate set spreads across clusters instead of
    stacking k near-duplicates of the shortest path — which is what
    keeps sparse planet-scale instances feasible at small ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if beam is None:
        beam = max(4 * k, 8)
    workload = problem.workloads[name]
    spec = workload.spec
    execs = spec.executions_per_request()
    incoming = {edge.callee: edge for edge in class_edges(problem, name)}
    order = spec.services()   # BFS, root first: callers precede callees

    root = spec.root_service
    root_edge = incoming[root]
    partials: list[tuple[float, float, float, tuple]] = []
    deployed = problem.deployed_in(root)
    if not deployed:
        raise ValueError(
            f"class {name!r}: service {root!r} deployed nowhere")
    for cluster in candidate_clusters(problem.latency, deployed, ingress,
                                      prune_limit):
        lat = problem.rtt(ingress, cluster)
        egress = (problem.transfer_cost(ingress, cluster,
                                        root_edge.request_bytes)
                  + problem.transfer_cost(cluster, ingress,
                                          root_edge.response_bytes))
        score = lat + problem.cost_weight * egress
        partials.append((score, lat, egress, ((root, cluster),)))
    partials.sort(key=lambda p: (p[0], p[3]))
    partials = partials[:beam]

    for service in order[1:]:
        edge = incoming[service]
        mult = execs[edge.caller] * edge.calls_per_request
        deployed = problem.deployed_in(service)
        if not deployed:
            raise ValueError(
                f"class {name!r}: service {service!r} deployed nowhere")
        frontier: list[tuple[float, float, float, tuple]] = []
        for score, lat, egress, assign in partials:
            caller_cluster = dict(assign)[edge.caller]
            for cluster in candidate_clusters(
                    problem.latency, deployed, caller_cluster, prune_limit):
                hop_lat = mult * problem.rtt(caller_cluster, cluster)
                hop_egress = mult * (
                    problem.transfer_cost(caller_cluster, cluster,
                                          edge.request_bytes)
                    + problem.transfer_cost(cluster, caller_cluster,
                                            edge.response_bytes))
                frontier.append((
                    score + hop_lat + problem.cost_weight * hop_egress,
                    lat + hop_lat, egress + hop_egress,
                    assign + ((service, cluster),)))
        frontier.sort(key=lambda p: (p[0], p[3]))
        partials = _stratified_beam(frontier, beam)

    chosen: list = [partials[0]]
    seen = {partials[0][3]}
    pool_use: Counter = Counter(partials[0][3])
    beam_rest = iter(partials[1:])
    while len(chosen) < k:
        walked = _penalized_walk(problem, ingress, spec, execs, incoming,
                                 order, prune_limit, pool_use)
        if walked[3] not in seen:
            entry = walked
        else:
            # the walk converged onto an embedding we already hold (all
            # diversity this instance offers is exhausted) — fall back to
            # the best-ranked unchosen beam entry
            entry = next((e for e in beam_rest if e[3] not in seen), None)
            if entry is None:
                break
        chosen.append(entry)
        seen.add(entry[3])
        pool_use.update(entry[3])
    chosen.sort(key=lambda p: (p[0], p[3]))

    return [CandidateEmbedding(name, ingress, assign, lat, egress, score)
            for score, lat, egress, assign in chosen]


# --------------------------------------------------------------------------
# model assembly
# --------------------------------------------------------------------------

@dataclass
class PathStructure:
    """Demand-independent snapshot of an assembled path LP.

    Path candidates, scores, and constraint matrices depend on demand only
    through its sparsity (which ingresses are active — part of the cache
    key); demand *values* live solely in the demand rows' right-hand side.
    Duck-types the arc :class:`~repro.core.optimizer.vectorized
    .ModelStructure` protocol so the generic ``StructureCache`` holds both.
    """

    key: tuple
    latency: object
    pricing: object
    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    #: copy of the demand-carrying rhs with demand rows zeroed
    rhs_template: np.ndarray
    #: True when demand rows live in b_ub (max_throughput), else b_eq
    demand_in_ub: bool
    demand_rows: np.ndarray
    demand_slots: list[tuple[str, str]]
    integrality: np.ndarray
    upper_bounds: np.ndarray
    path_vars: list[CandidateEmbedding]
    route_columns: list[int]
    pool_columns: dict[tuple[str, str], int]
    pool_keys: list[tuple[str, str]]
    pool_segments: dict[tuple[str, str], list[Segment]]
    path_objective: str
    instantiations: int = field(default=0)

    def matches(self, problem: TEProblem) -> bool:
        return (self.latency is problem.latency
                and self.pricing is problem.pricing)

    def instantiate(self, problem: TEProblem) -> PathModel:
        values = np.empty(len(self.demand_slots))
        for i, (name, cluster) in enumerate(self.demand_slots):
            values[i] = problem.workloads[name].demand[cluster]
        rhs = self.rhs_template.copy()
        rhs[self.demand_rows] = values
        b_ub, b_eq = ((rhs, self.b_eq) if self.demand_in_ub
                      else (self.b_ub, rhs))
        self.instantiations += 1
        return PathModel(
            objective=self.objective,
            a_ub=self.a_ub, b_ub=b_ub, a_eq=self.a_eq, b_eq=b_eq,
            integrality=self.integrality,
            upper_bounds=self.upper_bounds,
            path_vars=self.path_vars,
            route_columns=self.route_columns,
            pool_columns=self.pool_columns,
            pool_keys=self.pool_keys,
            pool_segments=self.pool_segments,
            path_objective=self.path_objective,
            problem=problem,
        )


def build_path_model(problem: TEProblem, k: int = 4,
                     objective: str = "latency",
                     prune_limit: int | None = None,
                     beam: int | None = None,
                     knot_fractions=DEFAULT_KNOT_FRACTIONS,
                     structure_cache=None) -> PathModel:
    """Assemble the path-formulation LP for ``problem``.

    With ``structure_cache`` (the generic
    :class:`~repro.core.optimizer.vectorized.StructureCache`), rebuilds
    that differ only in demand values skip candidate enumeration and
    matrix assembly entirely.
    """
    if objective not in PATH_OBJECTIVES:
        raise ValueError(f"unknown path objective {objective!r}; "
                         f"expected one of {PATH_OBJECTIVES}")

    key = None
    if structure_cache is not None:
        key = ("path", objective, k, prune_limit, beam,
               structure_key(problem, knot_fractions))
        structure = structure_cache.lookup(key, problem)
        if structure is not None:
            return structure.instantiate(problem)

    # -------------------------------------------------- candidate paths
    path_vars: list[CandidateEmbedding] = []
    groups: list[tuple[str, str, int, int]] = []
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        for ingress in sorted(c for c in problem.clusters
                              if workload.demand.get(c, 0) > 0):
            paths = candidate_paths(problem, name, ingress, k=k,
                                    prune_limit=prune_limit, beam=beam)
            if not paths:
                raise ValueError(
                    f"class {name!r}: no candidate paths from {ingress!r}")
            groups.append((name, ingress, len(path_vars), len(paths)))
            path_vars.extend(paths)

    n_paths = len(path_vars)
    pools = list(problem.pools())
    if objective == "latency":
        pool_columns = {pool: n_paths + i for i, pool in enumerate(pools)}
        n = n_paths + len(pools)
    elif objective == "min_mlu":
        pool_columns = {}
        mlu_col = n_paths
        n = n_paths + 1
    else:   # max_throughput
        pool_columns = {}
        n = n_paths

    objective_vec = np.zeros(n)
    integrality = np.zeros(n)
    upper = np.full(n, np.inf)

    if objective == "latency":
        for j, path in enumerate(path_vars):
            objective_vec[j] = path.score
        for t_col in pool_columns.values():
            objective_vec[t_col] = 1.0
    elif objective == "min_mlu":
        objective_vec[mlu_col] = 1.0
    else:
        objective_vec[:n_paths] = -1.0

    # per-pool offered work per unit path flow: execs[s] · st[s]
    work_entries: dict[tuple[str, str], list[tuple[int, float]]] = {
        pool: [] for pool in pools}
    execs_of: dict[str, dict[str, float]] = {}
    for j, path in enumerate(path_vars):
        spec = problem.workloads[path.traffic_class].spec
        if path.traffic_class not in execs_of:
            execs_of[path.traffic_class] = spec.executions_per_request()
        execs = execs_of[path.traffic_class]
        for service, cluster in path.assignment:
            st = spec.exec_time_of(service)
            if st > 0:
                work_entries[(service, cluster)].append(
                    (j, execs[service] * st))

    eq = _Coo()
    ub = _Coo()

    # ------------------------------------------------ demand satisfaction
    # equality (latency, min_mlu: serve everything) or ≤ (max_throughput)
    demand_sink = ub if objective == "max_throughput" else eq
    demand_rows: list[int] = []
    demand_slots: list[tuple[str, str]] = []
    for name, ingress, start, count in groups:
        cols = np.arange(start, start + count, dtype=np.intp)
        demand_sink.add_rows(np.zeros(count, dtype=np.intp), cols,
                             np.ones(count))
        demand_rows.append(demand_sink.n_rows)
        demand_slots.append((name, ingress))
        demand_sink.finish_rows([problem.workloads[name].demand[ingress]])

    # ------------------------------------------- per-pool capacity / delay
    pool_segments: dict[tuple[str, str], list[Segment]] = {}
    for pool in pools:
        service, cluster = pool
        entries = work_entries[pool]
        replicas = problem.replica_count(service, cluster)
        a_max = problem.rho_max * replicas
        if entries:
            cols = np.array([j for j, _ in entries], dtype=np.intp)
            work = np.array([w for _, w in entries])
        if objective == "latency":
            t_col = pool_columns[pool]
            segments = pool_segments_for(replicas, problem.delay_model,
                                         a_max, knot_fractions)
            pool_segments[pool] = segments
            if not entries:
                ub.add_rows(np.zeros(1, dtype=np.intp),
                            np.array([t_col], dtype=np.intp),
                            np.full(1, -1.0))
                ub.finish_rows([0.0])
                continue
            m = len(cols)
            n_seg = len(segments)
            slopes = np.array([segment.slope for segment in segments])
            seg_data = np.empty((n_seg, m + 1))
            seg_data[:, :m] = slopes[:, None] * work[None, :]
            seg_data[:, m] = -1.0
            ub.add_rows(np.zeros(m, dtype=np.intp), cols, work)
            ub.add_rows(
                1 + np.repeat(np.arange(n_seg, dtype=np.intp), m + 1),
                np.tile(np.append(cols, t_col), n_seg), seg_data.ravel())
            ub.finish_rows(
                [a_max] + [-segment.intercept for segment in segments])
        elif objective == "min_mlu":
            # work − replicas·MLU ≤ 0; no hard cap, overload shows as MLU
            if entries:
                ub.add_rows(np.zeros(len(cols) + 1, dtype=np.intp),
                            np.append(cols, mlu_col),
                            np.append(work, -float(replicas)))
                ub.finish_rows([0.0])
        else:   # max_throughput: hard capacity cap
            if entries:
                ub.add_rows(np.zeros(len(cols), dtype=np.intp), cols, work)
                ub.finish_rows([a_max])

    # ------------------------------------------------ egress budget ($/s)
    if problem.egress_budget is not None:
        budget_cols = np.array(
            [j for j, path in enumerate(path_vars) if path.unit_egress > 0],
            dtype=np.intp)
        if budget_cols.size:
            ub.add_rows(np.zeros(len(budget_cols), dtype=np.intp),
                        budget_cols,
                        np.array([path_vars[j].unit_egress
                                  for j in budget_cols]))
            ub.finish_rows([problem.egress_budget])

    a_eq, b_eq = eq.matrix(n)
    a_ub, b_ub = ub.matrix(n)
    model = PathModel(
        objective=objective_vec,
        a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        integrality=integrality,
        upper_bounds=upper,
        path_vars=path_vars,
        route_columns=list(range(n_paths)),
        pool_columns=pool_columns,
        pool_keys=pools,
        pool_segments=pool_segments,
        path_objective=objective,
        problem=problem,
    )
    if key is not None:
        demand_in_ub = objective == "max_throughput"
        rhs = b_ub if demand_in_ub else b_eq
        rhs_template = rhs.copy()
        rhs_template[np.array(demand_rows, dtype=np.intp)] = 0.0
        structure_cache.store(key, PathStructure(
            key=key,
            latency=problem.latency,
            pricing=problem.pricing,
            objective=objective_vec,
            a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            rhs_template=rhs_template,
            demand_in_ub=demand_in_ub,
            demand_rows=np.array(demand_rows, dtype=np.intp),
            demand_slots=demand_slots,
            integrality=integrality,
            upper_bounds=upper,
            path_vars=path_vars,
            route_columns=model.route_columns,
            pool_columns=pool_columns,
            pool_keys=pools,
            pool_segments=pool_segments,
            path_objective=objective,
        ))
    return model


# --------------------------------------------------------------------------
# extraction
# --------------------------------------------------------------------------

def extract_path_result(model: PathModel, solution, status: str,
                        solve_time: float) -> OptimizationResult:
    """Expand path flows onto call-tree edges and finalize the result.

    Path flows map exactly onto the arc flow keys — each unit of path flow
    puts the edge multiplier's worth of flow on every (caller cluster →
    callee cluster) hop of its embedding — so routing rules, predicted
    latency, and egress cost come from the same shared machinery as the
    arc extractor.
    """
    problem = model.problem
    result = OptimizationResult(
        status=status,
        objective=float("nan"),
        solve_time=solve_time,
        total_demand=problem.total_demand(),
        n_variables=model.n_variables,
        n_constraints=int(model.a_ub.shape[0] + model.a_eq.shape[0]),
    )
    for name in problem.workloads:
        for edge in class_edges(problem, name):
            result._edge_service[(name, edge.edge_index)] = edge.callee
    if solution is None:
        return result

    x = np.asarray(solution)
    result.objective = float(model.objective @ x)

    execs_of: dict[str, dict[str, float]] = {}
    for j in np.flatnonzero(x[:len(model.route_columns)] > FLOW_EPSILON):
        path = model.path_vars[j]
        rate = float(x[j])
        name = path.traffic_class
        spec = problem.workloads[name].spec
        if name not in execs_of:
            execs_of[name] = spec.executions_per_request()
        execs = execs_of[name]
        assign = dict(path.assignment)
        key = (name, INGRESS_EDGE, path.ingress, assign[spec.root_service])
        result.flows[key] = result.flows.get(key, 0.0) + rate
        for index, edge in enumerate(spec.edges):
            mult = execs[edge.caller] * edge.calls_per_request
            key = (name, index, assign[edge.caller], assign[edge.callee])
            result.flows[key] = result.flows.get(key, 0.0) + rate * mult

    finalize_result(result, problem, model.pool_keys)
    return result
