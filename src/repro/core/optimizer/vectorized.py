"""Vectorized (MI)LP assembly: numpy block construction + structure reuse.

The loop builder in :mod:`repro.core.optimizer.model` emits one python dict
per constraint row and one list append per variable — fine at two clusters,
hopeless at a hundred (GATE's observation: TE model *assembly* dominates
once the solver is fast). This module assembles the identical model with
numpy index arithmetic:

* columns are laid out in contiguous **blocks**, one per (class, edge),
  ``column = block.start + src_index * n_dst + dst_index`` — the same
  (sorted class → edge order → source order → destination order) layout the
  loop builder produces, so the two builders are byte-compatible;
* every constraint family (demand, conservation, capacity, epigraph,
  egress budget, MILP activation) is emitted as stacked COO triplets and
  converted to canonical CSR once.

Byte-identity with the loop builder is a hard requirement (it is what makes
the solver cache and the warm-start path safe), so scalar float expressions
deliberately replicate the loop builder's operation order.

**Structure reuse** is the second win: across adaptive epochs only demand
*values* move — the constraint matrices, objective, and row/column layout
depend on demand only through its sparsity pattern. A :class:`ModelStructure`
snapshot turns the next epoch's build into "copy b_eq, scatter new demand,
refresh per-block flow bounds", which is orders of magnitude cheaper than
any cold build. :class:`StructureCache` keys snapshots by the structural
fingerprint of the problem.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from .model import (INGRESS_EDGE, EdgeRef, LinearModel, RouteVar,
                    class_edges, pool_segments_for)
from .piecewise import DEFAULT_KNOT_FRACTIONS, Segment
from .problem import TEProblem

__all__ = ["build_model_vectorized", "ModelStructure", "StructureCache",
           "structure_key", "DEFAULT_STRUCTURE_CACHE_SIZE"]

#: adaptive controllers alternate between a handful of demand sparsity
#: patterns (classes appearing/disappearing); a small LRU covers them
DEFAULT_STRUCTURE_CACHE_SIZE = 8


@dataclass(frozen=True)
class _Block:
    """One (class, edge) column block: src-major × dst-minor layout."""

    traffic_class: str
    edge_index: int
    start: int
    n_src: int
    n_dst: int
    #: source/destination cluster names in column order
    src_names: tuple[str, ...]
    dst_names: tuple[str, ...]
    #: indices into problem.clusters (for latency/price matrix gathers)
    src_ids: np.ndarray
    dst_ids: np.ndarray
    #: executions of the caller per ingress request × calls_per_request;
    #: flow bound = total_demand * execs * cpr (ingress: total_demand)
    execs: float
    calls_per_request: float

    @property
    def size(self) -> int:
        return self.n_src * self.n_dst

    @property
    def stop(self) -> int:
        return self.start + self.size

    def flow_bound(self, total_demand: float) -> float:
        # replicate the loop builder's _edge_flow_bound op order exactly
        if self.edge_index == INGRESS_EDGE:
            return total_demand
        return total_demand * self.execs * self.calls_per_request


def structure_key(problem: TEProblem,
                  knot_fractions=DEFAULT_KNOT_FRACTIONS) -> tuple:
    """Everything the model depends on *except* demand values.

    Two problems with equal keys (and identical latency/pricing objects —
    checked separately via :meth:`ModelStructure.matches`) produce models
    that differ only in ``b_eq`` demand entries and flow upper bounds.
    """
    classes = []
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        spec = workload.spec
        classes.append((
            name,
            spec.root_service,
            spec.ingress_request_bytes,
            spec.ingress_response_bytes,
            tuple((e.caller, e.callee, e.calls_per_request,
                   e.request_bytes, e.response_bytes) for e in spec.edges),
            tuple(sorted(spec.exec_time.items())),
            # demand *pattern*: which clusters have positive ingress
            tuple(c for c in problem.clusters
                  if workload.demand.get(c, 0) > 0),
        ))
    return (
        tuple(problem.clusters),
        tuple(sorted(problem.replicas.items())),
        problem.rho_max,
        problem.cost_weight,
        problem.egress_budget,
        problem.delay_model,
        tuple(knot_fractions),
        tuple(classes),
    )


@dataclass
class ModelStructure:
    """Demand-independent snapshot of an assembled LP.

    Holds the constraint matrices, objective, and layout metadata; a warm
    rebuild (:meth:`instantiate`) refreshes only the demand entries of
    ``b_eq`` and the per-block flow bounds. The big arrays are *shared*
    between the snapshot and every model instantiated from it — which is
    what lets the warm-start solver recognise "same structure, new demand"
    by object identity.
    """

    key: tuple
    #: identity anchors — structural equality of latency/pricing content is
    #: too expensive to verify, so a snapshot only matches the exact objects
    latency: object
    pricing: object
    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq_template: np.ndarray
    integrality: np.ndarray
    blocks: list[_Block]
    #: b_eq positions of demand rows, in (sorted class, sorted cluster) order
    demand_rows: np.ndarray
    #: demand fill order: (class, cluster) per demand row
    demand_slots: list[tuple[str, str]]
    n_variables: int
    route_vars: list[RouteVar]
    route_columns: list[int]
    pool_columns: dict[tuple[str, str], int]
    pool_segments: dict[tuple[str, str], list[Segment]]
    instantiations: int = field(default=0)

    def matches(self, problem: TEProblem) -> bool:
        return (self.latency is problem.latency
                and self.pricing is problem.pricing)

    def instantiate(self, problem: TEProblem) -> LinearModel:
        """Warm rebuild: scatter the new demand into the cached structure."""
        upper = np.empty(self.n_variables)
        upper[len(self.route_columns):] = np.inf
        for block in self.blocks:
            workload = problem.workloads[block.traffic_class]
            upper[block.start:block.stop] = block.flow_bound(
                workload.total_demand)
        b_eq = self.b_eq_template.copy()
        values = np.empty(len(self.demand_slots))
        for i, (name, cluster) in enumerate(self.demand_slots):
            values[i] = problem.workloads[name].demand[cluster]
        b_eq[self.demand_rows] = values
        self.instantiations += 1
        return LinearModel(
            objective=self.objective,
            a_ub=self.a_ub, b_ub=self.b_ub,
            a_eq=self.a_eq, b_eq=b_eq,
            integrality=self.integrality,
            upper_bounds=upper,
            route_vars=self.route_vars,
            route_columns=self.route_columns,
            pool_columns=self.pool_columns,
            pool_segments=self.pool_segments,
            problem=problem,
        )


class StructureCache:
    """Bounded LRU cache of demand-independent model structures.

    Generic over structure kinds (arc :class:`ModelStructure`, path
    structures): entries need ``matches(problem)`` and
    ``instantiate(problem)``. Composes with — does not replace — the
    content-addressed :class:`~repro.core.optimizer.cache.SolverCache`:
    this cache makes *builds* cheap when only demand values moved; the
    solver cache skips the *solve* when nothing moved at all.
    """

    def __init__(self, maxsize: int = DEFAULT_STRUCTURE_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, key: tuple, problem: TEProblem):
        entry = self._entries.get(key)
        if entry is None or not entry.matches(problem):
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def store(self, key: tuple, structure) -> None:
        self._entries[key] = structure
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate, "entries": len(self._entries)}

    def __repr__(self) -> str:
        return (f"StructureCache(entries={len(self._entries)}/{self.maxsize},"
                f" hits={self.hits}, misses={self.misses})")


# --------------------------------------------------------------------------
# cold vectorized build
# --------------------------------------------------------------------------

def _cluster_matrices(problem: TEProblem) -> tuple[np.ndarray, np.ndarray]:
    """Dense rtt and per-byte-price gather tables over problem.clusters."""
    names = problem.clusters
    n = len(names)
    rtt = np.empty((n, n))
    price = np.empty((n, n))
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            rtt[i, j] = problem.rtt(a, b)
            price[i, j] = problem.pricing.per_byte(a, b)
    return rtt, price


def _layout_blocks(problem: TEProblem) -> tuple[list[_Block], list[RouteVar]]:
    cluster_id = {name: i for i, name in enumerate(problem.clusters)}
    blocks: list[_Block] = []
    route_vars: list[RouteVar] = []
    next_col = 0
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        execs = workload.spec.executions_per_request()
        for edge in class_edges(problem, name):
            destinations = problem.deployed_in(edge.callee)
            if not destinations:
                raise ValueError(
                    f"class {name!r}: service {edge.callee!r} deployed "
                    "nowhere")
            if edge.edge_index == INGRESS_EDGE:
                sources = [c for c in problem.clusters
                           if workload.demand.get(c, 0) > 0]
                edge_execs = 1.0
            else:
                sources = problem.deployed_in(edge.caller)
                edge_execs = execs[edge.caller]
            block = _Block(
                traffic_class=name,
                edge_index=edge.edge_index,
                start=next_col,
                n_src=len(sources),
                n_dst=len(destinations),
                src_names=tuple(sources),
                dst_names=tuple(destinations),
                src_ids=np.array([cluster_id[c] for c in sources],
                                 dtype=np.intp),
                dst_ids=np.array([cluster_id[c] for c in destinations],
                                 dtype=np.intp),
                execs=edge_execs,
                calls_per_request=edge.calls_per_request,
            )
            blocks.append(block)
            route_vars.extend(RouteVar(edge, src, dst)
                              for src in sources for dst in destinations)
            next_col += block.size
    return blocks, route_vars


class _Coo:
    """Accumulates COO triplets as numpy chunks; one concatenate at the end."""

    def __init__(self) -> None:
        self.rows: list[np.ndarray] = []
        self.cols: list[np.ndarray] = []
        self.data: list[np.ndarray] = []
        self.rhs: list[float] = []
        self.n_rows = 0

    def add_rows(self, rows: np.ndarray, cols: np.ndarray,
                 data: np.ndarray) -> None:
        """Append pre-offset entries (row indices relative to 0)."""
        self.rows.append(rows + self.n_rows)
        self.cols.append(cols)
        self.data.append(data)

    def finish_rows(self, rhs_values) -> None:
        """Declare len(rhs_values) rows complete (entries already added)."""
        self.rhs.extend(rhs_values)
        self.n_rows += len(rhs_values)

    def matrix(self, n_cols: int) -> tuple[sparse.csr_matrix, np.ndarray]:
        if self.rows:
            rows = np.concatenate(self.rows)
            cols = np.concatenate(self.cols)
            data = np.concatenate(self.data)
            # build canonical CSR directly: no (row, col) pair is emitted
            # twice by construction, so sorting by (row, col) is all the
            # canonicalization sum_duplicates/sort_indices would do
            order = np.lexsort((cols, rows))
            rows = rows[order]
            cols = cols[order]
            data = data[order]
            counts = np.bincount(rows, minlength=self.n_rows)
        else:
            cols = np.empty(0, dtype=np.intp)
            data = np.empty(0)
            counts = np.zeros(self.n_rows, dtype=np.intp)
        # match scipy's COO->CSR index-dtype choice so fingerprints agree
        # with the loop builder byte for byte
        maxval = max(self.n_rows, n_cols, len(data))
        idx_dtype = np.int32 if maxval < np.iinfo(np.int32).max else np.int64
        indptr = np.empty(self.n_rows + 1, dtype=idx_dtype)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        matrix = sparse.csr_matrix(
            (data, cols.astype(idx_dtype), indptr),
            shape=(self.n_rows, n_cols))
        return matrix, np.array(self.rhs, dtype=float)


def build_model_vectorized(problem: TEProblem,
                           max_splits: int | None = None,
                           knot_fractions=DEFAULT_KNOT_FRACTIONS,
                           structure_cache: StructureCache | None = None,
                           ) -> LinearModel:
    """Assemble the (MI)LP with numpy block operations.

    Produces a model byte-identical (same canonical fingerprint, same
    solver input) to the loop builder's. With ``structure_cache``, LP
    builds whose structural key was seen before skip assembly entirely
    and rescatter demand into the cached matrices; MILP builds are always
    cold (the big-M activation rows depend on demand values).
    """
    if max_splits is not None and max_splits < 1:
        raise ValueError(f"max_splits must be >= 1, got {max_splits}")

    key = None
    if structure_cache is not None and max_splits is None:
        key = structure_key(problem, knot_fractions)
        structure = structure_cache.lookup(key, problem)
        if structure is not None:
            return structure.instantiate(problem)

    blocks, route_vars = _layout_blocks(problem)
    block_of = {(b.traffic_class, b.edge_index): b for b in blocks}
    n_routes = sum(b.size for b in blocks)

    pools = problem.pools()
    pool_columns = {pool: n_routes + i for i, pool in enumerate(pools)}
    n_pools = len(pools)

    activation_base = n_routes + n_pools
    n = activation_base + (n_routes if max_splits is not None else 0)

    objective = np.zeros(n)
    integrality = np.zeros(n)
    if max_splits is not None:
        integrality[activation_base:] = 1

    upper = np.empty(n)
    for block in blocks:
        workload = problem.workloads[block.traffic_class]
        upper[block.start:block.stop] = block.flow_bound(
            workload.total_demand)
    upper[n_routes:activation_base] = np.inf
    if max_splits is not None:
        upper[activation_base:] = 1.0

    rtt, price = _cluster_matrices(problem)

    # flow objective + egress coefficients, one gather per block
    egress_cols: list[np.ndarray] = []
    egress_vals: list[np.ndarray] = []
    for block in blocks:
        if not block.size:
            continue
        src = np.repeat(block.src_ids, block.n_dst)
        dst = np.tile(block.dst_ids, block.n_src)
        edge = route_vars[block.start].edge
        egress = (edge.request_bytes * price[src, dst]
                  + edge.response_bytes * price[dst, src])
        objective[block.start:block.stop] = (
            rtt[src, dst] + problem.cost_weight * egress)
        positive = np.flatnonzero(egress > 0)
        if positive.size:
            egress_cols.append(block.start + positive)
            egress_vals.append(egress[positive])

    # ------------------------------------------------- demand satisfaction
    eq = _Coo()
    demand_rows: list[int] = []
    demand_slots: list[tuple[str, str]] = []
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        block = block_of[(name, INGRESS_EDGE)]
        src_pos = {c: i for i, c in enumerate(block.src_names)}
        demanded = [(cluster, rps)
                    for cluster, rps in sorted(workload.demand.items())
                    if rps > 0]
        if not demanded:
            continue
        n_demand = len(demanded)
        starts = np.array(
            [block.start + src_pos[cluster] * block.n_dst
             for cluster, _ in demanded], dtype=np.intp)
        cols = (starts[:, None]
                + np.arange(block.n_dst, dtype=np.intp)[None, :]).ravel()
        eq.add_rows(np.repeat(np.arange(n_demand, dtype=np.intp),
                              block.n_dst),
                    cols, np.ones(n_demand * block.n_dst))
        demand_rows.extend(range(eq.n_rows, eq.n_rows + n_demand))
        demand_slots.extend((name, cluster) for cluster, _ in demanded)
        eq.finish_rows([rps for _, rps in demanded])

    # ------------------------------------------------------- conservation
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        edges = class_edges(problem, name)
        incoming = {edge.callee: edge for edge in edges}
        for edge in edges:
            if edge.edge_index == INGRESS_EDGE:
                continue
            block = block_of[(name, edge.edge_index)]
            parent = block_of[(name, incoming[edge.caller].edge_index)]
            n_src = block.n_src          # == parent.n_dst
            if not n_src:
                continue
            span = np.arange(n_src, dtype=np.intp)
            eq.add_rows(
                np.repeat(span, block.n_dst),
                block.start + np.arange(block.size, dtype=np.intp),
                np.ones(block.size))
            if parent.n_src:
                origin_cols = (parent.start
                               + np.arange(parent.n_src, dtype=np.intp)
                               * parent.n_dst)
                eq.add_rows(
                    np.repeat(span, parent.n_src),
                    (origin_cols[None, :] + span[:, None]).ravel(),
                    np.full(n_src * parent.n_src, -edge.calls_per_request))
            eq.finish_rows(np.zeros(n_src))

    # ------------------------------------------- per-pool workload & delay
    # offered work a[s,c] = Σ_k st[k,s] · exec_rate[k,s,c] (erlangs)
    pool_entries: dict[tuple[str, str], list[tuple[np.ndarray, float]]] = {
        pool: [] for pool in pool_columns
    }
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        edges = class_edges(problem, name)
        incoming = {edge.callee: edge for edge in edges}
        for service in workload.spec.services():
            st = workload.spec.exec_time_of(service)
            if st <= 0:
                continue
            block = block_of[(name, incoming[service].edge_index)]
            if not block.n_src:
                continue
            src_strides = (block.start
                           + np.arange(block.n_src, dtype=np.intp)
                           * block.n_dst)
            for dst_pos, dst in enumerate(block.dst_names):
                pool_entries[(service, dst)].append(
                    (src_strides + dst_pos, st))

    ub = _Coo()
    pool_segments: dict[tuple[str, str], list[Segment]] = {}
    for service, cluster in pools:
        t_col = pool_columns[(service, cluster)]
        objective[t_col] = 1.0
        replicas = problem.replica_count(service, cluster)
        a_max = problem.rho_max * replicas
        segments = pool_segments_for(replicas, problem.delay_model, a_max,
                                     knot_fractions)
        pool_segments[(service, cluster)] = segments
        entries = pool_entries[(service, cluster)]
        if not entries:
            # pin t at the zero-load backlog (see loop builder)
            ub.add_rows(np.zeros(1, dtype=np.intp),
                        np.array([t_col], dtype=np.intp),
                        np.full(1, -1.0))
            ub.finish_rows([0.0])
            continue
        cols = np.concatenate([c for c, _ in entries])
        work = np.concatenate([np.full(len(c), st) for c, st in entries])
        m = len(cols)
        n_seg = len(segments)
        # one batched emit per pool: the capacity row (work <= a_max)
        # followed by every epigraph row (slope·work - t <= -intercept)
        slopes = np.array([segment.slope for segment in segments])
        seg_data = np.empty((n_seg, m + 1))
        seg_data[:, :m] = slopes[:, None] * work[None, :]
        seg_data[:, m] = -1.0
        seg_cols = np.tile(np.append(cols, t_col), n_seg)
        ub.add_rows(np.zeros(m, dtype=np.intp), cols, work)
        ub.add_rows(
            1 + np.repeat(np.arange(n_seg, dtype=np.intp), m + 1),
            seg_cols, seg_data.ravel())
        ub.finish_rows(
            [a_max] + [-segment.intercept for segment in segments])

    # ------------------------------------------------ egress budget ($/s)
    if problem.egress_budget is not None and egress_cols:
        cols = np.concatenate(egress_cols)
        ub.add_rows(np.zeros(len(cols), dtype=np.intp), cols,
                    np.concatenate(egress_vals))
        ub.finish_rows([problem.egress_budget])

    # --------------------------------------------------- MILP split limits
    if max_splits is not None:
        # the loop builder sorts groups by (class, edge index, src name);
        # blocks are already (class, edge index)-ordered
        for block in blocks:
            dst_span = np.arange(block.n_dst, dtype=np.intp)
            for src in sorted(block.src_names):
                k = block.src_names.index(src)
                cols = block.start + k * block.n_dst + dst_span
                big_m = np.maximum(upper[cols], 1e-9)
                for col, m in zip(cols, big_m):
                    ub.add_rows(
                        np.zeros(2, dtype=np.intp),
                        np.array([col, activation_base + col], dtype=np.intp),
                        np.array([1.0, -m]))
                    ub.finish_rows([0.0])
                ub.add_rows(np.zeros(block.n_dst, dtype=np.intp),
                            activation_base + cols, np.ones(block.n_dst))
                ub.finish_rows([float(max_splits)])

    a_eq, b_eq = eq.matrix(n)
    a_ub, b_ub = ub.matrix(n)
    route_columns = list(range(n_routes))
    model = LinearModel(
        objective=objective,
        a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        integrality=integrality,
        upper_bounds=upper,
        route_vars=route_vars,
        route_columns=route_columns,
        pool_columns=pool_columns,
        pool_segments=pool_segments,
        problem=problem,
    )
    if key is not None:
        b_eq_template = b_eq.copy()
        b_eq_template[np.array(demand_rows, dtype=np.intp)] = 0.0
        structure_cache.store(key, ModelStructure(
            key=key,
            latency=problem.latency,
            pricing=problem.pricing,
            objective=objective,
            a_ub=a_ub, b_ub=b_ub, a_eq=a_eq,
            b_eq_template=b_eq_template,
            integrality=integrality,
            blocks=blocks,
            demand_rows=np.array(demand_rows, dtype=np.intp),
            demand_slots=demand_slots,
            n_variables=n,
            route_vars=route_vars,
            route_columns=route_columns,
            pool_columns=pool_columns,
            pool_segments=pool_segments,
        ))
    return model
