"""Content-addressed solver memoization.

Adaptive controllers re-plan every epoch, and under steady demand the
assembled :class:`~repro.core.optimizer.model.LinearModel` is frequently
*identical* between epochs (and between sweep points that share a
configuration). Solving an identical model twice is pure waste — GATE-style
arguments apply: optimization speed is itself a TE scaling bottleneck.

:class:`SolverCache` memoizes solutions keyed by a canonical SHA-256
fingerprint of the numeric model content (objective, constraint matrices,
bounds, integrality). Only the raw solution vector and solver status are
cached — never the extracted :class:`OptimizationResult` — so a hit is
re-extracted against the *current* model and its variable identities; two
models with identical matrices but different cluster/service names still
receive correctly-named results.

The cache is bounded (LRU eviction) and keeps hit/miss counters that
:func:`~repro.core.optimizer.solve.solve_model` surfaces on each
:class:`OptimizationResult`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np
from scipy import sparse

from .model import LinearModel

__all__ = ["SolverCache", "model_fingerprint", "DEFAULT_CACHE_SIZE"]

#: default LRU bound — an adaptive controller alternating between a handful
#: of quantized demand levels fits comfortably; the memory cost is one
#: solution vector per entry
DEFAULT_CACHE_SIZE = 64


def _hash_array(hasher, array: np.ndarray) -> None:
    data = np.ascontiguousarray(array)
    # length + dtype prefixes keep distinct component sequences from
    # concatenating to the same byte stream
    hasher.update(str(data.shape).encode())
    hasher.update(data.dtype.str.encode())
    hasher.update(data.tobytes())


def _hash_sparse(hasher, matrix: sparse.csr_matrix) -> None:
    canonical = matrix.tocsr().copy()
    canonical.sum_duplicates()
    canonical.sort_indices()
    hasher.update(str(canonical.shape).encode())
    _hash_array(hasher, canonical.indptr)
    _hash_array(hasher, canonical.indices)
    _hash_array(hasher, canonical.data)


def model_fingerprint(model: LinearModel) -> str:
    """Canonical content hash of a model's numeric payload.

    Two models share a fingerprint iff their objective, constraint
    matrices (in canonical CSR form), right-hand sides, variable bounds,
    and integrality pattern are byte-identical — exactly the inputs the
    solver sees, so equal fingerprints imply equal solution vectors.
    """
    hasher = hashlib.sha256()
    _hash_array(hasher, model.objective)
    _hash_sparse(hasher, model.a_ub)
    _hash_array(hasher, model.b_ub)
    _hash_sparse(hasher, model.a_eq)
    _hash_array(hasher, model.b_eq)
    _hash_array(hasher, model.integrality)
    _hash_array(hasher, model.upper_bounds)
    return hasher.hexdigest()


class SolverCache:
    """Bounded LRU cache of solved model solution vectors.

    >>> cache = SolverCache(maxsize=2)
    >>> cache.stats()
    {'hits': 0, 'misses': 0, 'hit_rate': 0.0, 'entries': 0}
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, tuple[np.ndarray, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, fingerprint: str) -> tuple[np.ndarray, str] | None:
        """Return ``(solution_vector, status)`` for a known model, else None.

        Counts a hit/miss and refreshes LRU recency. The returned vector is
        a copy, so callers cannot corrupt the cached entry.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(fingerprint)
        solution, status = entry
        return solution.copy(), status

    def store(self, fingerprint: str, solution: np.ndarray,
              status: str) -> None:
        """Insert a solved model, evicting the least-recently-used entry
        once the size bound is exceeded."""
        self._entries[fingerprint] = (np.array(solution, copy=True), status)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counters in a JSON-friendly shape (for BENCH_*.json exports)."""
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": self.hit_rate, "entries": len(self._entries)}

    def __repr__(self) -> str:
        return (f"SolverCache(entries={len(self._entries)}/{self.maxsize}, "
                f"hits={self.hits}, misses={self.misses})")
