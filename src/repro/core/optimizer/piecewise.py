"""Convex piecewise-linearization for the TE linear program.

The per-pool delay functions (:class:`~repro.core.latency.mm1.PoolDelayModel`)
are convex and blow up near capacity. The LP represents each with an
epigraph variable ``t >= slope_p * load + intercept_p`` over a family of
chords. For a convex function the maximum of its chords equals the piecewise
linear interpolant through the knots — an upper approximation that is exact
at the knots and safe (never underestimates delay) in between.

Knots are packed toward the capacity limit where the curvature lives, the
same knot schedule used in classic network-TE delay linearisations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["Segment", "evaluate", "linearize_convex",
           "DEFAULT_KNOT_FRACTIONS"]

#: Fractions of the usable load range where chords are anchored.
DEFAULT_KNOT_FRACTIONS = (0.0, 0.3, 0.5, 0.65, 0.75, 0.82, 0.88, 0.92,
                          0.95, 0.975, 1.0)


@dataclass(frozen=True)
class Segment:
    """One supporting line ``t >= slope * x + intercept``."""

    slope: float
    intercept: float

    def value(self, x: float) -> float:
        return self.slope * x + self.intercept


def linearize_convex(fn: Callable[[float], float], x_max: float,
                     knot_fractions: Sequence[float] = DEFAULT_KNOT_FRACTIONS,
                     ) -> list[Segment]:
    """Chord-linearize a convex increasing ``fn`` over ``[0, x_max]``.

    Returns segments whose pointwise maximum interpolates ``fn`` at the
    knots. ``fn`` must be finite on the closed interval (callers pass
    ``x_max`` strictly below the capacity pole).
    """
    if x_max <= 0:
        raise ValueError(f"x_max must be > 0, got {x_max}")
    fractions = sorted(set(knot_fractions))
    if fractions[0] < 0 or fractions[-1] > 1:
        raise ValueError(f"knot fractions must lie in [0, 1]: {fractions}")
    if len(fractions) < 2:
        raise ValueError("need at least two knots")
    knots = [f * x_max for f in fractions]
    values = [fn(x) for x in knots]
    for x, v in zip(knots, values):
        if not (v == v and v != float("inf")):   # NaN or inf
            raise ValueError(f"fn({x}) = {v}; function must be finite on "
                             f"[0, {x_max}]")

    segments: list[Segment] = []
    previous_slope = float("-inf")
    for (x0, y0), (x1, y1) in zip(zip(knots, values), zip(knots[1:], values[1:])):
        slope = (y1 - y0) / (x1 - x0)
        # convexity should make slopes nondecreasing; tiny numerical wobbles
        # are clamped so the max-of-lines formulation stays valid
        slope = max(slope, previous_slope)
        previous_slope = slope
        segments.append(Segment(slope=slope, intercept=y0 - slope * x0))
    return segments


def evaluate(segments: Sequence[Segment], x: float) -> float:
    """Evaluate the linearization (max over segments) at ``x``."""
    if not segments:
        raise ValueError("no segments")
    return max(segment.value(x) for segment in segments)
