"""Solver backend: scipy HiGHS for the LP and MILP variants.

Both entry points accept an optional :class:`SolverCache`; with one, a
model whose canonical fingerprint was solved before skips HiGHS entirely
and re-extracts the memoized solution vector against the current model
(see :mod:`repro.core.optimizer.cache` for why extraction is never cached).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from .cache import SolverCache, model_fingerprint
from .model import LinearModel, build_model
from .piecewise import DEFAULT_KNOT_FRACTIONS
from .problem import TEProblem
from .result import OptimizationResult, extract_result

__all__ = ["SolverError", "solve", "solve_model"]


class SolverError(RuntimeError):
    """The optimizer could not produce a usable solution."""


def solve(problem: TEProblem, max_splits: int | None = None,
          knot_fractions=DEFAULT_KNOT_FRACTIONS,
          cache: SolverCache | None = None,
          backend: str = "vectorized",
          structure_cache=None) -> OptimizationResult:
    """Formulate and solve ``problem``; raise :class:`SolverError` on failure.

    A failure here means the instance itself is infeasible — most commonly
    total demand beyond global capacity (``rho_max`` × replicas), which the
    paper's framework treats as an admission/provisioning problem outside
    the router's control.

    ``backend`` and ``structure_cache`` pass through to
    :func:`~repro.core.optimizer.model.build_model`; epoch-to-epoch reuse
    (warm builds *and* warm solves) lives in
    :class:`~repro.core.optimizer.warm.EpochSolver`.
    """
    model = build_model(problem, max_splits=max_splits,
                        knot_fractions=knot_fractions,
                        backend=backend, structure_cache=structure_cache)
    return solve_model(model, cache=cache)


def solve_model(model: LinearModel,
                cache: SolverCache | None = None) -> OptimizationResult:
    """Solve an assembled model with the appropriate HiGHS backend.

    With ``cache``, identical models (by content fingerprint) are solved
    once; subsequent calls replay the memoized solution vector. Failed
    solves are never cached, so transiently infeasible instances are
    retried at full fidelity.
    """
    # solver wall time is diagnostic output, never simulation input
    started = time.perf_counter()   # lint: ignore[D02]
    fingerprint = None
    if cache is not None:
        fingerprint = model_fingerprint(model)
        entry = cache.lookup(fingerprint)
        if entry is not None:
            solution, status = entry
            elapsed = time.perf_counter() - started   # lint: ignore[D02]
            result = extract_result(model, solution, status, elapsed)
            result.cache_hit = True
            result.cache_hits = cache.hits
            result.cache_misses = cache.misses
            result.fingerprint = fingerprint
            return result
    if model.is_mip:
        solution, status = _solve_milp(model)
    else:
        solution, status = _solve_lp(model)
    elapsed = time.perf_counter() - started   # lint: ignore[D02]
    if status != "optimal":
        raise SolverError(f"optimization failed: {status}")
    if cache is not None:
        cache.store(fingerprint, solution, status)
    result = extract_result(model, solution, status, elapsed)
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        result.fingerprint = fingerprint
    return result


def _solve_lp(model: LinearModel) -> tuple[np.ndarray | None, str]:
    outcome = optimize.linprog(
        c=model.objective,
        A_ub=model.a_ub, b_ub=model.b_ub,
        A_eq=model.a_eq, b_eq=model.b_eq,
        bounds=[(0.0, ub if np.isfinite(ub) else None)
                for ub in model.upper_bounds],
        method="highs",
    )
    if not outcome.success:
        return None, f"lp:{outcome.status}:{outcome.message}"
    return outcome.x, "optimal"


def _solve_milp(model: LinearModel) -> tuple[np.ndarray | None, str]:
    constraints = []
    if model.a_ub.shape[0]:
        constraints.append(optimize.LinearConstraint(
            model.a_ub, -np.inf, model.b_ub))
    if model.a_eq.shape[0]:
        constraints.append(optimize.LinearConstraint(
            model.a_eq, model.b_eq, model.b_eq))
    upper = np.where(np.isfinite(model.upper_bounds),
                     model.upper_bounds, np.inf)
    outcome = optimize.milp(
        c=model.objective,
        constraints=constraints,
        integrality=model.integrality,
        bounds=optimize.Bounds(np.zeros(model.n_variables), upper),
    )
    if not outcome.success or outcome.x is None:
        return None, f"milp:{outcome.status}:{outcome.message}"
    return outcome.x, "optimal"
