"""Optimizer solution: flows, predicted system state, and routing rules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..latency.mm1 import PoolDelayModel
from ..rules import RoutingRule, RuleSet
from .model import INGRESS_EDGE, LinearModel
from .problem import TEProblem

__all__ = ["OptimizationResult", "extract_result", "finalize_result"]

#: flows below this rate (requests/second) are treated as numerical zeros
FLOW_EPSILON = 1e-7


@dataclass
class OptimizationResult:
    """The Global Controller's optimizer output.

    ``flows`` maps (class, edge index, src cluster, dst cluster) → rate;
    edge index ``-1`` is the user→root ingress hop. Predicted metrics are
    evaluated with the *true* (not linearised) delay model, so they are what
    the controller expects the data plane to achieve.
    """

    status: str
    objective: float
    #: wall-clock diagnostic (varies run to run), excluded from equality
    solve_time: float = field(compare=False)
    flows: dict[tuple[str, int, str, str], float] = field(default_factory=dict)
    pool_load: dict[tuple[str, str], float] = field(default_factory=dict)
    pool_utilization: dict[tuple[str, str], float] = field(default_factory=dict)
    predicted_backlog: float = 0.0
    predicted_network_delay_rate: float = 0.0
    predicted_egress_cost_rate: float = 0.0
    predicted_mean_latency: float = 0.0
    total_demand: float = 0.0
    #: served from a SolverCache instead of a fresh HiGHS solve
    cache_hit: bool = field(default=False, compare=False)
    #: cumulative counters of the cache that served this solve (0/0 when
    #: solved uncached); diagnostic only, excluded from equality
    cache_hits: int = field(default=0, compare=False)
    cache_misses: int = field(default=0, compare=False)
    #: model dimensions, for solver-scaling observability; diagnostic only
    n_variables: int = field(default=0, compare=False)
    n_constraints: int = field(default=0, compare=False)
    #: content fingerprint of the solved model (set when a cache keyed it)
    fingerprint: str | None = field(default=None, compare=False)
    #: wall-clock cost of model assembly (0 when the caller did not build)
    build_time: float = field(default=0.0, compare=False)
    #: the assembled matrices came from a structure-cache rescatter rather
    #: than a cold build (see repro.core.optimizer.vectorized)
    warm_build: bool = field(default=False, compare=False)
    #: solved by the restricted warm-start path (verified optimal by
    #: pricing) instead of a full cold solve
    warm_start: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    @property
    def solver_path(self) -> str:
        """Which rung of the reuse ladder produced this result.

        ``"replay"`` (solver-cache hit, no solver run), ``"warm"``
        (restricted solve certified optimal by pricing), or ``"cold"``
        (full solve). The single derivation point for consumers that
        previously re-derived it from the ``cache_hit``/``warm_start``
        boolean pair.
        """
        if self.cache_hit:
            return "replay"
        if self.warm_start:
            return "warm"
        return "cold"

    # ---------------------------------------------------------------- rules

    def rules(self) -> RuleSet:
        """Convert flows into per-(service, class, source) routing rules."""
        grouped: dict[tuple[str, str, str], dict[str, float]] = {}
        service_of: dict[tuple[str, int], str] = {}
        for (cls, edge_index, src, dst), rate in self.flows.items():
            service = self._edge_service[(cls, edge_index)]
            service_of[(cls, edge_index)] = service
            key = (service, cls, src)
            grouped.setdefault(key, {})
            grouped[key][dst] = grouped[key].get(dst, 0.0) + rate
        rule_set = RuleSet()
        for (service, cls, src), weights in sorted(grouped.items()):
            total = sum(weights.values())
            if total <= FLOW_EPSILON:
                continue
            rule_set.add(RoutingRule.make(service, cls, src, weights))
        return rule_set

    def ingress_local_fraction(self, traffic_class: str,
                               cluster: str) -> float:
        """Fraction of a class's ingress at ``cluster`` served locally."""
        total = 0.0
        local = 0.0
        for (cls, edge_index, src, dst), rate in self.flows.items():
            if (cls == traffic_class and edge_index == INGRESS_EDGE
                    and src == cluster):
                total += rate
                if dst == cluster:
                    local += rate
        return local / total if total > 0 else 1.0

    def edge_remote_rate(self, traffic_class: str, edge_index: int) -> float:
        """Cross-cluster rate on one class edge, requests/second."""
        return sum(rate for (cls, e, src, dst), rate in self.flows.items()
                   if cls == traffic_class and e == edge_index and src != dst)

    # populated by extract_result; (class, edge index) → callee service
    _edge_service: dict[tuple[str, int], str] = field(default_factory=dict)


def extract_result(model: LinearModel, solution, status: str,
                   solve_time: float) -> OptimizationResult:
    """Build an :class:`OptimizationResult` from a scipy solution vector."""
    problem: TEProblem = model.problem
    result = OptimizationResult(
        status=status,
        objective=float("nan"),
        solve_time=solve_time,
        total_demand=problem.total_demand(),
        n_variables=model.n_variables,
        n_constraints=int(model.a_ub.shape[0] + model.a_eq.shape[0]),
    )
    for name in problem.workloads:
        from .model import class_edges   # local import avoids module cycle
        for edge in class_edges(problem, name):
            result._edge_service[(name, edge.edge_index)] = edge.callee
    if solution is None:
        return result

    x = solution
    result.objective = float(model.objective @ x)

    # flows: gather route columns once, then touch only the nonzeros
    # (solutions are sparse — most route variables sit at zero)
    route_x = np.asarray(x)[np.asarray(model.route_columns, dtype=np.intp)]
    for i in np.flatnonzero(route_x > FLOW_EPSILON):
        var = model.route_vars[i]
        rate = float(route_x[i])
        key = (var.edge.traffic_class, var.edge.edge_index,
               var.src, var.dst)
        result.flows[key] = result.flows.get(key, 0.0) + rate

    finalize_result(result, problem, model.pool_columns)
    return result


def finalize_result(result: OptimizationResult, problem: TEProblem,
                    pools) -> OptimizationResult:
    """Fill predicted system state from ``result.flows``.

    Shared by the arc and path extractors: once flows are in the common
    (class, edge, src, dst) → rate shape, predicted pool loads, backlog,
    network delay, and egress cost are formulation-independent.
    """
    # pool loads: recompute offered work from flows
    work: dict[tuple[str, str], float] = {p: 0.0 for p in pools}
    for (cls, edge_index, src, dst), rate in result.flows.items():
        workload = problem.workloads[cls]
        service = result._edge_service[(cls, edge_index)]
        st = workload.spec.exec_time_of(service)
        if st > 0 and (service, dst) in work:
            work[(service, dst)] += rate * st

    backlog_total = 0.0
    for (service, cluster), offered in work.items():
        replicas = problem.replica_count(service, cluster)
        result.pool_load[(service, cluster)] = offered
        result.pool_utilization[(service, cluster)] = (
            offered / replicas if replicas else 0.0)
        delay_model = PoolDelayModel(replicas, mode=problem.delay_model)
        # clamp numerically-at-capacity loads just inside the pole
        safe = min(offered, problem.rho_max * replicas)
        backlog_total += delay_model.backlog(safe)
    result.predicted_backlog = backlog_total

    # network delay + egress cost rates
    delay_rate = 0.0
    cost_rate = 0.0
    for (cls, edge_index, src, dst), rate in result.flows.items():
        spec = problem.workloads[cls].spec
        if edge_index == INGRESS_EDGE:
            req_b, resp_b = (spec.ingress_request_bytes,
                             spec.ingress_response_bytes)
        else:
            edge = spec.edges[edge_index]
            req_b, resp_b = edge.request_bytes, edge.response_bytes
        delay_rate += rate * problem.rtt(src, dst)
        cost_rate += rate * (problem.transfer_cost(src, dst, req_b)
                             + problem.transfer_cost(dst, src, resp_b))
    result.predicted_network_delay_rate = delay_rate
    result.predicted_egress_cost_rate = cost_rate

    if result.total_demand > 0:
        result.predicted_mean_latency = (
            (backlog_total + delay_rate) / result.total_demand)
    return result
