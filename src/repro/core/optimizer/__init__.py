"""The Global Controller's request-routing optimizer (§3.3)."""

from .cache import DEFAULT_CACHE_SIZE, SolverCache, model_fingerprint
from .contraction import (ContractedSolution, contract_problem,
                          group_clusters, solve_contracted)
from .model import (INGRESS_EDGE, LinearModel, build_model, build_model_loop,
                    class_edges)
from .paths import PathModel, build_path_model, candidate_paths
from .piecewise import Segment, linearize_convex
from .problem import ClassWorkload, TEProblem
from .result import OptimizationResult, finalize_result
from .solve import SolverError, solve, solve_model
from .vectorized import StructureCache, build_model_vectorized
from .warm import EpochSolver, warm_solve

__all__ = [
    "DEFAULT_CACHE_SIZE", "SolverCache", "model_fingerprint",
    "ContractedSolution", "contract_problem", "group_clusters",
    "solve_contracted",
    "INGRESS_EDGE", "LinearModel", "build_model", "build_model_loop",
    "class_edges",
    "PathModel", "build_path_model", "candidate_paths",
    "Segment", "linearize_convex",
    "ClassWorkload", "TEProblem",
    "OptimizationResult", "finalize_result",
    "SolverError", "solve", "solve_model",
    "StructureCache", "build_model_vectorized",
    "EpochSolver", "warm_solve",
]
