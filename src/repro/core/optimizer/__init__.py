"""The Global Controller's request-routing optimizer (§3.3)."""

from .cache import DEFAULT_CACHE_SIZE, SolverCache, model_fingerprint
from .contraction import (ContractedSolution, contract_problem,
                          group_clusters, solve_contracted)
from .model import INGRESS_EDGE, LinearModel, build_model, class_edges
from .piecewise import Segment, linearize_convex
from .problem import ClassWorkload, TEProblem
from .result import OptimizationResult
from .solve import SolverError, solve, solve_model

__all__ = [
    "DEFAULT_CACHE_SIZE", "SolverCache", "model_fingerprint",
    "ContractedSolution", "contract_problem", "group_clusters",
    "solve_contracted",
    "INGRESS_EDGE", "LinearModel", "build_model", "class_edges",
    "Segment", "linearize_convex",
    "ClassWorkload", "TEProblem",
    "OptimizationResult",
    "SolverError", "solve", "solve_model",
]
