"""LP/MILP formulation of the SLATE request-routing problem (§3.3).

Decision variables are per-class, per-call-tree-edge flow rates between
cluster pairs: ``x[k, e, i, j]`` = requests/second of class ``k`` on edge
``e`` issued from cluster ``i`` and served in cluster ``j``. A pseudo-edge
represents ingress (user → root service). Per-pool epigraph variables
``t[s, c]`` linearise the convex queueing backlog.

Objective (all terms in latency-seconds per second, i.e. mean outstanding
requests — by Little's law, with fixed demand, minimizing it minimizes mean
end-to-end latency):

* ``Σ t[s,c]`` — queueing + service backlog per pool,
* ``Σ x · rtt(i, j)`` — WAN request+response crossings,
* ``α · Σ x · (bytes · price)`` — egress cost, converted by ``cost_weight``.

Constraints: demand satisfaction, per-(class, edge, source) flow
conservation down the call tree, per-pool utilization caps, and the epigraph
family. Setting ``max_splits`` adds binary route-activation variables
(``x ≤ U·z``, ``Σ_j z ≤ max_splits``) — the mixed-integer variant the paper
names; the default is the LP, whose fractional splits are exactly what the
data plane executes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..latency.mm1 import PoolDelayModel
from .piecewise import DEFAULT_KNOT_FRACTIONS, Segment, linearize_convex
from .problem import TEProblem

__all__ = ["EdgeRef", "RouteVar", "LinearModel", "build_model",
           "build_model_loop", "class_edges", "pool_segments_for"]

INGRESS_EDGE = -1   # edge index of the user → root pseudo-edge

#: memoized piecewise linearizations — Erlang-C evaluation at the knots
#: dominates build cost, and uniform fleets share a handful of
#: (replicas, mode, load-cap) combinations across hundreds of pools
_SEGMENTS_MEMO: dict[tuple, list[Segment]] = {}
_SEGMENTS_MEMO_MAX = 4096


def pool_segments_for(replicas: int, mode: str, a_max: float,
                      knot_fractions) -> list[Segment]:
    """Chord segments for one pool's delay model, memoized by content.

    ``linearize_convex`` is deterministic, so memoization cannot change
    any model — it only skips recomputing identical Erlang-C chords.
    """
    key = (replicas, mode, a_max, tuple(knot_fractions))
    segments = _SEGMENTS_MEMO.get(key)
    if segments is None:
        delay_model = PoolDelayModel(replicas, mode=mode)
        segments = linearize_convex(delay_model.backlog, a_max,
                                    knot_fractions)
        if len(_SEGMENTS_MEMO) >= _SEGMENTS_MEMO_MAX:
            _SEGMENTS_MEMO.clear()
        _SEGMENTS_MEMO[key] = segments
    return segments


@dataclass(frozen=True)
class EdgeRef:
    """One call-tree edge of one class, as the model sees it."""

    traffic_class: str
    edge_index: int          # INGRESS_EDGE or index into spec.edges
    caller: str | None       # None for ingress
    callee: str
    calls_per_request: float
    request_bytes: int
    response_bytes: int


@dataclass(frozen=True)
class RouteVar:
    """Identity of one flow variable."""

    edge: EdgeRef
    src: str
    dst: str


@dataclass
class LinearModel:
    """Assembled (MI)LP ready for a scipy backend."""

    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    #: per-column 1 for binary route-activation vars, else 0
    integrality: np.ndarray
    upper_bounds: np.ndarray
    route_vars: list[RouteVar]
    #: column of each route variable (same order as route_vars)
    route_columns: list[int]
    #: (service, cluster) → epigraph column
    pool_columns: dict[tuple[str, str], int]
    #: (service, cluster) → piecewise segments used
    pool_segments: dict[tuple[str, str], list[Segment]]
    problem: TEProblem

    @property
    def n_variables(self) -> int:
        return len(self.objective)

    @property
    def is_mip(self) -> bool:
        return bool(self.integrality.any())


def class_edges(problem: TEProblem, name: str) -> list[EdgeRef]:
    """The ingress pseudo-edge plus the class's call-tree edges."""
    spec = problem.workloads[name].spec
    refs = [EdgeRef(name, INGRESS_EDGE, None, spec.root_service, 1.0,
                    spec.ingress_request_bytes, spec.ingress_response_bytes)]
    refs.extend(
        EdgeRef(name, index, edge.caller, edge.callee, edge.calls_per_request,
                edge.request_bytes, edge.response_bytes)
        for index, edge in enumerate(spec.edges)
    )
    return refs


def _edge_sources(problem: TEProblem, workload, edge: EdgeRef) -> list[str]:
    if edge.edge_index == INGRESS_EDGE:
        return [c for c in problem.clusters if workload.demand.get(c, 0) > 0]
    return problem.deployed_in(edge.caller)


def _edge_flow_bound(problem: TEProblem, workload, edge: EdgeRef) -> float:
    """Upper bound on total flow along one class edge (for MILP big-M)."""
    if edge.edge_index == INGRESS_EDGE:
        return workload.total_demand
    execs = workload.spec.executions_per_request()
    return (workload.total_demand * execs[edge.caller]
            * edge.calls_per_request)


def build_model(problem: TEProblem, max_splits: int | None = None,
                knot_fractions=DEFAULT_KNOT_FRACTIONS,
                backend: str = "vectorized",
                structure_cache=None) -> LinearModel:
    """Assemble the (MI)LP for ``problem``.

    ``max_splits`` bounds the number of destination clusters per
    (class, edge, source) rule, turning the LP into a MILP.

    ``backend`` selects the assembly path: ``"vectorized"`` (numpy block
    construction, the default) or ``"loop"`` (the original per-variable
    reference builder). Both produce byte-identical models — the property
    tests pin this down — so the choice is purely a build-speed one.
    ``structure_cache`` (a :class:`~repro.core.optimizer.vectorized
    .StructureCache`) lets repeated vectorized LP builds that differ only
    in demand values reuse the assembled matrices.
    """
    if backend == "vectorized":
        from .vectorized import build_model_vectorized
        return build_model_vectorized(problem, max_splits=max_splits,
                                      knot_fractions=knot_fractions,
                                      structure_cache=structure_cache)
    if backend != "loop":
        raise ValueError(f"unknown build backend {backend!r}")
    return build_model_loop(problem, max_splits=max_splits,
                            knot_fractions=knot_fractions)


def build_model_loop(problem: TEProblem, max_splits: int | None = None,
                     knot_fractions=DEFAULT_KNOT_FRACTIONS) -> LinearModel:
    """Reference per-variable assembly (the pre-vectorization builder).

    Kept as the executable specification the vectorized builder is tested
    against: simple enough to audit row by row, far too slow past a few
    dozen clusters.
    """
    if max_splits is not None and max_splits < 1:
        raise ValueError(f"max_splits must be >= 1, got {max_splits}")

    # ------------------------------------------------------------- columns
    route_vars: list[RouteVar] = []
    route_columns: list[int] = []
    var_col: dict[tuple[str, int, str, str], int] = {}
    upper: list[float] = []
    next_col = 0
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        for edge in class_edges(problem, name):
            destinations = problem.deployed_in(edge.callee)
            if not destinations:
                raise ValueError(
                    f"class {name!r}: service {edge.callee!r} deployed "
                    "nowhere")
            bound = _edge_flow_bound(problem, workload, edge)
            for src in _edge_sources(problem, workload, edge):
                for dst in destinations:
                    var_col[(name, edge.edge_index, src, dst)] = next_col
                    route_vars.append(RouteVar(edge, src, dst))
                    route_columns.append(next_col)
                    upper.append(bound)
                    next_col += 1

    pool_columns: dict[tuple[str, str], int] = {}
    for service, cluster in problem.pools():
        pool_columns[(service, cluster)] = next_col
        upper.append(np.inf)
        next_col += 1

    # binary route-activation columns (MILP mode)
    activation_col: dict[int, int] = {}
    if max_splits is not None:
        for col in route_columns:
            activation_col[col] = next_col
            upper.append(1.0)
            next_col += 1

    n = next_col
    objective = np.zeros(n)
    integrality = np.zeros(n)
    for col in activation_col.values():
        integrality[col] = 1

    eq_rows: list[tuple[dict[int, float], float]] = []
    ub_rows: list[tuple[dict[int, float], float]] = []

    # ------------------------------------------------- demand satisfaction
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        spec = workload.spec
        root_dsts = problem.deployed_in(spec.root_service)
        for cluster, rps in sorted(workload.demand.items()):
            if rps <= 0:
                continue
            row = {var_col[(name, INGRESS_EDGE, cluster, dst)]: 1.0
                   for dst in root_dsts}
            eq_rows.append((row, rps))

    # ------------------------------------------------------- conservation
    # incoming edge of each service in each class (trees: unique)
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        edges = class_edges(problem, name)
        incoming = {edge.callee: edge for edge in edges}
        for edge in edges:
            if edge.edge_index == INGRESS_EDGE:
                continue
            parent_edge = incoming[edge.caller]
            parent_sources = _edge_sources(problem, workload, parent_edge)
            for src in problem.deployed_in(edge.caller):
                row: dict[int, float] = {}
                for dst in problem.deployed_in(edge.callee):
                    col = var_col[(name, edge.edge_index, src, dst)]
                    row[col] = row.get(col, 0.0) + 1.0
                for origin in parent_sources:
                    col = var_col[(name, parent_edge.edge_index, origin, src)]
                    row[col] = row.get(col, 0.0) - edge.calls_per_request
                eq_rows.append((row, 0.0))

    # ------------------------------------------- per-pool workload & delay
    # offered work a[s,c] = Σ_k st[k,s] · exec_rate[k,s,c] (erlangs)
    work_expr: dict[tuple[str, str], dict[int, float]] = {
        pool: {} for pool in pool_columns
    }
    for name in sorted(problem.workloads):
        workload = problem.workloads[name]
        edges = class_edges(problem, name)
        incoming = {edge.callee: edge for edge in edges}
        for service in workload.spec.services():
            st = workload.spec.exec_time_of(service)
            if st <= 0:
                continue
            edge = incoming[service]
            for src in _edge_sources(problem, workload, edge):
                for dst in problem.deployed_in(service):
                    col = var_col[(name, edge.edge_index, src, dst)]
                    expr = work_expr[(service, dst)]
                    expr[col] = expr.get(col, 0.0) + st

    pool_segments: dict[tuple[str, str], list[Segment]] = {}
    for (service, cluster), t_col in pool_columns.items():
        expr = work_expr[(service, cluster)]
        replicas = problem.replica_count(service, cluster)
        a_max = problem.rho_max * replicas
        # capacity: a <= rho_max * replicas
        if expr:
            ub_rows.append((dict(expr), a_max))
        # epigraph: slope·a - t <= -intercept
        segments = pool_segments_for(replicas, problem.delay_model, a_max,
                                     knot_fractions)
        pool_segments[(service, cluster)] = segments
        objective[t_col] = 1.0
        if expr:
            for segment in segments:
                row = {col: segment.slope * coeff
                       for col, coeff in expr.items()}
                row[t_col] = row.get(t_col, 0.0) - 1.0
                ub_rows.append((row, -segment.intercept))
        # with no work expression, t is only pushed by its objective weight
        # toward max(intercepts); pin it at the zero-load backlog (0)
        else:
            ub_rows.append(({t_col: -1.0}, 0.0))

    # ------------------------------------------------- objective for flows
    egress_coeffs: dict[int, float] = {}
    for var, col in zip(route_vars, route_columns):
        edge = var.edge
        net_delay = problem.rtt(var.src, var.dst)
        egress = (problem.transfer_cost(var.src, var.dst, edge.request_bytes)
                  + problem.transfer_cost(var.dst, var.src,
                                          edge.response_bytes))
        objective[col] = net_delay + problem.cost_weight * egress
        if egress > 0:
            egress_coeffs[col] = egress

    # ------------------------------------------------ egress budget ($/s)
    if problem.egress_budget is not None and egress_coeffs:
        ub_rows.append((dict(egress_coeffs), problem.egress_budget))

    # --------------------------------------------------- MILP split limits
    if max_splits is not None:
        grouped: dict[tuple[str, int, str], list[int]] = {}
        for var, col in zip(route_vars, route_columns):
            key = (var.edge.traffic_class, var.edge.edge_index, var.src)
            grouped.setdefault(key, []).append(col)
        for key, cols in sorted(grouped.items()):
            for col in cols:
                big_m = max(upper[col], 1e-9)
                ub_rows.append(({col: 1.0, activation_col[col]: -big_m}, 0.0))
            ub_rows.append((
                {activation_col[col]: 1.0 for col in cols},
                float(max_splits)))

    a_eq, b_eq = _assemble(eq_rows, n)
    a_ub, b_ub = _assemble(ub_rows, n)
    return LinearModel(
        objective=objective,
        a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        integrality=integrality,
        upper_bounds=np.array(upper),
        route_vars=route_vars,
        route_columns=route_columns,
        pool_columns=pool_columns,
        pool_segments=pool_segments,
        problem=problem,
    )


def _assemble(rows: list[tuple[dict[int, float], float]],
              n_cols: int) -> tuple[sparse.csr_matrix, np.ndarray]:
    data: list[float] = []
    row_idx: list[int] = []
    col_idx: list[int] = []
    rhs = np.zeros(len(rows))
    for r, (row, bound) in enumerate(rows):
        rhs[r] = bound
        for col, coeff in row.items():
            row_idx.append(r)
            col_idx.append(col)
            data.append(coeff)
    matrix = sparse.csr_matrix(
        (data, (row_idx, col_idx)), shape=(len(rows), n_cols))
    # canonical form (sorted, deduplicated indices) so the solver input —
    # and therefore the solution — is bitwise independent of assembly order
    matrix.sum_duplicates()
    matrix.sort_indices()
    return matrix, rhs
