"""TE problem description consumed by the Global Controller's optimizer.

A :class:`TEProblem` captures everything §3.3's formulation needs: for each
traffic class its load-to-latency inputs (per-service compute times), call
tree, and demand; plus clusters, replica placement, inter-cluster network
latency, and egress bandwidth prices.

Problems are built either from ground-truth specs (:meth:`TEProblem
.from_specs` — the oracle mode used by benchmarks) or by the Global
Controller from telemetry and fitted latency profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...sim.apps import AppSpec, TrafficClassSpec
from ...sim.network import EgressPricing, LatencyMatrix
from ...sim.topology import DeploymentSpec
from ...sim.workload import DemandMatrix

__all__ = ["ClassWorkload", "TEProblem"]


@dataclass
class ClassWorkload:
    """One traffic class's structure and demand."""

    spec: TrafficClassSpec
    #: ingress demand per cluster, requests/second
    demand: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cluster, rps in self.demand.items():
            if rps < 0:
                raise ValueError(
                    f"class {self.spec.name!r}: negative demand at "
                    f"{cluster!r}")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def total_demand(self) -> float:
        return sum(self.demand.values())


@dataclass
class TEProblem:
    """A complete service-layer traffic engineering instance."""

    clusters: list[str]
    latency: LatencyMatrix
    pricing: EgressPricing
    #: (service, cluster) → replica count; absent/0 = not deployed
    replicas: dict[tuple[str, str], int]
    workloads: dict[str, ClassWorkload]
    #: utilization cap per pool — keeps the LP away from the delay pole
    rho_max: float = 0.95
    #: objective weight converting $/s of egress into latency-seconds/s;
    #: 0 optimizes latency only (§4.1: "if an administrator values cost over
    #: latency ... should reflect it")
    cost_weight: float = 0.0
    #: hard cap on egress spend in $/s (None = unconstrained) — the
    #: budget-style alternative to cost_weight; both can be combined
    egress_budget: float | None = None
    #: pool delay model: "mmc" (exact Erlang-C) or "mm1" (Kleinrock)
    delay_model: str = "mmc"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("need at least one cluster")
        if not 0 < self.rho_max < 1:
            raise ValueError(f"rho_max must be in (0, 1), got {self.rho_max}")
        if self.cost_weight < 0:
            raise ValueError("cost_weight must be >= 0")
        if self.egress_budget is not None and self.egress_budget < 0:
            raise ValueError("egress_budget must be >= 0")
        known = set(self.clusters)
        for (service, cluster), count in self.replicas.items():
            if cluster not in known:
                raise ValueError(
                    f"replicas for {service!r} reference unknown cluster "
                    f"{cluster!r}")
            if count < 0:
                raise ValueError(
                    f"negative replicas for {service!r}@{cluster!r}")
        for name, workload in self.workloads.items():
            if name != workload.name:
                raise ValueError(
                    f"workload keyed {name!r} is named {workload.name!r}")
            for cluster in workload.demand:
                if cluster not in known:
                    raise ValueError(
                        f"class {name!r} demand references unknown cluster "
                        f"{cluster!r}")
            for service in workload.spec.services():
                if not self.deployed_in(service):
                    raise ValueError(
                        f"class {name!r} uses service {service!r} which is "
                        "deployed nowhere")

    # ------------------------------------------------------------- helpers

    def deployed_in(self, service: str) -> list[str]:
        """Clusters running ``service``, in problem cluster order."""
        return [c for c in self.clusters
                if self.replicas.get((service, c), 0) > 0]

    def replica_count(self, service: str, cluster: str) -> int:
        return self.replicas.get((service, cluster), 0)

    def pools(self) -> list[tuple[str, str]]:
        """All deployed (service, cluster) pools touched by some workload."""
        used_services = {s for w in self.workloads.values()
                         for s in w.spec.services()}
        return [(service, cluster)
                for (service, cluster), count in sorted(self.replicas.items())
                if count > 0 and service in used_services]

    def total_demand(self) -> float:
        return sum(w.total_demand for w in self.workloads.values())

    def rtt(self, a: str, b: str) -> float:
        return self.latency.rtt(a, b)

    def transfer_cost(self, src: str, dst: str, nbytes: float) -> float:
        """Dollar cost of moving ``nbytes`` from src to dst."""
        return nbytes * self.pricing.per_byte(src, dst)

    # --------------------------------------------------------- constructors

    @staticmethod
    def from_specs(app: AppSpec, deployment: DeploymentSpec,
                   demand: DemandMatrix, rho_max: float = 0.95,
                   cost_weight: float = 0.0,
                   egress_budget: float | None = None,
                   delay_model: str = "mmc") -> "TEProblem":
        """Oracle-mode construction from ground-truth specs."""
        workloads = {}
        for name, spec in app.classes.items():
            per_cluster = {
                cluster: demand.rps(name, cluster)
                for cluster in deployment.cluster_names
                if demand.rps(name, cluster) > 0
            }
            workloads[name] = ClassWorkload(spec=spec, demand=per_cluster)
        replicas = {
            (service, cluster.name): count
            for cluster in deployment.clusters
            for service, count in cluster.replicas.items()
            if count > 0
        }
        return TEProblem(
            clusters=list(deployment.cluster_names),
            latency=deployment.latency,
            pricing=deployment.pricing,
            replicas=replicas,
            workloads=workloads,
            rho_max=rho_max,
            cost_weight=cost_weight,
            egress_budget=egress_budget,
            delay_model=delay_model,
        )
