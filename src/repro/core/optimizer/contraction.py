"""Topology contraction: trading optimality for solve time (§5).

"Scalability & fast reaction: ... The optimization problem run by SLATE's
controller expands with the number of clusters, services, and traffic
classes. Although heuristics have been developed for network-layer TE
(multicommodity flow) [1, 19] and might provide useful inspiration..."

This module adapts reference [1]'s idea (contracting WAN topologies to
solve flow problems quickly) to the service layer: nearby clusters are
merged into super-clusters, the TE problem is solved on the contracted
topology (quadratically fewer flow variables), and the super-cluster rules
are expanded back to real clusters by splitting each destination weight
across group members in proportion to their capacity.

The approximation: routing *within* a super-cluster is treated as local
(its WAN latency and egress are ignored by the solver), so groups should
only contain mutually close clusters. The scalability benchmark quantifies
the speed/quality tradeoff.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...sim.network import EgressPricing, LatencyMatrix
from ..rules import RoutingRule, RuleSet
from .problem import ClassWorkload, TEProblem
from .result import OptimizationResult
from .solve import solve

__all__ = ["ContractedSolution", "candidate_clusters", "group_clusters",
           "contract_problem", "expand_rules", "solve_contracted"]

GROUP_SEPARATOR = "+"


@dataclass
class ContractedSolution:
    """Outcome of a contracted solve."""

    groups: list[list[str]]
    contracted_result: OptimizationResult
    #: rules expanded back to the original clusters
    rules: RuleSet
    total_time: float = 0.0

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def group_clusters(latency: LatencyMatrix, clusters: list[str],
                   n_groups: int) -> list[list[str]]:
    """Agglomerate clusters into ``n_groups`` proximity groups.

    Greedy average-linkage: repeatedly merge the two groups with the
    smallest mean inter-member one-way delay. Deterministic (ties break by
    group name).
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    if n_groups > len(clusters):
        raise ValueError(
            f"cannot form {n_groups} groups from {len(clusters)} clusters")
    groups = [[name] for name in sorted(clusters)]
    while len(groups) > n_groups:
        best: tuple[float, int, int] | None = None
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                distance = _mean_delay(latency, groups[i], groups[j])
                key = (distance, i, j)
                if best is None or key < best:
                    best = key
        _, i, j = best
        groups[i] = sorted(groups[i] + groups[j])
        del groups[j]
        groups.sort()
    return groups


def candidate_clusters(latency: LatencyMatrix, deployed: list[str],
                       anchor: str, limit: int | None) -> list[str]:
    """The ``limit`` deployed clusters nearest ``anchor``, by one-way delay.

    The cheap pruning primitive behind the path formulation's candidate
    enumeration: where :func:`group_clusters` contracts the whole topology
    (cubic in clusters), this just ranks one service's deployment sites
    around one anchor — linear, so it can run per hop of a beam search.
    Deterministic: ties break on cluster name. ``limit=None`` disables
    pruning.
    """
    if limit is None or limit >= len(deployed):
        return list(deployed)
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    ranked = sorted(deployed,
                    key=lambda c: (latency.one_way(anchor, c), c))
    return ranked[:limit]


def _mean_delay(latency: LatencyMatrix, a: list[str], b: list[str]) -> float:
    total = sum(latency.one_way(x, y) for x in a for y in b)
    return total / (len(a) * len(b))


def _group_name(members: list[str]) -> str:
    return GROUP_SEPARATOR.join(sorted(members))


def contract_problem(problem: TEProblem,
                     groups: list[list[str]]) -> TEProblem:
    """Build the super-cluster TE problem.

    Super-cluster capacity/demand are member sums; inter-group latency and
    egress price are member-pair means; intra-group traffic is treated as
    local (free and fast — the contraction approximation).
    """
    grouped = {cluster: _group_name(members)
               for members in groups for cluster in members}
    missing = set(problem.clusters) - set(grouped)
    if missing:
        raise ValueError(f"groups do not cover clusters {sorted(missing)}")
    names = sorted({_group_name(members) for members in groups})
    members_of = {_group_name(members): members for members in groups}

    delays = {}
    prices = {}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            delays[(a, b)] = _mean_delay(problem.latency, members_of[a],
                                         members_of[b])
            pair_prices = [problem.pricing.per_gb(x, y)
                           for x in members_of[a] for y in members_of[b]]
            prices[(a, b)] = sum(pair_prices) / len(pair_prices)
    latency = LatencyMatrix(
        names, delays,
        intra_cluster_delay=problem.latency.intra_cluster_delay)
    pricing = EgressPricing(default_price_per_gb=0.0,
                            pair_prices_per_gb=prices)

    replicas: dict[tuple[str, str], int] = {}
    for (service, cluster), count in problem.replicas.items():
        key = (service, grouped[cluster])
        replicas[key] = replicas.get(key, 0) + count

    workloads = {}
    for name, workload in problem.workloads.items():
        demand: dict[str, float] = {}
        for cluster, rps in workload.demand.items():
            group = grouped[cluster]
            demand[group] = demand.get(group, 0.0) + rps
        workloads[name] = ClassWorkload(spec=workload.spec, demand=demand)

    return TEProblem(
        clusters=names,
        latency=latency,
        pricing=pricing,
        replicas=replicas,
        workloads=workloads,
        rho_max=problem.rho_max,
        cost_weight=problem.cost_weight,
        delay_model=problem.delay_model,
    )


def expand_rules(problem: TEProblem, groups: list[list[str]],
                 contracted: OptimizationResult,
                 expansion: str = "affinity") -> RuleSet:
    """Turn super-cluster rules back into per-cluster rules.

    Each member of a source group applies the group's rule; weight pointed
    at remote groups splits across their members proportionally to replica
    capacity. Weight pointed at the *source's own group* depends on
    ``expansion``:

    * ``"affinity"`` — it stays at the source cluster itself (no intra-group
      crossings, but a hot member keeps its own hotspot);
    * ``"rebalance"`` — it spreads capacity-proportionally over the group
      (utilizations equalize, but intra-group WAN hops are paid).

    Neither recovers the intra-group optimum the contraction discarded —
    exactly the kind of §5 acceleration-vs-quality gap the paper flags as
    open; the scalability benchmark quantifies both sides.
    """
    if expansion not in ("affinity", "rebalance"):
        raise ValueError(f"unknown expansion mode {expansion!r}")
    members_of = {_group_name(members): members for members in groups}
    expanded = RuleSet()
    for rule in contracted.rules():
        src_group = rule.src_cluster
        for src in members_of[src_group]:
            weights: dict[str, float] = {}
            for dst_group, weight in rule.weights:
                members = members_of[dst_group]
                if (dst_group == src_group and expansion == "affinity"
                        and problem.replica_count(rule.service, src) > 0):
                    weights[src] = weights.get(src, 0.0) + weight
                    continue
                capacities = {
                    m: problem.replica_count(rule.service, m)
                    for m in members
                }
                total = sum(capacities.values())
                if total == 0:
                    continue
                for member, capacity in capacities.items():
                    if capacity > 0:
                        weights[member] = (weights.get(member, 0.0)
                                           + weight * capacity / total)
            if weights:
                expanded.add(RoutingRule.make(
                    rule.service, rule.traffic_class, src, weights))
    return expanded


def solve_contracted(problem: TEProblem, n_groups: int,
                     expansion: str = "affinity") -> ContractedSolution:
    """Group, contract, solve, and expand — the fast path for large fleets."""
    # solver wall time is diagnostic output, never simulation input
    started = time.perf_counter()   # lint: ignore[D02]
    groups = group_clusters(problem.latency, problem.clusters, n_groups)
    contracted = contract_problem(problem, groups)
    result = solve(contracted)
    rules = expand_rules(problem, groups, result, expansion=expansion)
    elapsed = time.perf_counter() - started   # lint: ignore[D02]
    return ContractedSolution(groups=groups, contracted_result=result,
                              rules=rules, total_time=elapsed)
