"""Request, call, and trace data model.

A *request* enters the system at a cluster's ingress gateway carrying HTTP-ish
attributes (method, path, headers). SLATE classifies it into a *traffic
class* (see :mod:`repro.core.classes`). Serving the request produces a tree
of *calls* across services and clusters; each executed call yields a
:class:`Span`, and the spans of one request form its :class:`Trace` — the
telemetry SLATE-proxies report upward (§3.1 of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["RequestAttributes", "Request", "RequestIdAllocator", "Span",
           "Trace", "new_request_id"]


class RequestIdAllocator:
    """Sequential request ids scoped to one simulation run.

    Each :class:`~repro.sim.runner.MeshSimulation` owns its own allocator
    so request ids — and everything exported with them — are a pure
    function of the run's seed, not of how many simulations the process
    ran before.
    """

    def __init__(self, start: int = 1) -> None:
        self._ids = itertools.count(start)

    def __call__(self) -> int:
        return next(self._ids)


_request_ids = RequestIdAllocator()


def new_request_id() -> int:
    """Allocate a process-unique request id.

    Fallback for standalone :class:`TrafficSource` uses; simulations
    should allocate from their own :class:`RequestIdAllocator` so reruns
    are byte-identical.
    """
    return _request_ids()


@dataclass(frozen=True, slots=True)
class RequestAttributes:
    """The externally visible attributes a classifier may inspect.

    The paper's heuristic classifies on (service, HTTP method, HTTP path);
    headers are carried for richer classifiers (§5 "Traffic classification").
    """

    service: str
    method: str = "GET"
    path: str = "/"
    headers: tuple[tuple[str, str], ...] = ()

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return default

    @staticmethod
    def make(service: str, method: str = "GET", path: str = "/",
             headers: dict[str, str] | None = None) -> "RequestAttributes":
        """Convenience constructor accepting a dict of headers."""
        items = tuple(sorted((headers or {}).items()))
        return RequestAttributes(service=service, method=method, path=path,
                                 headers=items)


@dataclass(slots=True)
class Request:
    """One end-to-end request moving through the system."""

    request_id: int
    attributes: RequestAttributes
    ingress_cluster: str
    arrival_time: float
    traffic_class: str = "default"
    #: the data item this request touches (enables edge caching); None when
    #: the class has no key space
    data_key: int | None = None
    #: set when the response (or final error) leaves the ingress gateway
    completion_time: float | None = None
    #: True when the request ended in an error (exhausted retries)
    failed: bool = False

    @property
    def latency(self) -> float:
        """End-to-end latency in seconds; raises if still in flight.

        For failed requests this is the time until the error surfaced.
        """
        if self.completion_time is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.completion_time - self.arrival_time

    @property
    def done(self) -> bool:
        """Finished successfully (failed requests are not "done")."""
        return self.completion_time is not None and not self.failed


@dataclass(slots=True)
class Span:
    """One service execution within a request's call tree.

    Times are virtual seconds. ``enqueue_time <= start_time <= end_time``;
    the gap before ``start_time`` is replica-pool queueing and the rest is
    compute plus downstream calls.
    """

    request_id: int
    traffic_class: str
    service: str
    cluster: str
    caller_service: str | None
    caller_cluster: str | None
    enqueue_time: float
    start_time: float = 0.0
    end_time: float = 0.0
    exec_time: float = 0.0
    #: bytes of the call into this span and of its response (what the
    #: proxy sees on the wire; feeds call-graph inference)
    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting for a free replica."""
        return self.start_time - self.enqueue_time

    @property
    def total_time(self) -> float:
        """Wall time from enqueue to response (includes downstream calls)."""
        return self.end_time - self.enqueue_time

    @property
    def remote(self) -> bool:
        """True when the call crossed a cluster boundary."""
        return (self.caller_cluster is not None
                and self.caller_cluster != self.cluster)


@dataclass(slots=True)
class Trace:
    """All spans recorded for a single request."""

    request_id: int
    spans: list[Span] = field(default_factory=list)

    def add(self, span: Span) -> None:
        if span.request_id != self.request_id:
            raise ValueError(
                f"span for request {span.request_id} added to trace "
                f"{self.request_id}")
        self.spans.append(span)

    def spans_for(self, service: str) -> list[Span]:
        """Spans executed by ``service`` (any cluster)."""
        return [s for s in self.spans if s.service == service]

    @property
    def cross_cluster_hops(self) -> int:
        """Number of calls in the tree that crossed clusters."""
        return sum(1 for s in self.spans if s.remote)
