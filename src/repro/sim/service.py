"""Service replica pools.

Each (service, cluster) pair is modelled as a pool of ``replicas`` identical
servers fed by one FIFO queue — the standard abstraction for a Kubernetes
Deployment behind a ClusterIP service. Requests wait for a free replica,
occupy it for their compute time, then release it. Under Poisson arrivals and
exponential service times this is an M/M/c queue, which is exactly the
"variation of a M/M/1 queuing model" load-to-latency behaviour the paper's
Global Controller assumes (§3.3 "Latency Modeling").

The pool does not know about traffic classes or call graphs; callers pass the
compute time for each job. Downstream calls happen *between* compute phases
and are orchestrated by :mod:`repro.sim.runner`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..devtools.invariants import check_pool_depths, invariants_enabled
from .engine import Simulator

__all__ = ["ReplicaPool", "PoolStats"]


@dataclass
class PoolStats:
    """Counters accumulated by a :class:`ReplicaPool` over a window."""

    arrivals: int = 0
    completions: int = 0
    busy_seconds: float = 0.0
    window_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of replica capacity busy over the window.

        Normalised per replica by the caller (see ``ReplicaPool.harvest``).
        """
        if self.window_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.window_seconds

    @property
    def mean_queue_wait(self) -> float:
        """Mean seconds completed jobs spent queueing."""
        if self.completions == 0:
            return 0.0
        return self.queue_wait_seconds / self.completions


class _Job:
    __slots__ = ("work_time", "on_start", "on_complete", "enqueue_time")

    def __init__(self, work_time: float,
                 on_start: Callable[[float], None] | None,
                 on_complete: Callable[[float], None],
                 enqueue_time: float) -> None:
        self.work_time = work_time
        self.on_start = on_start
        self.on_complete = on_complete
        self.enqueue_time = enqueue_time


class ReplicaPool:
    """A FIFO multi-server queue for one service in one cluster."""

    def __init__(self, sim: Simulator, service: str, cluster: str,
                 replicas: int) -> None:
        if replicas < 1:
            raise ValueError(f"{service}@{cluster}: replicas must be >= 1, "
                             f"got {replicas}")
        self._sim = sim
        self.service = service
        self.cluster = cluster
        self._replicas = replicas
        self._busy = 0
        self._slowdown = 1.0
        self._queue: deque[_Job] = deque()
        # busy-time integration
        self._lifetime_busy = 0.0
        self._last_change = sim.now
        self._window_start = sim.now
        self._stats = PoolStats()
        self._debug_invariants = invariants_enabled()

    # ------------------------------------------------------------------ API

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def busy_replicas(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Jobs occupying a replica plus jobs queued."""
        return self._busy + len(self._queue)

    @property
    def slowdown(self) -> float:
        """Service-time multiplier for a degraded ("slow replica") pool.

        1.0 (the default) leaves compute times untouched bit-for-bit;
        the chaos layer sets a factor > 1 on inject and restores 1.0 on
        recover. Applies when a replica *starts* a job, so jobs already
        running keep their original finish times.
        """
        return self._slowdown

    def degrade(self, factor: float) -> None:
        """Set the service-time multiplier (chaos slow-replica fault)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self._slowdown = factor

    @property
    def lifetime_busy_seconds(self) -> float:
        """Monotone replica-busy-seconds since construction.

        Unlike :meth:`harvest` this never resets, so independent observers
        (e.g. the autoscaler) can difference it over their own windows
        without disturbing telemetry.
        """
        # include the un-flushed segment since the last state change
        return (self._lifetime_busy
                + self._busy * (self._sim.now - self._last_change))

    def submit(self, work_time: float,
               on_complete: Callable[[float], None],
               on_start: Callable[[float], None] | None = None) -> None:
        """Enqueue a job needing ``work_time`` seconds of one replica.

        ``on_start(now)`` fires when a replica picks the job up;
        ``on_complete(now)`` fires when its compute finishes.
        """
        if work_time < 0:
            raise ValueError(f"work_time must be >= 0, got {work_time}")
        self._stats.arrivals += 1
        job = _Job(work_time, on_start, on_complete, self._sim.now)
        if self._busy < self._replicas:
            self._start(job)
        else:
            self._queue.append(job)

    def resize(self, replicas: int) -> None:
        """Change pool size (models an autoscaler action).

        Shrinking never pre-empts running jobs; extra busy replicas drain
        naturally and queued jobs start only once ``busy < replicas``.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._accumulate_busy()
        self._replicas = replicas
        self._drain_queue()

    def harvest(self) -> PoolStats:
        """Return stats for the window since the last harvest and reset.

        ``busy_seconds`` is normalised by the replica count so that
        ``stats.utilization`` is a 0..1 per-replica utilization.
        """
        self._accumulate_busy()
        now = self._sim.now
        stats = self._stats
        stats.window_seconds = now - self._window_start
        if self._replicas > 0:
            stats.busy_seconds /= self._replicas
        self._stats = PoolStats()
        self._window_start = now
        return stats

    # ------------------------------------------------------------- internal

    def _accumulate_busy(self) -> None:
        now = self._sim.now
        elapsed_busy = self._busy * (now - self._last_change)
        self._stats.busy_seconds += elapsed_busy
        self._lifetime_busy += elapsed_busy
        self._last_change = now

    def _start(self, job: _Job) -> None:
        self._accumulate_busy()
        self._busy += 1
        now = self._sim.now
        self._stats.queue_wait_seconds += now - job.enqueue_time
        if job.on_start is not None:
            job.on_start(now)
        # multiplying by the default 1.0 is bit-exact, so healthy runs are
        # byte-identical to the pre-slowdown implementation
        self._sim.schedule(job.work_time * self._slowdown, self._finish, job)

    def _finish(self, job: _Job) -> None:
        self._accumulate_busy()
        self._busy -= 1
        self._stats.completions += 1
        if self._debug_invariants:
            check_pool_depths(self)
        self._drain_queue()
        job.on_complete(self._sim.now)

    def _drain_queue(self) -> None:
        while self._queue and self._busy < self._replicas:
            self._start(self._queue.popleft())

    def __repr__(self) -> str:
        return (f"ReplicaPool({self.service}@{self.cluster}, "
                f"replicas={self._replicas}, busy={self._busy}, "
                f"queued={len(self._queue)})")
