"""Deployment topologies: clusters, replica placement, WAN latencies.

Includes the real GCP four-region topology from §4.2 of the paper — Oregon
(OR), Utah (UT), Iowa (IOW), South Carolina (SC) — with the measured median
inter-region VM-to-VM latencies: OR–UT 30 ms, UT–IOW 20 ms, IOW–SC 35 ms,
OR–SC 66 ms, OR–IOW 37 ms. The paper does not report UT–SC; we default it to
the UT–IOW–SC path (55 ms), configurable. Reported figures are treated as
RTTs (ping-style medians), so one-way delay is half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import EgressPricing, LatencyMatrix

__all__ = ["ClusterSpec", "DeploymentSpec", "gcp_four_region_latency",
           "two_region_latency", "GCP_REGIONS", "GCP_RTT_MS"]

GCP_REGIONS = ("OR", "UT", "IOW", "SC")

#: §4.2 measured RTTs in milliseconds; UT–SC estimated via IOW.
GCP_RTT_MS = {
    ("OR", "UT"): 30.0,
    ("UT", "IOW"): 20.0,
    ("IOW", "SC"): 35.0,
    ("OR", "SC"): 66.0,
    ("OR", "IOW"): 37.0,
    ("UT", "SC"): 55.0,
}


def gcp_four_region_latency(ut_sc_rtt_ms: float = 55.0) -> LatencyMatrix:
    """The §4.2 GCP topology as a latency matrix (one-way = RTT / 2)."""
    rtts = dict(GCP_RTT_MS)
    rtts[("UT", "SC")] = ut_sc_rtt_ms
    one_way = {pair: rtt / 2.0 for pair, rtt in rtts.items()}
    return LatencyMatrix.from_ms(GCP_REGIONS, one_way)


def two_region_latency(one_way_ms: float, west: str = "west",
                       east: str = "east") -> LatencyMatrix:
    """Two-cluster topology used in §4.1 (Fig. 4, Fig. 6a)."""
    return LatencyMatrix.from_ms((west, east), {(west, east): one_way_ms})


@dataclass(frozen=True)
class ClusterSpec:
    """Replica placement for one cluster: service → replica count.

    A service absent from ``replicas`` (or mapped to 0) is not deployed in
    this cluster — the partial-replication case of Fig. 1 / §4.3.
    """

    name: str
    replicas: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for service, count in self.replicas.items():
            if count < 0:
                raise ValueError(
                    f"cluster {self.name!r}: negative replicas for {service!r}")

    def has(self, service: str) -> bool:
        return self.replicas.get(service, 0) > 0


@dataclass
class DeploymentSpec:
    """A full multi-cluster deployment: placement + network + pricing."""

    clusters: list[ClusterSpec]
    latency: LatencyMatrix
    pricing: EgressPricing = field(default_factory=EgressPricing)

    def __post_init__(self) -> None:
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")
        unknown = set(names) - set(self.latency.clusters)
        if unknown:
            raise ValueError(
                f"clusters {sorted(unknown)} missing from the latency matrix")

    @property
    def cluster_names(self) -> list[str]:
        return [c.name for c in self.clusters]

    def cluster(self, name: str) -> ClusterSpec:
        for spec in self.clusters:
            if spec.name == name:
                return spec
        raise KeyError(f"no cluster named {name!r}")

    def replicas(self, service: str, cluster: str) -> int:
        return self.cluster(cluster).replicas.get(service, 0)

    def clusters_with(self, service: str) -> list[str]:
        """Clusters where ``service`` is deployed, in declaration order."""
        return [c.name for c in self.clusters if c.has(service)]

    def services(self) -> list[str]:
        """Union of deployed services, stable order."""
        seen: dict[str, None] = {}
        for spec in self.clusters:
            for service, count in spec.replicas.items():
                if count > 0:
                    seen.setdefault(service)
        return list(seen)

    @staticmethod
    def uniform(app_services: list[str], cluster_names: list[str],
                replicas: int, latency: LatencyMatrix,
                pricing: EgressPricing | None = None) -> "DeploymentSpec":
        """Deploy every service with the same replica count everywhere."""
        clusters = [
            ClusterSpec(name, {s: replicas for s in app_services})
            for name in cluster_names
        ]
        return DeploymentSpec(clusters, latency, pricing or EgressPricing())
