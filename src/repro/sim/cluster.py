"""Runtime cluster: instantiated replica pools for one region.

A :class:`Cluster` is the live counterpart of a
:class:`~repro.sim.topology.ClusterSpec`: it owns one
:class:`~repro.sim.service.ReplicaPool` per deployed service. The mesh layer
(:mod:`repro.mesh`) attaches proxies and a gateway on top.
"""

from __future__ import annotations

from typing import Callable

from .engine import Simulator
from .service import PoolStats, ReplicaPool
from .topology import ClusterSpec

__all__ = ["Cluster", "PoolFactory"]

#: builds a service queue: (sim, service, cluster, replicas) -> pool-like
PoolFactory = Callable[[Simulator, str, str, int], ReplicaPool]


def _default_factory(sim: Simulator, service: str, cluster: str,
                     replicas: int) -> ReplicaPool:
    return ReplicaPool(sim, service, cluster, replicas)


class Cluster:
    """Live replica pools for one cluster.

    ``pool_factory`` selects the service model: the default central-queue
    :class:`~repro.sim.service.ReplicaPool`, or a
    :class:`~repro.sim.replicas.ReplicaSet` for per-replica queues behind
    an intra-cluster balancer.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec,
                 pool_factory: PoolFactory | None = None) -> None:
        self._sim = sim
        self.name = spec.name
        self._factory = pool_factory or _default_factory
        self.pools: dict[str, ReplicaPool] = {}
        for service, count in spec.replicas.items():
            if count > 0:
                self.deploy(service, count)

    def deploy(self, service: str, replicas: int) -> ReplicaPool:
        """Add (or resize) a service in this cluster."""
        pool = self.pools.get(service)
        if pool is None:
            pool = self._factory(self._sim, service, self.name, replicas)
            self.pools[service] = pool
        else:
            pool.resize(replicas)
        return pool

    def degrade(self, service: str, factor: float) -> None:
        """Apply a service-time multiplier to one service's pool.

        ``factor > 1`` models slow replicas (noisy neighbour, failing disk);
        restore health with ``degrade(service, 1.0)``.
        """
        self.pool(service).degrade(factor)

    def crash_replicas(self, service: str, count: int) -> int:
        """Abruptly remove up to ``count`` replicas; returns how many died.

        A crash never takes out the last replica — model a full wipe with
        :meth:`repro.sim.runner.MeshSimulation.fail_service` instead. The
        return value is what a later recovery should add back.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        pool = self.pool(service)
        died = min(count, pool.replicas - 1)
        if died > 0:
            pool.resize(pool.replicas - died)
        return died

    def undeploy(self, service: str) -> None:
        """Remove a service (models decommissioning / failure, §2).

        In-flight jobs in the pool are abandoned by dropping the pool; the
        caller is responsible for quiescing traffic first.
        """
        self.pools.pop(service, None)

    def has(self, service: str) -> bool:
        return service in self.pools

    def pool(self, service: str) -> ReplicaPool:
        try:
            return self.pools[service]
        except KeyError:
            raise KeyError(
                f"service {service!r} is not deployed in cluster "
                f"{self.name!r}") from None

    def harvest_stats(self) -> dict[str, PoolStats]:
        """Collect and reset per-service stats for this cluster."""
        return {service: pool.harvest()
                for service, pool in self.pools.items()}

    def __repr__(self) -> str:
        return f"Cluster({self.name!r}, services={sorted(self.pools)})"
