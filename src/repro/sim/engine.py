"""Discrete-event simulation engine.

A minimal, fast, deterministic event loop: events are ``(time, sequence,
callback)`` triples kept in a binary heap. Ties in time break by insertion
order, so runs are exactly reproducible.

The engine knows nothing about clusters or requests; higher layers
(:mod:`repro.sim.service`, :mod:`repro.sim.network`, :mod:`repro.sim.runner`)
schedule callbacks on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..devtools.invariants import check_event_monotonic, invariants_enabled

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (negative delay, time travel, ...)."""


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped. This is the standard O(1)-cancel pattern for heap schedulers.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(1.5, seen.append, "a")
    >>> _ = sim.schedule(0.5, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._debug_invariants = invariants_enabled()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, handle)
        return handle

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until`` on exit so back-to-back runs compose).
            max_events: stop after executing this many events (safety valve
                for runaway feedback loops).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._heap)
                if self._debug_invariants:
                    check_event_monotonic(self._now, head.time,
                                          head.callback)
                self._now = head.time
                head.callback(*head.args)
                self._events_processed += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain all pending events (used to let in-flight requests finish)."""
        self.run(max_events=max_events)
        if self._heap and not all(h.cancelled for h in self._heap):
            raise SimulationError(
                f"simulation did not drain within {max_events} events")

    def __repr__(self) -> str:
        return (f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
                f"processed={self._events_processed})")
