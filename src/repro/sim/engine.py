"""Discrete-event simulation engine.

A minimal, fast, deterministic event loop. The common (non-cancellable)
case stores events as plain ``(time, seq, callback, args)`` tuples so heap
sift comparisons run as C tuple comparisons instead of Python ``__lt__``
calls; cancellable events carry an :class:`EventHandle` in a ``(time, seq,
None, handle)`` entry. Ties in time break by insertion order (``seq`` is
unique), so runs are exactly reproducible and comparisons never reach the
callback slot.

The engine knows nothing about clusters or requests; higher layers
(:mod:`repro.sim.service`, :mod:`repro.sim.network`, :mod:`repro.sim.runner`)
schedule callbacks on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..devtools.invariants import check_event_monotonic, invariants_enabled

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (negative delay, time travel, ...)."""


class EventHandle:
    """Handle to a cancellable scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped. This is the standard O(1)-cancel pattern for heap schedulers.
    Only :meth:`Simulator.schedule_cancellable` /
    :meth:`Simulator.schedule_at_cancellable` allocate handles; the common
    fire-and-forget path stays handle-free.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., None],
                 args: tuple[Any, ...]) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle(t={self.time:.6f}, {name}, {state})"


def _entry_cancelled(entry: tuple) -> bool:
    """True when a heap entry is a cancelled cancellable event."""
    return entry[2] is None and entry[3].cancelled


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(1.5, seen.append, "a")
    >>> sim.schedule(0.5, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: entries: (time, seq, callback, args) or (time, seq, None, handle)
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._debug_invariants = invariants_enabled()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        This is the fire-and-forget fast path: no handle is allocated and
        the event cannot be cancelled. Use :meth:`schedule_cancellable`
        when the caller may need to revoke the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq),
                                    callback, args))

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def schedule_periodic(self, interval: float,
                          callback: Callable[..., None], until: float,
                          *args: Any) -> int:
        """Pre-schedule ``callback(*args)`` every ``interval`` seconds.

        Ticks land at ``now + k*interval`` for ``k >= 1``, strictly before
        ``until``; the number scheduled is returned. Pre-scheduling (rather
        than having the callback reschedule itself) keeps
        :meth:`run_until_idle` able to drain — a self-perpetuating event
        would never let the heap empty.
        """
        if interval <= 0:
            raise SimulationError(
                f"periodic interval must be > 0, got {interval}")
        if until < self._now:
            raise SimulationError(
                f"cannot schedule until t={until} before now={self._now}")
        count = 0
        time = self._now + interval
        while time < until:
            heapq.heappush(self._heap, (time, next(self._seq),
                                        callback, args))
            count += 1
            time = self._now + interval * (count + 1)
        return count

    def schedule_cancellable(self, delay: float,
                             callback: Callable[..., None],
                             *args: Any) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at_cancellable(self._now + delay, callback,
                                            *args)

    def schedule_at_cancellable(self, time: float,
                                callback: Callable[..., None],
                                *args: Any) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._heap, (time, next(self._seq), None, handle))
        return handle

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run events in time order.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until`` on exit so back-to-back runs compose).
            max_events: stop after executing this many events (safety valve
                for runaway feedback loops).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        # locals shave attribute lookups off the per-event cost; the
        # invariant-check branch is hoisted into its own loop so the
        # common path pays nothing for it
        heap = self._heap
        pop = heapq.heappop
        try:
            if self._debug_invariants:
                executed = self._run_checked(until, max_events)
            else:
                while heap:
                    head = heap[0]
                    callback = head[2]
                    if callback is None:
                        handle = head[3]
                        if handle.cancelled:
                            pop(heap)
                            continue
                        callback = handle.callback
                        args = handle.args
                    else:
                        args = head[3]
                    time = head[0]
                    if until is not None and time > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(heap)
                    self._now = time
                    callback(*args)
                    executed += 1
        finally:
            self._running = False
            self._events_processed += executed
        if until is not None and self._now < until:
            self._now = until

    def _run_checked(self, until: float | None,
                     max_events: int | None) -> int:
        """The :meth:`run` loop with per-event monotonicity checks
        (``REPRO_DEBUG_INVARIANTS=1``); returns the executed count."""
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            head = heap[0]
            callback = head[2]
            if callback is None:
                handle = head[3]
                if handle.cancelled:
                    pop(heap)
                    continue
                callback = handle.callback
                args = handle.args
            else:
                args = head[3]
            time = head[0]
            if until is not None and time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            pop(heap)
            check_event_monotonic(self._now, time, callback)
            self._now = time
            callback(*args)
            executed += 1
        return executed

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain all pending events (used to let in-flight requests finish)."""
        self.run(max_events=max_events)
        if self._heap and not all(_entry_cancelled(e) for e in self._heap):
            raise SimulationError(
                f"simulation did not drain within {max_events} events")

    def __repr__(self) -> str:
        return (f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
                f"processed={self._events_processed})")
