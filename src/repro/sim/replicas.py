"""Per-replica service model: individual servers behind an intra-cluster LB.

:class:`~repro.sim.service.ReplicaPool` models a (service, cluster) as one
FIFO queue with c servers — the idealized central-queue abstraction. Real
meshes don't have a central queue: each replica has its own, and the
sidecar picks a replica per request with round-robin, least-outstanding
requests, or consistent hashing (§2). :class:`ReplicaSet` models exactly
that: one single-server FIFO queue per replica, a pluggable balancer
choosing among them.

The two models share an interface, so :class:`~repro.sim.runner
.MeshSimulation` can run on either (``service_model="pool" | "replicas"``).
Queueing-wise the central queue is the optimistic bound; per-replica
round-robin has the heaviest tail (it queues behind busy replicas while
others idle), with least-outstanding in between — a classic result the
intra-LB benchmark reproduces.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .engine import Simulator
from .service import PoolStats

__all__ = ["Replica", "ReplicaBalancer", "ReplicaSet"]


class ReplicaBalancer(Protocol):
    """Picks one replica for a request (mesh.loadbalancer implements it)."""

    def pick(self, endpoints, key: str | None = None): ...


class Replica:
    """A single-server FIFO queue: one service instance."""

    __slots__ = ("name", "_sim", "_queue", "_busy", "outstanding",
                 "draining", "_lifetime_busy", "_last_change",
                 "completions", "queue_wait_seconds")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self._sim = sim
        self._queue: list[tuple[float, Callable, Callable | None, float]] = []
        self._busy = False
        #: jobs queued or running here (what least-outstanding inspects)
        self.outstanding = 0
        #: a draining replica finishes its work but receives no new jobs
        self.draining = False
        self._lifetime_busy = 0.0
        self._last_change = sim.now
        self.completions = 0
        self.queue_wait_seconds = 0.0

    def submit(self, work_time: float, on_complete: Callable[[float], None],
               on_start: Callable[[float], None] | None = None) -> None:
        if self.draining:
            raise RuntimeError(f"replica {self.name} is draining")
        self.outstanding += 1
        if self._busy:
            self._queue.append((work_time, on_complete, on_start,
                                self._sim.now))
        else:
            self._start(work_time, on_complete, on_start, self._sim.now)

    def _accumulate(self) -> None:
        now = self._sim.now
        if self._busy:
            self._lifetime_busy += now - self._last_change
        self._last_change = now

    def _start(self, work_time: float, on_complete, on_start,
               enqueue_time: float) -> None:
        self._accumulate()
        self._busy = True
        now = self._sim.now
        self.queue_wait_seconds += now - enqueue_time
        if on_start is not None:
            on_start(now)
        self._sim.schedule(work_time, self._finish, on_complete)

    def _finish(self, on_complete) -> None:
        self._accumulate()
        self._busy = False
        self.outstanding -= 1
        self.completions += 1
        if self._queue:
            self._start(*self._queue.pop(0))
        on_complete(self._sim.now)

    @property
    def idle(self) -> bool:
        return not self._busy and not self._queue

    @property
    def lifetime_busy_seconds(self) -> float:
        extra = (self._sim.now - self._last_change) if self._busy else 0.0
        return self._lifetime_busy + extra


class ReplicaSet:
    """A set of independent replicas behind an intra-cluster balancer.

    Interface-compatible with :class:`~repro.sim.service.ReplicaPool`
    (``submit`` / ``harvest`` / ``resize`` / ``lifetime_busy_seconds``),
    so the runner, telemetry, and autoscaler work unchanged.
    """

    def __init__(self, sim: Simulator, service: str, cluster: str,
                 replicas: int, balancer: ReplicaBalancer) -> None:
        if replicas < 1:
            raise ValueError(f"{service}@{cluster}: replicas must be >= 1, "
                             f"got {replicas}")
        self._sim = sim
        self.service = service
        self.cluster = cluster
        self._balancer = balancer
        self._slowdown = 1.0
        self._replicas: list[Replica] = []
        self._next_index = 0
        for _ in range(replicas):
            self._add_replica()
        self._window_start = sim.now
        self._stats = PoolStats()
        self._harvested_busy = 0.0
        self._retired: list[Replica] = []

    def _add_replica(self) -> None:
        name = f"{self.service}@{self.cluster}#{self._next_index}"
        self._next_index += 1
        self._replicas.append(Replica(self._sim, name))

    # ---------------------------------------------------- pool interface

    @property
    def replicas(self) -> int:
        return len(self._replicas)

    @property
    def busy_replicas(self) -> int:
        return sum(1 for r in self._replicas if not r.idle)

    @property
    def queue_length(self) -> int:
        return sum(max(0, r.outstanding - 1) for r in self._replicas)

    @property
    def in_flight(self) -> int:
        return sum(r.outstanding for r in self._replicas)

    @property
    def slowdown(self) -> float:
        """Service-time multiplier (chaos slow-replica fault); default 1.0."""
        return self._slowdown

    def degrade(self, factor: float) -> None:
        """Set the service-time multiplier, applied to newly submitted jobs.

        Mirrors :meth:`repro.sim.service.ReplicaPool.degrade`; the default
        1.0 multiplies bit-exactly, so healthy runs are unchanged.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self._slowdown = factor

    def submit(self, work_time: float,
               on_complete: Callable[[float], None],
               on_start: Callable[[float], None] | None = None,
               key: str | None = None) -> None:
        """Route one job to a replica chosen by the balancer."""
        if work_time < 0:
            raise ValueError(f"work_time must be >= 0, got {work_time}")
        self._stats.arrivals += 1
        replica = self._balancer.pick(self._replicas, key=key)
        replica.submit(work_time * self._slowdown, on_complete, on_start)

    def resize(self, replicas: int) -> None:
        """Grow by adding replicas; shrink by draining the least loaded."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        while len(self._replicas) < replicas:
            self._add_replica()
        if len(self._replicas) > replicas:
            by_load = sorted(self._replicas, key=lambda r: r.outstanding)
            to_remove = by_load[:len(self._replicas) - replicas]
            for replica in to_remove:
                replica.draining = True
                self._replicas.remove(replica)
                self._retired.append(replica)

    def harvest(self) -> PoolStats:
        """Aggregate window stats across replicas (per-replica utilization)."""
        now = self._sim.now
        stats = self._stats
        stats.window_seconds = now - self._window_start
        lifetime = (sum(r.lifetime_busy_seconds for r in self._replicas)
                    + sum(r.lifetime_busy_seconds for r in self._retired))
        window_busy = lifetime - self._harvested_busy
        self._harvested_busy = lifetime
        stats.completions = sum(r.completions for r in self._replicas)
        stats.queue_wait_seconds = sum(r.queue_wait_seconds
                                       for r in self._replicas)
        for replica in self._replicas:
            replica.completions = 0
            replica.queue_wait_seconds = 0.0
        if self._replicas:
            stats.busy_seconds = window_busy / len(self._replicas)
        self._stats = PoolStats()
        self._window_start = now
        return stats

    @property
    def lifetime_busy_seconds(self) -> float:
        return (sum(r.lifetime_busy_seconds for r in self._replicas)
                + sum(r.lifetime_busy_seconds for r in self._retired))

    def __repr__(self) -> str:
        return (f"ReplicaSet({self.service}@{self.cluster}, "
                f"replicas={len(self._replicas)}, "
                f"in_flight={self.in_flight})")
