"""Time-varying workloads: demand timelines, diurnal curves, CSV traces.

The paper's evaluation drives constant RPS per scenario, but its §5
motivation (microbursts, load imbalance "for hours or longer") is about
demand that *moves*. This module provides:

* :class:`DemandTimeline` — piecewise-constant demand keyframes, the
  general representation every generator lowers to;
* :func:`diurnal_timeline` — the classic day/night sinusoid, phase-shifted
  per cluster (the usual source of long-lived cross-region imbalance);
* :func:`load_demand_csv` / :func:`save_demand_csv` — a plain-text trace
  format (``time,class,cluster,rps``) so recorded production demand can be
  replayed (we have no production traces; the CSV path plus the synthetic
  generators is the substitution, see DESIGN.md §4);
* :func:`install_timeline` — attach the whole thing to a running
  :class:`~repro.sim.runner.MeshSimulation`.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path

from .workload import DemandMatrix, RateProfile, RateSegment, TrafficSource

__all__ = ["DemandTimeline", "diurnal_timeline", "load_demand_csv",
           "save_demand_csv", "install_timeline"]


@dataclass
class DemandTimeline:
    """Piecewise-constant demand: keyframes of (start time, demand matrix).

    Each keyframe's demand holds until the next keyframe; the timeline ends
    at ``end`` (no arrivals after it).
    """

    keyframes: list[tuple[float, DemandMatrix]] = field(default_factory=list)
    end: float = 0.0

    def __post_init__(self) -> None:
        times = [t for t, _ in self.keyframes]
        if times != sorted(times):
            raise ValueError("keyframes must be time-ordered")
        if len(set(times)) != len(times):
            raise ValueError("duplicate keyframe times")
        if self.keyframes and self.end <= self.keyframes[-1][0]:
            raise ValueError("end must be after the last keyframe")

    @staticmethod
    def constant(demand: DemandMatrix, duration: float) -> "DemandTimeline":
        return DemandTimeline(keyframes=[(0.0, demand)], end=duration)

    def entries(self) -> set[tuple[str, str]]:
        """All (class, cluster) pairs with demand at any time."""
        return {(cls, cluster)
                for _, demand in self.keyframes
                for cls, cluster, _ in demand.items()}

    def demand_at(self, time: float) -> DemandMatrix:
        """The demand matrix in effect at ``time``."""
        current = DemandMatrix()
        for start, demand in self.keyframes:
            if start > time:
                break
            current = demand
        return current

    def profile_for(self, traffic_class: str, cluster: str) -> RateProfile:
        """The rate profile one (class, cluster) source should follow."""
        segments: list[RateSegment] = []
        for index, (start, demand) in enumerate(self.keyframes):
            stop = (self.keyframes[index + 1][0]
                    if index + 1 < len(self.keyframes) else self.end)
            rps = demand.rps(traffic_class, cluster)
            if rps > 0 and stop > start:
                segments.append(RateSegment(start, stop, rps))
        if not segments:
            # a silent source: one zero-rate segment keeps RateProfile valid
            segments = [RateSegment(0.0, self.end, 0.0)]
        return RateProfile(segments)

    def peak_total_rps(self) -> float:
        return max((demand.total_rps() for _, demand in self.keyframes),
                   default=0.0)


def diurnal_timeline(base: DemandMatrix, duration: float,
                     period: float = 86_400.0, amplitude: float = 0.5,
                     phase_by_cluster: dict[str, float] | None = None,
                     steps_per_period: int = 24) -> DemandTimeline:
    """A day/night sinusoid around ``base``: rate x (1 + A sin(...)).

    ``phase_by_cluster`` shifts each cluster's peak (radians) — opposite
    phases recreate the follow-the-sun imbalance that §2's survey
    respondents report lasting "hours or longer".
    """
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if steps_per_period < 2:
        raise ValueError("need at least 2 steps per period")
    phases = phase_by_cluster or {}
    step = period / steps_per_period
    keyframes = []
    time = 0.0
    while time < duration:
        demand = DemandMatrix()
        for cls, cluster, rps in base.items():
            phase = phases.get(cluster, 0.0)
            factor = 1.0 + amplitude * math.sin(
                2 * math.pi * time / period + phase)
            demand.set(cls, cluster, rps * factor)
        keyframes.append((time, demand))
        time += step
    return DemandTimeline(keyframes=keyframes, end=duration)


def save_demand_csv(timeline: DemandTimeline, path: str | Path) -> None:
    """Write a timeline as ``time,class,cluster,rps`` rows."""
    # save/load pair for demand traces: the CSV is the artifact (D08)
    with open(path, "w", newline="",   # lint: ignore[D08]
              encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "class", "cluster", "rps"])
        for start, demand in timeline.keyframes:
            for cls, cluster, rps in demand.items():
                writer.writerow([start, cls, cluster, rps])
        writer.writerow([timeline.end, "", "", ""])   # end marker


def load_demand_csv(path: str | Path) -> DemandTimeline:
    """Read a timeline written by :func:`save_demand_csv` (or by hand)."""
    frames: dict[float, DemandMatrix] = {}
    end = 0.0
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            time = float(row["time"])
            if not row["class"]:
                end = max(end, time)
                continue
            frames.setdefault(time, DemandMatrix()).set(
                row["class"], row["cluster"], float(row["rps"]))
            end = max(end, time)
    keyframes = sorted(frames.items())
    if not keyframes:
        raise ValueError(f"no demand rows in {path}")
    if end <= keyframes[-1][0]:
        raise ValueError(f"{path}: missing or invalid end marker")
    return DemandTimeline(keyframes=keyframes, end=end)


def install_timeline(simulation, timeline: DemandTimeline,
                     deterministic: bool = False) -> list[TrafficSource]:
    """Create and start one source per (class, cluster) in the timeline.

    ``simulation`` is a :class:`~repro.sim.runner.MeshSimulation`; after
    installing, drive it with ``simulation.sim.run(until=timeline.end)``
    plus a drain.
    """
    sources = []
    for cls, cluster in sorted(timeline.entries()):
        source = TrafficSource(
            sim=simulation.sim,
            profile=timeline.profile_for(cls, cluster),
            attributes=simulation.app.traffic_class(cls).attributes,
            ingress_cluster=cluster,
            accept=simulation.gateways[cluster].accept,
            rng=simulation.rngs.stream(f"arrivals/{cls}/{cluster}"),
            deterministic=deterministic,
            request_ids=simulation.request_ids,
        )
        source.start()
        sources.append(source)
    return sources
