"""The fluid substrate: bulk traffic as flow rates on a periodic tick.

:class:`FluidSubstrate` replaces per-request arrival events with a tick
loop: every ``tick`` seconds it reads the live demand timeline, routing
table, deployment, and pool state, solves the class call trees with
:class:`~repro.sim.fluid.flows.FlowModel`, and applies the solution as
*bulk* accounting against the exact same objects the event path mutates —
gateway conservation counters, :class:`~repro.mesh.telemetry.ProxyTelemetry`
epoch windows, :class:`~repro.mesh.telemetry.RunTelemetry` lifetime
counters, the egress ledger, and the pools. Downstream consumers (scrape
loop, SLO alerts, epoch control loop, decision log) are untouched: they
keep reading the interfaces they read today.

Conservation is exact, not approximate: every fractional rate is
integerized through a deterministic carry accumulator, every admitted bulk
request is settled (completion or failure) by a credit event scheduled at
``now + predicted mean latency``, so at quiesce each gateway satisfies
``admitted == completed + failed`` and the drain/conservation invariants
run unchanged.

Scheduling uses :meth:`~repro.sim.engine.Simulator.schedule_periodic`
(pre-scheduled ticks, so ``run_until_idle`` can drain) plus one final tick
at the timeline end to flush the partial interval.
"""

from __future__ import annotations

from ...devtools import invariants
from .flows import FlowModel, FluidTickSolution

__all__ = ["FluidSubstrate"]


class FluidSubstrate:
    """Bulk-traffic driver for one :class:`MeshSimulation` run."""

    def __init__(self, simulation, timeline, tick: float = 0.1,
                 bulk_fraction: float = 1.0) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be > 0, got {tick}")
        if not 0.0 <= bulk_fraction <= 1.0:
            raise ValueError(
                f"bulk_fraction must be in [0, 1], got {bulk_fraction}")
        self._mesh = simulation
        self._sim = simulation.sim
        self._timeline = timeline
        self.tick = tick
        #: share of demand carried as bulk flow (the rest runs through the
        #: event path as the hybrid mode's sampled slice)
        self.bulk_fraction = bulk_fraction
        self.model = FlowModel(simulation.app, simulation.deployment,
                               simulation.table, simulation.network.latency,
                               simulation.network.pricing)
        #: the most recent tick's solution, for observers and tests
        self.last_solution: FluidTickSolution | None = None
        self.ticks = 0
        self._last_tick = 0.0
        # deterministic carry accumulators: fractional-rate remainders that
        # roll into the next tick so integer counts conserve exactly
        self._carry_admit: dict[tuple[str, str], float] = {}
        self._carry_fail: dict[tuple[str, str], float] = {}
        self._carry_pool: dict[tuple[str, str], float] = {}
        self._carry_window: dict[tuple[str, str, str], float] = {}
        self._carry_remote: dict[tuple[str, str, str], float] = {}
        self._carry_bytes: dict[tuple[str, str], float] = {}
        self._debug_invariants = invariants.invariants_enabled()

    def install(self, duration: float) -> None:
        """Pre-schedule the tick train plus a final flush at ``duration``."""
        self._sim.schedule_periodic(self.tick, self._on_tick, duration)
        self._sim.schedule_at(duration, self._on_tick)

    # ------------------------------------------------------------ tick body

    def _on_tick(self) -> None:
        now = self._sim.now
        if self._debug_invariants:
            invariants.check_fluid_tick(self._last_tick, now)
        dt = now - self._last_tick
        if dt <= 0:
            return
        demand = self._timeline.demand_at(self._last_tick)
        pool_state: dict[tuple[str, str], tuple[int, float]] = {}
        for cluster_name in sorted(self._mesh.clusters):
            cluster = self._mesh.clusters[cluster_name]
            for service in sorted(cluster.pools):
                pool = cluster.pools[service]
                pool_state[(service, cluster_name)] = (pool.replicas,
                                                       pool.slowdown)
        solution = self.model.propagate(demand, pool_state)
        self.last_solution = solution
        if self._debug_invariants:
            for state in solution.per_class.values():
                invariants.check_fluid_rates(state.traffic_class,
                                             state.demand)
                for rates in state.exec_rates.values():
                    invariants.check_fluid_rates(state.traffic_class, rates)
        self._apply_pools(solution, pool_state, dt)
        self._apply_admissions(solution, dt)
        self._apply_windows(solution, pool_state, dt)
        self._apply_egress(solution, dt)
        self._last_tick = now
        self.ticks += 1

    def _apply_pools(self, solution: FluidTickSolution, pool_state,
                     dt: float) -> None:
        for key in sorted(pool_state):
            service, cluster_name = key
            pool = self._mesh.clusters[cluster_name].pools[service]
            arrival = solution.pool_arrival.get(key, 0.0)
            carry = (self._carry_pool.get(key, 0.0)
                     + arrival * self.bulk_fraction * dt)
            jobs = int(carry)
            self._carry_pool[key] = carry - jobs
            pool.fluid_update(solution.pool_offered.get(key, 0.0), arrival,
                              solution.pool_wait.get(key, 0.0), dt, jobs)

    def _apply_admissions(self, solution: FluidTickSolution,
                          dt: float) -> None:
        for cls_name in sorted(solution.per_class):
            state = solution.per_class[cls_name]
            failure_fraction = state.failure_fraction
            latency = state.mean_latency
            for j, cluster_name in enumerate(solution.clusters):
                rps = float(state.demand[j])
                if rps <= 0:
                    continue
                key = (cls_name, cluster_name)
                carry = (self._carry_admit.get(key, 0.0)
                         + rps * self.bulk_fraction * dt)
                count = int(carry)
                self._carry_admit[key] = carry - count
                if count == 0:
                    continue
                fail_carry = (self._carry_fail.get(key, 0.0)
                              + count * failure_fraction)
                failed = min(count, int(fail_carry))
                self._carry_fail[key] = fail_carry - failed
                gateway = self._mesh.gateways[cluster_name]
                gateway.admit_bulk(cls_name, count)
                # the credit event settles this tick's cohort after its
                # predicted latency, so open_requests drains to zero and
                # request conservation holds exactly at quiesce
                self._sim.schedule(latency, gateway.settle_bulk, cls_name,
                                   count - failed, failed)

    def _apply_windows(self, solution: FluidTickSolution, pool_state,
                       dt: float) -> None:
        for cls_name in sorted(solution.per_class):
            state = solution.per_class[cls_name]
            spec = self._mesh.app.traffic_class(cls_name)
            for service in sorted(state.exec_rates):
                rates = state.exec_rates[service]
                remote = state.remote_rates[service]
                service_time = spec.exec_time_of(service)
                for j, cluster_name in enumerate(solution.clusters):
                    rate = float(rates[j])
                    if rate <= 0:
                        continue
                    key = (cluster_name, service, cls_name)
                    carry = (self._carry_window.get(key, 0.0)
                             + rate * self.bulk_fraction * dt)
                    count = int(carry)
                    self._carry_window[key] = carry - count
                    remote_carry = (self._carry_remote.get(key, 0.0)
                                    + float(remote[j])
                                    * self.bulk_fraction * dt)
                    remote_count = int(remote_carry)
                    self._carry_remote[key] = remote_carry - remote_count
                    if count == 0 and remote_count == 0:
                        continue
                    pool_key = (service, cluster_name)
                    wait = solution.pool_wait.get(pool_key, 0.0)
                    entry = pool_state.get(pool_key)
                    slowdown = entry[1] if entry is not None else 1.0
                    effective_exec = service_time * slowdown
                    self._mesh.proxies[cluster_name].telemetry.observe_bulk(
                        service, cls_name, completions=count,
                        latency_sum=count * (wait + effective_exec),
                        exec_sum=count * effective_exec,
                        queue_wait_sum=count * wait,
                        remote_arrivals=remote_count)

    def _apply_egress(self, solution: FluidTickSolution, dt: float) -> None:
        network = self._mesh.network
        rates = solution.egress_bytes
        for i, src in enumerate(solution.clusters):
            for j, dst in enumerate(solution.clusters):
                if i == j:
                    continue
                rate = float(rates[i, j])
                if rate <= 0:
                    continue
                key = (src, dst)
                carry = (self._carry_bytes.get(key, 0.0)
                         + rate * self.bulk_fraction * dt)
                nbytes = int(carry)
                self._carry_bytes[key] = carry - nbytes
                if nbytes == 0:
                    continue
                network.ledger.record(
                    src, dst, nbytes,
                    nbytes * network.pricing.per_byte(src, dst))

    def __repr__(self) -> str:
        return (f"FluidSubstrate(tick={self.tick}, "
                f"bulk_fraction={self.bulk_fraction}, ticks={self.ticks})")
