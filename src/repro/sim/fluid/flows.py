"""Vectorized fluid-flow propagation over the live routing table.

The fluid substrate treats traffic as *rates*, not requests: per traffic
class, ingress demand is a vector over clusters, each routing decision is
an n x n column-stochastic split matrix built from the same precedence
chain :class:`~repro.mesh.proxy.SlateProxy` applies per request (installed
rule restricted to deployed clusters, else local, else nearest deployed),
and one tick of propagation is a handful of ``vector @ matrix`` products
down the class's call tree. The cost of a tick is therefore independent
of RPS — the property that lets a laptop drive millions of simulated
users per second (ROADMAP item 1).

Queueing behaviour comes from the same M/M/c relations the Global
Controller assumes (:mod:`repro.core.latency.mm1`): per (service, cluster)
pool the tick computes offered erlangs, the Erlang-C wait, and — beyond
``UTILIZATION_CAP`` — the excess work that a saturated pool sheds as
failures. WAN propagation and egress billing reuse
:class:`~repro.sim.network.LatencyMatrix` / ``EgressPricing`` verbatim, so
chaos latency overrides and partitions take effect on the next tick.

Approximations (documented, and bounded by the parity tests in
``tests/test_hybrid_fidelity.py``): downstream demand of requests that
later fail is still propagated (their upstream work really ran), and
failures are attributed to ingress clusters proportionally per class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ...core.latency.mm1 import erlang_c
from ...devtools import invariants

__all__ = ["UTILIZATION_CAP", "ClassFlowState", "FluidTickSolution",
           "FlowModel", "fast_erlang_c"]

#: fraction of pool capacity the fluid model lets bulk traffic occupy; the
#: remainder of an overloaded pool's offered work is shed as failures so
#: waits (and completion-credit delays) stay finite
UTILIZATION_CAP = 0.999

#: below this many servers the exact O(c) scalar recurrence is used; above
#: it the numpy series form (same quantity, vectorized) takes over
_VECTOR_ERLANG_THRESHOLD = 512


def fast_erlang_c(servers: int, offered: float) -> float:
    """Erlang-C that stays cheap for planet-scale pools.

    Identical contract to :func:`~repro.core.latency.mm1.erlang_c`; for
    pools past ``_VECTOR_ERLANG_THRESHOLD`` replicas the O(c) Python
    recurrence is replaced by a numpy cumulative-product evaluation of the
    inverse-Erlang-B series ``1/B = sum_j c!/((c-j)! a^j)``. Intermediate
    overflow to ``inf`` only happens when the pool is so underloaded that
    C is indistinguishable from 0, which is what is returned.
    """
    if servers <= _VECTOR_ERLANG_THRESHOLD:
        return erlang_c(servers, offered)
    if offered < 0:
        raise ValueError(f"offered load must be >= 0, got {offered}")
    if offered == 0:
        return 0.0
    if offered >= servers:
        return 1.0
    factors = (servers - np.arange(servers, dtype=np.float64)) / offered
    with np.errstate(over="ignore"):
        inverse_b = 1.0 + float(np.cumprod(factors).sum())
    if not math.isfinite(inverse_b):
        return 0.0
    blocking = 1.0 / inverse_b
    rho = offered / servers
    return blocking / (1.0 - rho + rho * blocking)


@dataclass
class ClassFlowState:
    """One traffic class's flows for one tick, as numpy rates."""

    traffic_class: str
    #: ingress demand per cluster (requests/second), cluster order of the
    #: owning :class:`FlowModel`
    demand: np.ndarray
    #: service -> execution rate per cluster (requests/second)
    exec_rates: dict[str, np.ndarray] = field(default_factory=dict)
    #: service -> arrivals from *other* clusters per cluster
    remote_rates: dict[str, np.ndarray] = field(default_factory=dict)
    #: sum over flows of rate x rtt (latency-seconds per second on the WAN)
    network_delay_rate: float = 0.0
    #: requests/second lost to partitions and saturated pools
    failed_rate: float = 0.0
    #: predicted mean end-to-end latency of completing requests, seconds
    mean_latency: float = 0.0

    @property
    def total_demand(self) -> float:
        return float(self.demand.sum())

    @property
    def failure_fraction(self) -> float:
        """Fraction of this class's demand that will fail, clamped to 1."""
        total = self.total_demand
        if total <= 0:
            return 0.0
        return min(1.0, self.failed_rate / total)


@dataclass
class FluidTickSolution:
    """Everything one tick of propagation derived from the routing state."""

    clusters: tuple[str, ...]
    per_class: dict[str, ClassFlowState]
    #: (service, cluster) -> arrival rate, requests/second (all classes)
    pool_arrival: dict[tuple[str, str], float]
    #: (service, cluster) -> offered work, erlangs (slowdown included)
    pool_offered: dict[tuple[str, str], float]
    #: (service, cluster) -> mean M/M/c queueing wait, seconds (finite)
    pool_wait: dict[tuple[str, str], float]
    #: bytes/second leaving row cluster toward column cluster
    egress_bytes: np.ndarray
    #: dollars/second of egress across all pairs
    egress_cost_rate: float


class FlowModel:
    """Builds routing matrices and propagates demand down call trees.

    Matrices are cached per (service, class) and invalidated whenever the
    routing table version, the latency revision (chaos overrides), or the
    deployment fingerprint (failovers, autoscaling) moves — the same
    signals that change per-request proxy decisions.
    """

    def __init__(self, app, deployment, table, latency, pricing) -> None:
        self._app = app
        self._deployment = deployment
        self._table = table
        self._latency = latency
        self._pricing = pricing
        self.clusters: tuple[str, ...] = tuple(sorted(deployment.cluster_names))
        self._index = {name: i for i, name in enumerate(self.clusters)}
        n = len(self.clusters)
        self._price = np.array(
            [[pricing.per_byte(a, b) for b in self.clusters]
             for a in self.clusters])
        self._rtt = np.zeros((n, n))
        self._matrices: dict[tuple[str, str], np.ndarray] = {}
        self._cache_signature: tuple | None = None
        self._debug_invariants = invariants.invariants_enabled()

    # ------------------------------------------------------- cache plumbing

    def _deployment_signature(self) -> tuple:
        return tuple(
            (spec.name, tuple(sorted(spec.replicas.items())))
            for spec in self._deployment.clusters)

    def _refresh_caches(self) -> None:
        signature = (self._table.version, self._latency.revision,
                     self._deployment_signature())
        if signature == self._cache_signature:
            return
        self._cache_signature = signature
        self._matrices.clear()
        self._rtt = np.array(
            [[self._latency.rtt(a, b) for b in self.clusters]
             for a in self.clusters])

    def routing_matrix(self, service: str, traffic_class: str) -> np.ndarray:
        """The n x n split matrix for one (service, class); row = source.

        Row ``i`` is the probability split a proxy at cluster ``i`` applies
        to a call of ``service`` — the exact fallback chain of
        :meth:`~repro.mesh.proxy.SlateProxy.choose_cluster`. Every row sums
        to 1 (checked under ``REPRO_DEBUG_INVARIANTS``).
        """
        self._refresh_caches()
        key = (service, traffic_class)
        matrix = self._matrices.get(key)
        if matrix is not None:
            return matrix
        deployed = self._deployment.clusters_with(service)
        if not deployed:
            raise ValueError(f"service {service!r} is not deployed anywhere")
        deployed_set = set(deployed)
        n = len(self.clusters)
        matrix = np.zeros((n, n))
        for i, src in enumerate(self.clusters):
            row: list[tuple[str, float]] | None = None
            weights = self._table.weights_for(service, traffic_class, src)
            if weights:
                usable = {c: w for c, w in weights.items()
                          if c in deployed_set}
                total = sum(usable.values())
                if total > 0:
                    row = [(c, w / total) for c, w in sorted(usable.items())]
            if row is None:
                if src in deployed_set:
                    row = [(src, 1.0)]
                else:
                    nearest = min(deployed, key=lambda c: (
                        self._latency.one_way(src, c), c))
                    row = [(nearest, 1.0)]
            for cluster, weight in row:
                matrix[i, self._index[cluster]] = weight
        if self._debug_invariants:
            invariants.check_routing_matrix(service, traffic_class, matrix)
        self._matrices[key] = matrix
        return matrix

    # ---------------------------------------------------------- propagation

    def propagate(self, demand,
                  pool_state: dict[tuple[str, str], tuple[int, float]],
                  ) -> FluidTickSolution:
        """One tick's steady-state flows for ``demand``.

        ``pool_state`` maps (service, cluster) to the live (replicas,
        slowdown) of that pool — read from the mesh each tick so chaos
        degradation and autoscaler resizes shape the very next solution.
        """
        self._refresh_caches()
        n = len(self.clusters)
        partition_mask = None
        if self._latency.has_partitions:
            partition_mask = np.array(
                [[1.0 if self._latency.is_partitioned(a, b) else 0.0
                  for b in self.clusters] for a in self.clusters])

        per_class: dict[str, ClassFlowState] = {}
        pool_arrival: dict[tuple[str, str], float] = {}
        pool_offered: dict[tuple[str, str], float] = {}
        egress_bytes = np.zeros((n, n))

        for cls_name in sorted(self._app.classes):
            spec = self._app.classes[cls_name]
            vector = np.array([demand.rps(cls_name, c)
                               for c in self.clusters])
            state = ClassFlowState(cls_name, vector)
            per_class[cls_name] = state
            if vector.sum() <= 0:
                continue

            def route(origin: np.ndarray, service: str,
                      request_bytes: int, response_bytes: int,
                      state: ClassFlowState = state,
                      cls_name: str = cls_name) -> np.ndarray:
                matrix = self.routing_matrix(service, cls_name)
                flows = origin[:, None] * matrix
                if partition_mask is not None:
                    lost = flows * partition_mask
                    lost_total = float(lost.sum())
                    if lost_total > 0:
                        state.failed_rate += lost_total
                        flows = flows - lost
                state.network_delay_rate += float((flows * self._rtt).sum())
                if request_bytes or response_bytes:
                    off_diagonal = flows.copy()
                    np.fill_diagonal(off_diagonal, 0.0)
                    egress_bytes[:] += (off_diagonal * request_bytes
                                        + off_diagonal.T * response_bytes)
                return flows

            def absorb(state: ClassFlowState, service: str,
                       flows: np.ndarray) -> None:
                arrivals = flows.sum(axis=0)
                remote = arrivals - np.diag(flows)
                previous = state.exec_rates.get(service)
                state.exec_rates[service] = (
                    arrivals if previous is None else previous + arrivals)
                previous = state.remote_rates.get(service)
                state.remote_rates[service] = (
                    remote if previous is None else previous + remote)

            absorb(state, spec.root_service,
                   route(vector, spec.root_service,
                         spec.ingress_request_bytes,
                         spec.ingress_response_bytes))
            children = spec.children_map()
            for service in spec.services():
                origin = state.exec_rates.get(service)
                if origin is None:
                    continue
                for edge in children.get(service, []):
                    calls = origin * edge.calls_per_request
                    if calls.sum() <= 0:
                        continue
                    absorb(state, edge.callee,
                           route(calls, edge.callee, edge.request_bytes,
                                 edge.response_bytes))

            for service, rates in state.exec_rates.items():
                service_time = spec.exec_time_of(service)
                for j, cluster in enumerate(self.clusters):
                    rate = float(rates[j])
                    if rate <= 0:
                        continue
                    key = (service, cluster)
                    pool_arrival[key] = pool_arrival.get(key, 0.0) + rate
                    if service_time > 0:
                        entry = pool_state.get(key)
                        slowdown = entry[1] if entry is not None else 1.0
                        pool_offered[key] = (pool_offered.get(key, 0.0)
                                             + rate * service_time * slowdown)

        pool_wait = self._solve_pools(per_class, pool_arrival, pool_offered,
                                      pool_state)
        self._finish_latencies(per_class, pool_wait, pool_state)
        egress_cost_rate = float((egress_bytes * self._price).sum())
        return FluidTickSolution(
            clusters=self.clusters, per_class=per_class,
            pool_arrival=pool_arrival, pool_offered=pool_offered,
            pool_wait=pool_wait, egress_bytes=egress_bytes,
            egress_cost_rate=egress_cost_rate)

    def _solve_pools(self, per_class, pool_arrival, pool_offered,
                     pool_state) -> dict[tuple[str, str], float]:
        """M/M/c waits per pool, shedding over-capacity work as failures."""
        pool_wait: dict[tuple[str, str], float] = {}
        for key in sorted(pool_offered):
            service, cluster = key
            entry = pool_state.get(key)
            if entry is None:
                raise ValueError(
                    f"flow routed to undeployed pool {service!r}@{cluster!r}")
            replicas, slowdown = entry
            offered = pool_offered[key]
            arrival = pool_arrival[key]
            cap = UTILIZATION_CAP * replicas
            effective = min(offered, cap)
            mean_service = offered / arrival if arrival > 0 else 0.0
            if effective > 0 and mean_service > 0:
                wait_probability = fast_erlang_c(replicas, effective)
                pool_wait[key] = (wait_probability * mean_service
                                  / (replicas - effective))
            else:
                pool_wait[key] = 0.0
            if offered <= cap:
                continue
            excess = offered - cap
            for cls_name in sorted(per_class):
                state = per_class[cls_name]
                rates = state.exec_rates.get(service)
                if rates is None:
                    continue
                service_time = self._app.classes[cls_name].exec_time_of(
                    service)
                if service_time <= 0:
                    continue
                rate = float(rates[self._index[cluster]])
                if rate <= 0:
                    continue
                share = rate * service_time * slowdown / offered
                state.failed_rate += excess * share / (service_time * slowdown)
        return pool_wait

    def _finish_latencies(self, per_class, pool_wait, pool_state) -> None:
        """Mean e2e latency per class: pool sojourns plus WAN round trips."""
        for state in per_class.values():
            total = state.total_demand
            if total <= 0:
                continue
            spec = self._app.classes[state.traffic_class]
            latency_rate = 0.0
            for service, rates in state.exec_rates.items():
                service_time = spec.exec_time_of(service)
                for j, cluster in enumerate(self.clusters):
                    rate = float(rates[j])
                    if rate <= 0:
                        continue
                    key = (service, cluster)
                    entry = pool_state.get(key)
                    slowdown = entry[1] if entry is not None else 1.0
                    latency_rate += rate * (pool_wait.get(key, 0.0)
                                            + service_time * slowdown)
            state.mean_latency = (
                (latency_rate + state.network_delay_rate) / total)
