"""A replica pool backed by fluid state instead of per-job events.

:class:`FluidPool` satisfies the same interface the runner, scrape loop,
autoscaler, and chaos layer use on :class:`~repro.sim.service.ReplicaPool`
(``submit``/``harvest``/``resize``/``degrade`` plus the occupancy
properties), but its occupancy is *set* each tick by the
:class:`~repro.sim.fluid.substrate.FluidSubstrate` from the M/M/c solution
rather than integrated per job. That keeps every observer — pool gauges in
the metrics registry, utilization-driven autoscaling, epoch pool stats —
reading fluid state through the interface it already reads pools today.

``submit`` serves the hybrid mode's sampled event-level slice: instead of
waiting in a real FIFO (there is none), the job draws an M/M/c-consistent
queueing wait from the pool's *current* offered load — zero with
probability ``1 - ErlangC(c, a)``, else exponential with the conditional
wait rate ``(c - a) / mean_service_time``. Draws come from a named
registry stream (``fluid/wait/{service}/{cluster}``) so hybrid runs are a
pure function of the seed.
"""

from __future__ import annotations

from typing import Callable

from ...devtools.invariants import check_pool_depths, invariants_enabled
from ..service import PoolStats
from .flows import UTILIZATION_CAP, fast_erlang_c

__all__ = ["FluidPool"]


class FluidPool:
    """One (service, cluster) pool whose occupancy is fluid state."""

    def __init__(self, sim, service: str, cluster: str, replicas: int,
                 rng=None) -> None:
        if replicas < 1:
            raise ValueError(f"{service}@{cluster}: replicas must be >= 1, "
                             f"got {replicas}")
        self._sim = sim
        self.service = service
        self.cluster = cluster
        self._replicas = replicas
        self._slowdown = 1.0
        self._rng = rng
        # fluid state, written by FluidSubstrate once per tick
        self._offered = 0.0        # erlangs currently offered
        self._arrival_rate = 0.0   # requests/second
        self._mean_wait = 0.0      # M/M/c mean queueing wait, seconds
        self._queue_estimate = 0.0
        self._last_update = sim.now
        self._lifetime_busy = 0.0
        self._window_start = sim.now
        self._stats = PoolStats()
        self._debug_invariants = invariants_enabled()

    # ----------------------------------------------------- pool interface

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def busy_replicas(self) -> int:
        return int(round(min(self._offered, float(self._replicas))))

    @property
    def queue_length(self) -> int:
        return int(round(self._queue_estimate))

    @property
    def in_flight(self) -> int:
        return self.busy_replicas + self.queue_length

    @property
    def slowdown(self) -> float:
        return self._slowdown

    def degrade(self, factor: float) -> None:
        """Chaos slow-replica fault: service times stretch next tick."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self._slowdown = factor

    def resize(self, replicas: int) -> None:
        """Autoscaler/chaos resize; takes effect on the next tick's solve."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._accumulate_busy()
        self._replicas = replicas

    @property
    def lifetime_busy_seconds(self) -> float:
        busy = min(self._offered, float(self._replicas))
        return self._lifetime_busy + busy * (self._sim.now - self._last_update)

    def submit(self, work_time: float,
               on_complete: Callable[[float], None],
               on_start: Callable[[float], None] | None = None) -> None:
        """Run one *sampled* job against the fluid queue state.

        The job does not occupy a replica — its share of occupancy is
        already inside the offered load the substrate computed from full
        demand — it only experiences a statistically consistent wait, then
        its compute time (slowdown applied as in the event pool).
        """
        if work_time < 0:
            raise ValueError(f"work_time must be >= 0, got {work_time}")
        self._stats.arrivals += 1
        wait = self._draw_wait()
        self._stats.queue_wait_seconds += wait

        def start() -> None:
            if on_start is not None:
                on_start(self._sim.now)
            self._sim.schedule(work_time * self._slowdown, finish)

        def finish() -> None:
            self._stats.completions += 1
            on_complete(self._sim.now)

        if wait > 0:
            self._sim.schedule(wait, start)
        else:
            start()

    def harvest(self) -> PoolStats:
        """Window stats since the last harvest (busy normalised per replica)."""
        self._accumulate_busy()
        now = self._sim.now
        stats = self._stats
        stats.window_seconds = now - self._window_start
        if self._replicas > 0:
            stats.busy_seconds /= self._replicas
        self._stats = PoolStats()
        self._window_start = now
        return stats

    # ------------------------------------------------------- fluid updates

    def fluid_update(self, offered: float, arrival_rate: float,
                     mean_wait: float, dt: float, jobs: int) -> None:
        """Substrate tick: integrate the elapsed interval, set new state.

        ``jobs`` is the integerized count of bulk requests that traversed
        this pool over the interval; they are accounted as arrivals *and*
        completions (bulk flow is steady within a tick), each charged the
        mean wait so harvested ``mean_queue_wait`` matches the model.
        """
        self._accumulate_busy()
        self._offered = offered
        self._arrival_rate = arrival_rate
        self._mean_wait = mean_wait
        # Little's law: mean queue length = arrival rate x mean wait
        self._queue_estimate = arrival_rate * mean_wait
        if jobs:
            self._stats.arrivals += jobs
            self._stats.completions += jobs
            self._stats.queue_wait_seconds += jobs * mean_wait
        if self._debug_invariants:
            check_pool_depths(self)

    def _accumulate_busy(self) -> None:
        now = self._sim.now
        busy = min(self._offered, float(self._replicas))
        elapsed_busy = busy * (now - self._last_update)
        self._stats.busy_seconds += elapsed_busy
        self._lifetime_busy += elapsed_busy
        self._last_update = now

    def _draw_wait(self) -> float:
        if self._rng is None:
            return 0.0
        servers = self._replicas
        offered = self._offered
        arrival = self._arrival_rate
        if offered <= 0 or arrival <= 0:
            return 0.0
        effective = min(offered, UTILIZATION_CAP * servers)
        wait_probability = fast_erlang_c(servers, effective)
        if float(self._rng.random()) >= wait_probability:
            return 0.0
        mean_service = offered / arrival
        rate = (servers - effective) / mean_service
        return float(self._rng.exponential(1.0 / rate))

    def __repr__(self) -> str:
        return (f"FluidPool({self.service}@{self.cluster}, "
                f"replicas={self._replicas}, offered={self._offered:.1f})")
