"""Hybrid-fidelity simulation: a fluid-flow substrate for bulk traffic.

Per-request discrete-event simulation tops out around 10^4 simulated
requests/second; the paper's setting ("heavy traffic from millions of
users") is two orders of magnitude beyond that. This package adds a
mean-field *fluid* mode in the spirit of WAN traffic engineering systems,
which reason about demand as aggregate flow rates rather than packets:

* :mod:`~repro.sim.fluid.flows` — per (service, class, cluster) bulk
  traffic as vectorized numpy rates; routing splits applied as matrix
  products, M/M/c queueing over pool capacity, WAN propagation and egress
  from the deployment's latency/pricing matrices;
* :mod:`~repro.sim.fluid.substrate` — the periodic tick loop that applies
  each solution to gateways, telemetry, pools, and the egress ledger with
  exact (carry-accumulator) conservation;
* :mod:`~repro.sim.fluid.pool` — a pool whose occupancy *is* the fluid
  state, and which serves the hybrid mode's sampled event-level requests
  with M/M/c-consistent wait draws from a named registry stream.

Select the mode with ``MeshSimulation(..., fidelity="fluid")`` (bulk only)
or ``fidelity="hybrid"`` (bulk plus a deterministic sampled slice through
the full event path for p50/p95/p99, tracing, and SLO alerting).

This package must stay importable by the core simulator: it may not
import ``repro.obs`` or ``repro.chaos`` eagerly (enforced as an A04
layering contract).
"""

from .flows import ClassFlowState, FlowModel, FluidTickSolution
from .pool import FluidPool
from .substrate import FluidSubstrate

__all__ = ["ClassFlowState", "FlowModel", "FluidPool", "FluidSubstrate",
           "FluidTickSolution"]
