"""Inter-cluster network: one-way delays, byte metering, egress billing.

The paper emulates WAN latency between Kubernetes clusters with ``tc netem``
using measured GCP inter-region VM-to-VM latencies (§4.2). Here the network
is a full mesh of cluster pairs, each with a one-way propagation delay; every
transfer also meters the bytes leaving the source cluster against a per-pair
egress price — the quantity behind the paper's 11.6x egress-cost result
(§4.3).

Bandwidth is not modelled (the paper's experiments are latency- and
cost-bound, not throughput-bound); a transfer's duration is its one-way
delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .engine import Simulator

__all__ = ["LatencyMatrix", "LatencyOverride", "EgressPricing",
           "EgressLedger", "WanNetwork", "GB"]

GB = 1_000_000_000  # bytes, decimal as billed by cloud providers


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical unordered cluster pair."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LatencyOverride:
    """Opaque token for one scoped delay override on a :class:`LatencyMatrix`.

    Returned by :meth:`LatencyMatrix.apply_override`; pass it back to
    :meth:`LatencyMatrix.remove_override` to restore the pair. Tokens nest:
    removing one override leaves any others on the same pair in effect.
    """

    pair: tuple[str, str]
    extra_delay: float
    multiplier: float
    partition: bool


class LatencyMatrix:
    """Symmetric one-way delay (seconds) between clusters.

    Intra-cluster delay defaults to 0.25 ms (two pod-to-pod hops inside a
    data center), configurable per deployment.

    Base delays are fixed at construction; the chaos layer layers *scoped*
    dynamic overrides (inflation, multipliers, partitions) on top via
    :meth:`apply_override` / :meth:`remove_override`, each of which restores
    exactly on removal. With no overrides active the lookup path is the
    original single-dict probe.
    """

    def __init__(self, clusters: Iterable[str],
                 one_way_delays: Mapping[tuple[str, str], float],
                 intra_cluster_delay: float = 0.00025) -> None:
        self.clusters = tuple(clusters)
        if len(set(self.clusters)) != len(self.clusters):
            raise ValueError(f"duplicate cluster names in {self.clusters}")
        if intra_cluster_delay < 0:
            raise ValueError("intra_cluster_delay must be >= 0")
        self.intra_cluster_delay = intra_cluster_delay
        known = set(self.clusters)
        self._delays: dict[tuple[str, str], float] = {}
        for (a, b), delay in one_way_delays.items():
            if a == b:
                raise ValueError(
                    f"self-pair entry {(a, b)}: intra-cluster delay is set "
                    f"via intra_cluster_delay, not the pair map")
            unknown = {a, b} - known
            if unknown:
                raise ValueError(
                    f"delay entry {(a, b)} names unknown cluster(s) "
                    f"{sorted(unknown)}; clusters are {sorted(known)}")
            if delay < 0:
                raise ValueError(f"negative delay for {(a, b)}: {delay}")
            self._delays[_pair(a, b)] = delay
        missing = [
            (a, b)
            for i, a in enumerate(self.clusters)
            for b in self.clusters[i + 1:]
            if _pair(a, b) not in self._delays
        ]
        if missing:
            raise ValueError(f"missing inter-cluster delays for {missing}")
        self._overrides: dict[tuple[str, str], list[LatencyOverride]] = {}
        self._partitioned: int = 0
        #: bumped on every override change, so consumers that cache derived
        #: views of the matrix (the fluid substrate's RTT/partition caches)
        #: can invalidate without re-probing every pair
        self.revision: int = 0

    def apply_override(self, a: str, b: str, *, extra_delay: float = 0.0,
                       multiplier: float = 1.0,
                       partition: bool = False) -> LatencyOverride:
        """Inflate (or sever) the ``a``<->``b`` link until the token is removed.

        The effective one-way delay applies every active override in the
        order installed: ``delay = delay * multiplier + extra_delay``. A
        ``partition`` override additionally makes the pair unreachable for
        :class:`WanNetwork` transfers (the delay figure is still reported,
        so distance-based orderings remain total).
        """
        if a == b:
            raise ValueError(f"cannot override the intra-cluster pair {a!r}")
        pair = _pair(a, b)
        if pair not in self._delays:
            raise KeyError(f"no delay configured for {a!r}<->{b!r}")
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if multiplier < 0:
            raise ValueError(f"multiplier must be >= 0, got {multiplier}")
        token = LatencyOverride(pair, extra_delay, multiplier, partition)
        self._overrides.setdefault(pair, []).append(token)
        if partition:
            self._partitioned += 1
        self.revision += 1
        return token

    def remove_override(self, token: LatencyOverride) -> None:
        """Restore the link scoped by ``token`` (other overrides persist)."""
        stack = self._overrides.get(token.pair)
        if not stack or token not in stack:
            raise ValueError(f"override not active: {token}")
        stack.remove(token)
        if not stack:
            del self._overrides[token.pair]
        if token.partition:
            self._partitioned -= 1
        self.revision += 1

    @property
    def has_partitions(self) -> bool:
        return self._partitioned > 0

    def is_partitioned(self, src: str, dst: str) -> bool:
        """True when an active partition override severs ``src``<->``dst``."""
        if self._partitioned == 0 or src == dst:
            return False
        return any(ov.partition
                   for ov in self._overrides.get(_pair(src, dst), ()))

    def one_way(self, src: str, dst: str) -> float:
        """One-way delay in seconds from ``src`` to ``dst``."""
        if src == dst:
            return self.intra_cluster_delay
        try:
            delay = self._delays[_pair(src, dst)]
        except KeyError:
            raise KeyError(f"no delay configured for {src!r}<->{dst!r}") from None
        if self._overrides:
            for ov in self._overrides.get(_pair(src, dst), ()):
                delay = delay * ov.multiplier + ov.extra_delay
        return delay

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time in seconds."""
        return 2.0 * self.one_way(src, dst)

    @staticmethod
    def from_ms(clusters: Iterable[str],
                one_way_ms: Mapping[tuple[str, str], float],
                intra_cluster_delay_ms: float = 0.25) -> "LatencyMatrix":
        """Build from millisecond figures (how the paper reports them)."""
        delays = {pair: ms / 1000.0 for pair, ms in one_way_ms.items()}
        return LatencyMatrix(clusters, delays,
                             intra_cluster_delay=intra_cluster_delay_ms / 1000.0)


class EgressPricing:
    """Dollar cost per byte leaving a cluster toward another cluster.

    Cloud providers bill inter-region egress per GB; intra-cluster traffic is
    free. A flat default price applies unless a pair-specific price is set.
    """

    def __init__(self, default_price_per_gb: float = 0.02,
                 pair_prices_per_gb: Mapping[tuple[str, str], float] | None = None) -> None:
        if default_price_per_gb < 0:
            raise ValueError("price must be >= 0")
        self._default = default_price_per_gb / GB
        self._pairs: dict[tuple[str, str], float] = {}
        for (a, b), price in (pair_prices_per_gb or {}).items():
            if price < 0:
                raise ValueError(f"negative price for {(a, b)}")
            self._pairs[_pair(a, b)] = price / GB

    def per_byte(self, src: str, dst: str) -> float:
        """Price in dollars for one byte from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        return self._pairs.get(_pair(src, dst), self._default)

    def per_gb(self, src: str, dst: str) -> float:
        return self.per_byte(src, dst) * GB


@dataclass
class EgressLedger:
    """Accumulated cross-cluster traffic and its cost."""

    bytes_by_pair: dict[tuple[str, str], int] = field(default_factory=dict)
    cost_by_src: dict[str, float] = field(default_factory=dict)
    total_bytes: int = 0
    total_cost: float = 0.0

    def record(self, src: str, dst: str, nbytes: int, cost: float) -> None:
        key = (src, dst)
        self.bytes_by_pair[key] = self.bytes_by_pair.get(key, 0) + nbytes
        self.cost_by_src[src] = self.cost_by_src.get(src, 0.0) + cost
        self.total_bytes += nbytes
        self.total_cost += cost

    def reset(self) -> None:
        self.bytes_by_pair.clear()
        self.cost_by_src.clear()
        self.total_bytes = 0
        self.total_cost = 0.0


class WanNetwork:
    """Delivers messages between clusters with delay and egress billing.

    The chaos layer can attach per-pair *jitter* (a uniform random delay
    addition drawn from a named registry stream) and relies on
    :class:`LatencyMatrix` partition overrides to model a severed link:
    transfers on a partitioned pair are silently dropped — never billed,
    never delivered — and counted in ``dropped_transfers`` (the caller's
    timeout/hedge machinery is what notices, exactly as with a blackholed
    TCP flow).
    """

    def __init__(self, sim: Simulator, latency: LatencyMatrix,
                 pricing: EgressPricing | None = None) -> None:
        self._sim = sim
        self.latency = latency
        self.pricing = pricing or EgressPricing()
        self.ledger = EgressLedger()
        self.dropped_transfers = 0
        self.dropped_bytes = 0
        self._jitter: dict[tuple[str, str], tuple[float, object]] = {}

    def set_jitter(self, a: str, b: str, amplitude: float, rng) -> None:
        """Add uniform ``[0, amplitude)`` seconds to ``a``<->``b`` transfers.

        ``rng`` must be a registry-owned generator (e.g. the chaos layer's
        ``chaos/wan-jitter`` stream) so jittered runs stay reproducible and
        un-jittered runs never touch the stream.
        """
        if a == b:
            raise ValueError(f"cannot jitter the intra-cluster pair {a!r}")
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        self._jitter[_pair(a, b)] = (amplitude, rng)

    def clear_jitter(self, a: str, b: str) -> None:
        self._jitter.pop(_pair(a, b), None)

    def transfer(self, src: str, dst: str, nbytes: int,
                 on_delivered: Callable[[], None]) -> None:
        """Send ``nbytes`` from ``src`` to ``dst``; fire callback on arrival.

        Cross-cluster transfers are billed to ``src`` (the cluster the data
        leaves). Intra-cluster transfers incur only the intra-cluster delay.
        Transfers across a partitioned pair are dropped: no billing, no
        delivery callback.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if src != dst:
            if (self.latency.has_partitions
                    and self.latency.is_partitioned(src, dst)):
                self.dropped_transfers += 1
                self.dropped_bytes += nbytes
                return
            if nbytes:
                cost = nbytes * self.pricing.per_byte(src, dst)
                self.ledger.record(src, dst, nbytes, cost)
        delay = self.latency.one_way(src, dst)
        if self._jitter and src != dst:
            jitter = self._jitter.get(_pair(src, dst))
            if jitter is not None:
                amplitude, rng = jitter
                delay += amplitude * float(rng.random())
        self._sim.schedule(delay, lambda: on_delivered())
