"""Application-layer caching at call edges (§5 "Caching & data locality").

The paper's final open challenge: "Application layer caching and data
locality are not explicitly considered in SLATE. ... Caching-aware request
routing framework can further optimize the performance."

This module makes the phenomenon concrete so routing policies can be judged
against it. A cache sits at a *caller* service in front of one call edge
(e.g. MP caches DB responses): each request carries a data key, and a
cache hit skips the downstream call entirely — no network, no child work.
Entries live for a TTL and optionally under a capacity (FIFO eviction).

The routing coupling emerges naturally: hit rate at a cluster grows with
the request rate that cluster sees for the class (more traffic keeps more
of the working set warm), so *spreading* a class across clusters splits its
working set and lowers the aggregate hit rate — the tension a
caching-aware router must manage. The caching benchmark quantifies it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheSpec", "EdgeCache", "CacheStats"]


@dataclass(frozen=True)
class CacheSpec:
    """Configuration of one edge cache (at the caller, per cluster)."""

    caller: str
    callee: str
    ttl: float
    #: max entries per cluster cache; None = unbounded (TTL-only)
    capacity: int | None = None

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {self.ttl}")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")


@dataclass
class CacheStats:
    """Hit/miss counters for one (edge, cluster) cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EdgeCache:
    """One cluster's cache for one call edge: TTL + optional capacity."""

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        #: key -> expiry time; insertion-ordered for FIFO eviction
        self._entries: OrderedDict[int, float] = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, key: int, now: float) -> bool:
        """True on hit; expired entries are evicted lazily."""
        expiry = self._entries.get(key)
        if expiry is not None and expiry > now:
            self.stats.hits += 1
            return True
        if expiry is not None:
            del self._entries[key]
        self.stats.misses += 1
        return False

    def insert(self, key: int, now: float) -> None:
        """Cache a fresh response for the key."""
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = now + self.spec.ttl
        if (self.spec.capacity is not None
                and len(self._entries) > self.spec.capacity):
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)
