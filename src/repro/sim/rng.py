"""Deterministic random-number streams for the simulator.

Every stochastic component (arrival processes, service-time draws, weighted
routing choices, ...) pulls its own named stream from a :class:`RngRegistry`.
Streams are derived from a single root seed and a stable hash of the stream
name, so

* a simulation is exactly reproducible given its seed, and
* adding a new component (a new stream name) does not perturb the draws seen
  by existing components.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["MAX_SEED", "RngRegistry", "stable_stream_key"]

#: seeds must fit in 64 bits so they round-trip through every export
#: format (JSON, CSV, C extensions) without silent truncation
MAX_SEED = 2**64 - 1


def stable_stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds. SHA-256 is stable across processes and
    platforms.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A registry of named, independently seeded random generators.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("arrivals/west")
    >>> b = rngs.stream("service/B")
    >>> a is rngs.stream("arrivals/west")   # streams are cached
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        if seed > MAX_SEED:
            raise ValueError(
                f"seed must fit in 64 bits (<= {MAX_SEED}), got {seed}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self._seed, stable_stream_key(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. for a replicated trial)."""
        return RngRegistry(seed=stable_stream_key(f"{self._seed}:{salt}") % (2**63))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
