"""End-to-end simulation runs.

:class:`MeshSimulation` assembles the whole testbed the paper builds on
Kubernetes: clusters with replica pools, a WAN, per-cluster SLATE-proxies
and ingress gateways, a shared routing table, and open-loop traffic sources.
It executes each request's per-class call tree:

1. the gateway classifies the request and picks the root service's cluster
   through the local proxy (this is the "where in the topology to cut"
   ingress hop);
2. each service occupies a replica for its compute time, then invokes its
   child edges (sequentially, or in parallel for fan-out nodes), each child
   routed by the proxy of the *parent's* cluster;
3. responses propagate back up, crossing the WAN (delay + egress billing)
   wherever the call did.

An optional epoch loop harvests per-cluster telemetry and hands it to a
routing policy — the Cluster Controller → Global Controller cycle of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..devtools import invariants
from ..mesh.gateway import Classifier, IngressGateway
from ..mesh.proxy import SlateProxy
from ..mesh.routing_table import RoutingTable
from ..mesh.telemetry import ClusterEpochReport, RunTelemetry
from .apps import AppSpec, TrafficClassSpec
from .cache import EdgeCache
from .cluster import Cluster
from .engine import Simulator
from .network import WanNetwork
from .request import Request, RequestIdAllocator, Span
from .rng import RngRegistry
from .topology import DeploymentSpec
from .workload import DemandMatrix, install_sources

__all__ = ["MeshSimulation", "EpochHook", "TimeoutPolicy"]


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-call deadline, retry, and hedging behaviour.

    A call (including its entire downstream subtree and the response
    transfer) that exceeds ``call_timeout`` is abandoned; the orphaned work
    keeps consuming resources downstream (as in real systems), but its
    response is dropped. Up to ``max_attempts - 1`` retries re-route the
    call — excluding the timed-out cluster when an alternative exists —
    and exhausting all attempts fails the whole request.

    ``hedge_delay`` enables tail-cutting hedged requests: if a call has not
    responded within the delay, a *duplicate* is issued to another cluster
    and the first response wins (the loser is dropped, its downstream work
    orphaned). Hedging is per call, once, and independent of the deadline.
    Beware: a hedge duplicates the call's *entire downstream subtree*, so
    use it on leaf-ish calls with a straggler-level delay — an aggressive
    delay on a deep call tree multiplies load and can go supercritical.
    """

    call_timeout: float
    max_attempts: int = 2
    exclude_failed_cluster: bool = True
    hedge_delay: float | None = None

    def __post_init__(self) -> None:
        if self.call_timeout <= 0:
            raise ValueError("call_timeout must be > 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.hedge_delay is not None:
            if self.hedge_delay <= 0:
                raise ValueError("hedge_delay must be > 0")
            if self.hedge_delay >= self.call_timeout:
                raise ValueError("hedge_delay must precede the deadline")


class EpochHook(Protocol):
    """Called at every epoch boundary with the clusters' telemetry reports."""

    def __call__(self, reports: list[ClusterEpochReport],
                 simulation: "MeshSimulation") -> None: ...


class MeshSimulation:
    """A multi-cluster microservice deployment under simulation."""

    SERVICE_MODELS = ("pool", "replicas")
    INTRA_LBS = ("round-robin", "least-outstanding")
    #: how a run realises demand: per-request events, bulk fluid flow, or
    #: fluid bulk plus a deterministic sampled event-level slice
    FIDELITIES = ("event", "fluid", "hybrid")

    def __init__(self, app: AppSpec, deployment: DeploymentSpec,
                 seed: int = 0, classifier: Classifier | None = None,
                 keep_spans: bool = False,
                 deterministic_exec: bool = False,
                 trace_sample_rate: float = 0.0,
                 service_model: str = "pool",
                 intra_lb: str = "least-outstanding",
                 timeouts: TimeoutPolicy | None = None,
                 observability=None,
                 latency_reservoir: int | None = None,
                 fidelity: str = "event",
                 sample_rate: float = 0.05,
                 fluid_tick: float = 0.1) -> None:
        self.app = app
        self.deployment = deployment
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        #: run-scoped id allocator: request ids restart at 1 per simulation
        #: so exports are a pure function of the seed
        self.request_ids = RequestIdAllocator()
        self.network = WanNetwork(self.sim, deployment.latency,
                                  deployment.pricing)
        self.table = RoutingTable()
        # the reservoir rng is a named stream, so enabling sampling cannot
        # perturb routing/exec/arrival draws of an otherwise-identical run
        self.telemetry = RunTelemetry(
            keep_spans=keep_spans,
            reservoir_size=latency_reservoir,
            rng=(self.rngs.stream("telemetry/reservoir")
                 if latency_reservoir is not None else None))
        # observability (repro.obs) accepts a config or a prebuilt runtime;
        # None/all-off coerces to None so the hot path pays one `is None`.
        # This deferred import is the one sanctioned sim->obs edge: the
        # runner is the attach point, and keeping the import inside
        # __init__ keeps every sim module free of obs imports at load
        # time (no eager edge, no cycle — only this call-time one).
        from ..obs.config import Observability   # lint: ignore[A04]
        self.observability = Observability.coerce(observability)
        self._obs_tracer = (self.observability.tracer
                            if self.observability is not None else None)
        if self.observability is not None:
            self.observability.attach(self)
        self._deterministic_exec = deterministic_exec
        self._timeouts = timeouts
        #: calls lost to a service that failed while they were in flight
        self.dropped_calls = 0
        #: call attempts abandoned after exceeding the deadline
        self.timed_out_calls = 0
        #: duplicate calls launched by the hedging policy
        self.hedged_calls = 0
        #: per-(caller, callee, cluster) edge caches, created on demand
        self._caches: dict[tuple[str, str, str], EdgeCache] = {}

        if service_model not in self.SERVICE_MODELS:
            raise ValueError(f"unknown service_model {service_model!r}; "
                             f"choose from {self.SERVICE_MODELS}")
        if intra_lb not in self.INTRA_LBS:
            raise ValueError(f"unknown intra_lb {intra_lb!r}; "
                             f"choose from {self.INTRA_LBS}")
        if fidelity not in self.FIDELITIES:
            raise ValueError(f"unknown fidelity {fidelity!r}; "
                             f"choose from {self.FIDELITIES}")
        if fidelity != "event" and service_model != "pool":
            raise ValueError(
                "fluid/hybrid fidelity models pools as M/M/c aggregates; "
                "service_model='replicas' only makes sense in event mode")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {sample_rate}")
        if fluid_tick <= 0:
            raise ValueError(f"fluid_tick must be > 0, got {fluid_tick}")
        self.fidelity = fidelity
        self._sample_rate = sample_rate
        self._fluid_tick = fluid_tick
        #: the bulk-flow driver, set once a fluid/hybrid run starts
        self.fluid = None
        pool_factory = None
        if fidelity != "event":
            from .fluid.pool import FluidPool
            rng_for = self.rngs.stream

            def pool_factory(sim, service, cluster, replicas):
                # named wait streams: enabling the sampled slice cannot
                # perturb any other stream of an otherwise-identical run
                return FluidPool(
                    sim, service, cluster, replicas,
                    rng=rng_for(f"fluid/wait/{service}/{cluster}"))
        elif service_model == "replicas":
            from ..mesh.loadbalancer import (LeastOutstandingBalancer,
                                             RoundRobinBalancer)
            from .replicas import ReplicaSet

            def pool_factory(sim, service, cluster, replicas):
                balancer = (RoundRobinBalancer()
                            if intra_lb == "round-robin"
                            else LeastOutstandingBalancer())
                return ReplicaSet(sim, service, cluster, replicas, balancer)

        self.clusters: dict[str, Cluster] = {}
        self.proxies: dict[str, SlateProxy] = {}
        self.gateways: dict[str, IngressGateway] = {}
        for spec in deployment.clusters:
            cluster = Cluster(self.sim, spec, pool_factory=pool_factory)
            proxy = SlateProxy(spec.name, self.table, deployment,
                               deployment.latency,
                               self.rngs.stream(f"route/{spec.name}"),
                               trace_sample_rate=trace_sample_rate)
            gateway = IngressGateway(spec.name, proxy.telemetry,
                                     self.telemetry, classifier)
            gateway.bind(self._dispatch)
            self.clusters[spec.name] = cluster
            self.proxies[spec.name] = proxy
            self.gateways[spec.name] = gateway

    # ----------------------------------------------------------- ingestion

    def accept(self, request: Request) -> None:
        """Admit a request at its ingress cluster's gateway."""
        self.gateways[request.ingress_cluster].accept(request)

    def set_classifier(self, classifier: Classifier) -> None:
        for gateway in self.gateways.values():
            gateway.set_classifier(classifier)

    # ----------------------------------------------------- fault injection

    def fail_service(self, cluster: str, service: str) -> None:
        """Kill a service in one cluster (§2: "temporary service failure").

        The replica pool is removed — jobs queued or running there are lost
        and their requests never complete (they show up as incomplete in
        telemetry, like real timeouts). The deployment view is updated, so
        proxies immediately stop selecting the failed location: installed
        rules pointing at it are filtered and the locality-failover default
        takes over until the controller re-plans.
        """
        if service not in self.clusters[cluster].pools:
            raise KeyError(
                f"service {service!r} is not running in {cluster!r}")
        self.clusters[cluster].undeploy(service)
        self.deployment.cluster(cluster).replicas[service] = 0

    def restore_service(self, cluster: str, service: str,
                        replicas: int) -> None:
        """Bring a service (back) up in one cluster."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.deployment.cluster(cluster).replicas[service] = replicas
        self.clusters[cluster].deploy(service, replicas)

    # ------------------------------------------------------------- running

    def run(self, demand: DemandMatrix, duration: float,
            epoch: float | None = None,
            on_epoch: EpochHook | None = None,
            deterministic_arrivals: bool = False) -> None:
        """Drive ``demand`` for ``duration`` seconds, then drain.

        With ``epoch`` set, telemetry is harvested every ``epoch`` seconds
        and passed to ``on_epoch`` — the control loop. The final partial
        epoch is harvested after the drain.

        In fluid/hybrid fidelity the constant demand is lowered to a
        one-keyframe timeline and driven by the fluid substrate; the
        event-fidelity path below is untouched byte for byte.
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self._check_demand(demand)
        if self.fidelity != "event":
            from .traces import DemandTimeline
            self.run_timeline(
                DemandTimeline.constant(demand, duration), epoch=epoch,
                on_epoch=on_epoch,
                deterministic_arrivals=deterministic_arrivals)
            return
        install_sources(
            self.sim, demand, duration,
            attributes_for=lambda cls: self.app.traffic_class(cls).attributes,
            accept_for=lambda cluster: self.gateways[cluster].accept,
            rng_for=self.rngs.stream,
            deterministic=deterministic_arrivals,
            request_ids=self.request_ids,
        )
        if epoch is not None:
            if epoch <= 0:
                raise ValueError(f"epoch must be > 0, got {epoch}")
            boundary = epoch
            while boundary < duration:
                self.sim.schedule_at(boundary, self._epoch_tick, on_epoch)
                boundary += epoch
        # scrape ticks are installed after the epoch loop so a tied
        # timestamp orders epoch-first: a scrape at an epoch boundary then
        # sees the freshly planned routing table
        if self.observability is not None:
            self.observability.install_scrape(duration)
        if invariants.invariants_enabled():
            invariants.check_routing_table(self.table)
        self.sim.run(until=duration)
        self.sim.run_until_idle()
        if epoch is not None:
            self._epoch_tick(on_epoch)
        if self.observability is not None:
            self.observability.finalize_scrape()
        self._verify_invariants()

    def run_timeline(self, timeline, epoch: float | None = None,
                     on_epoch: EpochHook | None = None,
                     deterministic_arrivals: bool = False) -> None:
        """Drive a :class:`~repro.sim.traces.DemandTimeline`, then drain.

        The time-varying counterpart of :meth:`run`: one source per
        (class, cluster) entry follows its piecewise rate profile.
        """
        duration = timeline.end
        if duration <= 0:
            raise ValueError("timeline must end after t=0")
        self._install_workload(timeline, deterministic_arrivals)
        if epoch is not None:
            if epoch <= 0:
                raise ValueError(f"epoch must be > 0, got {epoch}")
            boundary = epoch
            while boundary < duration:
                self.sim.schedule_at(boundary, self._epoch_tick, on_epoch)
                boundary += epoch
        if self.observability is not None:
            self.observability.install_scrape(duration)
        if invariants.invariants_enabled():
            invariants.check_routing_table(self.table)
        self.sim.run(until=duration)
        self.sim.run_until_idle()
        if epoch is not None:
            self._epoch_tick(on_epoch)
        if self.observability is not None:
            self.observability.finalize_scrape()
        self._verify_invariants()

    def _install_workload(self, timeline, deterministic: bool) -> None:
        """Attach demand per the fidelity: sources, fluid bulk, or both.

        Event mode installs one Poisson source per (class, cluster), as
        ever. Fluid mode hands the whole timeline to the
        :class:`~repro.sim.fluid.substrate.FluidSubstrate` tick loop.
        Hybrid splits the demand: ``1 - sample_rate`` runs as bulk flow
        while a ``sample_rate``-scaled copy of the timeline drives regular
        event-level sources — the same named arrival streams, so the
        sampled slice is a deterministic, registry-seeded subpopulation
        that exercises proxies, WAN, tracing, and SLO alerts end to end.
        """
        from .traces import install_timeline
        if self.fidelity == "event":
            install_timeline(self, timeline, deterministic=deterministic)
            return
        from .fluid.substrate import FluidSubstrate
        from .traces import DemandTimeline
        bulk = (1.0 if self.fidelity == "fluid"
                else 1.0 - self._sample_rate)
        self.fluid = FluidSubstrate(self, timeline, tick=self._fluid_tick,
                                    bulk_fraction=bulk)
        self.fluid.install(timeline.end)
        if self.fidelity == "hybrid":
            sampled = DemandTimeline(
                keyframes=[(start, demand.scaled(self._sample_rate))
                           for start, demand in timeline.keyframes],
                end=timeline.end)
            install_timeline(self, sampled, deterministic=deterministic)

    def harvest_reports(self) -> list[ClusterEpochReport]:
        """Collect and reset every cluster's epoch telemetry."""
        reports = []
        for name, cluster in self.clusters.items():
            proxy = self.proxies[name]
            reports.append(proxy.telemetry.harvest(
                self.sim.now, cluster.harvest_stats()))
        return reports

    def _epoch_tick(self, on_epoch: EpochHook | None) -> None:
        reports = self.harvest_reports()
        if on_epoch is not None:
            on_epoch(reports, self)
            if invariants.invariants_enabled():
                # the hook may have pushed new rules; re-verify the table
                invariants.check_routing_table(self.table)

    def _verify_invariants(self) -> None:
        """Debug-mode end-of-run checks (``REPRO_DEBUG_INVARIANTS=1``)."""
        if not invariants.invariants_enabled():
            return
        invariants.check_routing_table(self.table)
        invariants.check_request_conservation(self.gateways)
        for cluster in self.clusters.values():
            for pool in cluster.pools.values():
                invariants.check_pool_depths(pool)

    def _check_demand(self, demand: DemandMatrix) -> None:
        for cls, cluster, _ in demand.items():
            if cls not in self.app.classes:
                raise ValueError(
                    f"demand references unknown traffic class {cls!r}")
            if cluster not in self.clusters:
                raise ValueError(
                    f"demand references unknown cluster {cluster!r}")

    # ------------------------------------------------------ call execution

    def edge_cache(self, caller: str, callee: str,
                   cluster: str) -> EdgeCache:
        """The (lazily created) cache for one edge at one cluster."""
        spec = self.app.cache_for(caller, callee)
        if spec is None:
            raise KeyError(f"no cache configured on {caller!r}->{callee!r}")
        key = (caller, callee, cluster)
        cache = self._caches.get(key)
        if cache is None:
            cache = self._caches[key] = EdgeCache(spec)
        return cache

    def _dispatch(self, request: Request) -> None:
        """Start the root call for a freshly classified request."""
        spec = self.app.traffic_class(request.traffic_class)
        if spec.key_space > 0:
            rng = self.rngs.stream(f"keys/{request.traffic_class}")
            request.data_key = int(rng.integers(spec.key_space))
        ingress = request.ingress_cluster

        def finish(ok: bool) -> None:
            if ok:
                self.gateways[ingress].complete(request, self.sim.now)
            else:
                self.gateways[ingress].fail(request, self.sim.now)
            if self._obs_tracer is not None:
                self._obs_tracer.record_request(request)

        self._issue_call(request, spec,
                         caller_service=None, caller_cluster=ingress,
                         service=spec.root_service,
                         request_bytes=spec.ingress_request_bytes,
                         response_bytes=spec.ingress_response_bytes,
                         on_outcome=finish)

    def _issue_call(self, request: Request, spec: TrafficClassSpec,
                    caller_service: str | None, caller_cluster: str,
                    service: str, request_bytes: int, response_bytes: int,
                    on_outcome: Callable[[bool], None],
                    attempt: int = 1,
                    exclude: str | None = None) -> None:
        """One routed attempt of a call, with deadline and retry handling."""
        affinity_key = (request.data_key if spec.sticky_affinity else None)
        dst = self.proxies[caller_cluster].choose_cluster(
            service, request.traffic_class, exclude=exclude,
            affinity_key=affinity_key)
        policy = self._timeouts
        settled = False
        deadline = None
        hedge = None
        branches = 1   # grows to 2 when a hedge launches

        def settle(ok: bool) -> None:
            nonlocal settled, branches
            if settled:
                return   # orphaned/losing response: dropped
            if not ok:
                # one branch erred; if a sibling is still in flight, let it
                # decide the call
                branches -= 1
                if branches > 0:
                    return
            settled = True
            if deadline is not None:
                deadline.cancel()
            if hedge is not None:
                hedge.cancel()
            on_outcome(ok)

        def timed_out() -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            self.timed_out_calls += 1
            if policy is not None and attempt < policy.max_attempts:
                retry_exclude = (dst if policy.exclude_failed_cluster
                                 else None)
                self._issue_call(request, spec, caller_service,
                                 caller_cluster, service, request_bytes,
                                 response_bytes, on_outcome,
                                 attempt=attempt + 1, exclude=retry_exclude)
            else:
                on_outcome(False)

        def launch_hedge() -> None:
            nonlocal branches
            if settled:
                return
            hedge_dst = self.proxies[caller_cluster].choose_cluster(
                service, request.traffic_class, exclude=dst,
                affinity_key=affinity_key)
            if hedge_dst == dst:
                return   # nowhere else to hedge to
            self.hedged_calls += 1
            branches += 1
            self._call(request, spec, caller_service, caller_cluster,
                       service, hedge_dst, request_bytes, response_bytes,
                       on_outcome=settle)

        if policy is not None:
            deadline = self.sim.schedule_cancellable(policy.call_timeout,
                                                     timed_out)
            if policy.hedge_delay is not None:
                hedge = self.sim.schedule_cancellable(policy.hedge_delay,
                                                      launch_hedge)
        self._call(request, spec, caller_service, caller_cluster, service,
                   dst, request_bytes, response_bytes, on_outcome=settle)

    def _call(self, request: Request, spec: TrafficClassSpec,
              caller_service: str | None, caller_cluster: str,
              service: str, dst_cluster: str,
              request_bytes: int, response_bytes: int,
              on_outcome: Callable[[bool], None]) -> None:
        """Execute one call: WAN out, queue + compute, children, WAN back."""

        def deliver() -> None:
            span = Span(
                request_id=request.request_id,
                traffic_class=request.traffic_class,
                service=service, cluster=dst_cluster,
                caller_service=caller_service, caller_cluster=caller_cluster,
                enqueue_time=self.sim.now,
                request_bytes=request_bytes, response_bytes=response_bytes,
            )
            work = self._draw_exec_time(spec, service)
            span.exec_time = work
            cluster = self.clusters[dst_cluster]
            if not cluster.has(service):
                # destination died while the call was on the wire: the call
                # is lost; with a TimeoutPolicy the deadline fires and the
                # proxy retries elsewhere, otherwise it hangs like a real
                # timeout-less mesh would
                self.dropped_calls += 1
                return
            pool = cluster.pool(service)

            def started(now: float) -> None:
                span.start_time = now

            def computed(now: float) -> None:
                self._run_children(request, spec, service, dst_cluster,
                                   lambda ok: respond(span, ok))

            pool.submit(work, on_complete=computed, on_start=started)

        def respond(span: Span, ok: bool) -> None:
            span.end_time = self.sim.now
            self.proxies[dst_cluster].telemetry.record_span(span)
            self.telemetry.record_span(span)
            if self._obs_tracer is not None:
                self._obs_tracer.record_span(span)
            if not ok:
                # a child subtree failed: surface the error immediately
                # (error responses are small; no payload transfer)
                on_outcome(False)
                return
            self.network.transfer(dst_cluster, caller_cluster,
                                  response_bytes, lambda: on_outcome(True))

        self.network.transfer(caller_cluster, dst_cluster, request_bytes,
                              deliver)

    def _run_children(self, request: Request, spec: TrafficClassSpec,
                      service: str, cluster: str,
                      done: Callable[[bool], None]) -> None:
        """Invoke all child edges of ``service``, then call ``done(ok)``."""
        calls: list[tuple[str, int, int]] = []
        rng = self.rngs.stream(f"fanout/{service}")
        for edge in spec.children_map().get(service, []):
            count = self._realise_count(edge.calls_per_request, rng)
            calls.extend((edge.callee, edge.request_bytes,
                          edge.response_bytes) for _ in range(count))
        if not calls:
            done(True)
            return

        def issue(callee: str, request_bytes: int, response_bytes: int,
                  on_outcome: Callable[[bool], None]) -> None:
            cache = None
            if (request.data_key is not None
                    and self.app.cache_for(service, callee) is not None):
                cache = self.edge_cache(service, callee, cluster)
                if cache.lookup(request.data_key, self.sim.now):
                    on_outcome(True)   # cache hit: downstream call skipped
                    return

            def outcome(ok: bool) -> None:
                if ok and cache is not None:
                    cache.insert(request.data_key, self.sim.now)
                on_outcome(ok)

            self._issue_call(request, spec,
                             caller_service=service, caller_cluster=cluster,
                             service=callee,
                             request_bytes=request_bytes,
                             response_bytes=response_bytes,
                             on_outcome=outcome)

        if service in spec.parallel_fanout:
            remaining = len(calls)
            all_ok = True

            def one_done(ok: bool) -> None:
                nonlocal remaining, all_ok
                remaining -= 1
                all_ok = all_ok and ok
                if remaining == 0:
                    done(all_ok)

            for callee, req_b, resp_b in calls:
                issue(callee, req_b, resp_b, one_done)
        else:
            def run_next(index: int, ok: bool) -> None:
                if not ok:
                    done(False)   # abort remaining siblings on failure
                    return
                if index == len(calls):
                    done(True)
                    return
                callee, req_b, resp_b = calls[index]
                issue(callee, req_b, resp_b,
                      lambda child_ok: run_next(index + 1, child_ok))

            run_next(0, True)

    def _realise_count(self, expected: float, rng) -> int:
        """Turn a fractional calls-per-request into an integer draw."""
        base = int(expected)
        frac = expected - base
        if frac > 0 and rng.random() < frac:
            base += 1
        return base

    def _draw_exec_time(self, spec: TrafficClassSpec, service: str) -> float:
        mean = spec.exec_time_of(service)
        if mean <= 0:
            return 0.0
        if self._deterministic_exec:
            return mean
        return float(self.rngs.stream(f"exec/{service}").exponential(mean))

    def __repr__(self) -> str:
        return (f"MeshSimulation(app={self.app.name!r}, "
                f"clusters={sorted(self.clusters)})")
