"""Workload generation: open-loop request arrivals per class and cluster.

Demands are expressed as a :class:`DemandMatrix` — requests/second of each
traffic class arriving at each cluster's ingress gateway, the ``d[k,i]`` of
the optimizer. Sources are *open loop* (arrivals do not wait for earlier
responses), matching the paper's RPS-controlled load generation.

Time-varying load (ramps, microbursts — §5 "fast reaction") is supported via
piecewise-constant rate profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .engine import Simulator
from .request import Request, RequestAttributes, new_request_id

__all__ = ["DemandMatrix", "RateSegment", "RateProfile", "TrafficSource",
           "install_sources"]


class DemandMatrix:
    """Requests/second per (traffic class, ingress cluster)."""

    def __init__(self, entries: dict[tuple[str, str], float] | None = None) -> None:
        self._entries: dict[tuple[str, str], float] = {}
        for (cls, cluster), rps in (entries or {}).items():
            self.set(cls, cluster, rps)

    def set(self, traffic_class: str, cluster: str, rps: float) -> None:
        if rps < 0:
            raise ValueError(f"demand must be >= 0, got {rps}")
        if rps == 0:
            self._entries.pop((traffic_class, cluster), None)
        else:
            self._entries[(traffic_class, cluster)] = rps

    def rps(self, traffic_class: str, cluster: str) -> float:
        return self._entries.get((traffic_class, cluster), 0.0)

    def items(self) -> list[tuple[str, str, float]]:
        """(class, cluster, rps) triples, deterministic order."""
        return sorted((cls, cluster, rps)
                      for (cls, cluster), rps in self._entries.items())

    def total_rps(self) -> float:
        return sum(self._entries.values())

    def cluster_rps(self, cluster: str) -> float:
        return sum(rps for (_, c), rps in self._entries.items()
                   if c == cluster)

    def classes(self) -> list[str]:
        return sorted({cls for (cls, _) in self._entries})

    def clusters(self) -> list[str]:
        return sorted({cluster for (_, cluster) in self._entries})

    def scaled(self, factor: float) -> "DemandMatrix":
        if factor < 0:
            raise ValueError("scale factor must be >= 0")
        return DemandMatrix({key: rps * factor
                             for key, rps in self._entries.items()})

    def __repr__(self) -> str:
        return f"DemandMatrix({self._entries!r})"


@dataclass(frozen=True)
class RateSegment:
    """Constant arrival rate over ``[start, end)`` seconds."""

    start: float
    end: float
    rps: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty segment [{self.start}, {self.end})")
        if self.rps < 0:
            raise ValueError(f"negative rate {self.rps}")


class RateProfile:
    """A piecewise-constant arrival-rate schedule."""

    def __init__(self, segments: list[RateSegment]) -> None:
        if not segments:
            raise ValueError("profile needs at least one segment")
        ordered = sorted(segments, key=lambda s: s.start)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end:
                raise ValueError(
                    f"overlapping segments: [{prev.start},{prev.end}) and "
                    f"[{cur.start},{cur.end})")
        self.segments = ordered

    @staticmethod
    def constant(rps: float, duration: float) -> "RateProfile":
        return RateProfile([RateSegment(0.0, duration, rps)])

    @property
    def end(self) -> float:
        return self.segments[-1].end

    def segment_at(self, time: float) -> RateSegment | None:
        for segment in self.segments:
            if segment.start <= time < segment.end:
                return segment
            if segment.start > time:
                # gap before this segment: arrivals resume at segment.start
                return RateSegment(time, segment.start, 0.0)
        return None


class TrafficSource:
    """Open-loop arrival process for one (class, cluster) demand entry.

    Inter-arrival times are exponential (Poisson process) by default, or
    deterministic for variance-free microbenchmarks. Rate changes at segment
    boundaries are handled by restarting the draw at the boundary, which is
    exact for Poisson processes (memorylessness).
    """

    def __init__(self, sim: Simulator, profile: RateProfile,
                 attributes: RequestAttributes, ingress_cluster: str,
                 accept: Callable[[Request], None],
                 rng: np.random.Generator,
                 deterministic: bool = False,
                 request_ids: Callable[[], int] | None = None) -> None:
        self._sim = sim
        self._profile = profile
        self._attributes = attributes
        self._cluster = ingress_cluster
        self._accept = accept
        self._rng = rng
        self._deterministic = deterministic
        self._request_ids = request_ids or new_request_id
        self.generated = 0

    def start(self) -> None:
        """Begin scheduling arrivals from virtual time 0."""
        self._schedule_next(self._sim.now)

    def _schedule_next(self, now: float) -> None:
        segment = self._profile.segment_at(now)
        while segment is not None:
            if segment.rps <= 0:
                now = segment.end
                segment = self._profile.segment_at(now)
                continue
            gap = (1.0 / segment.rps if self._deterministic
                   else self._rng.exponential(1.0 / segment.rps))
            arrival = now + gap
            if arrival < segment.end:
                self._sim.schedule_at(arrival, self._emit, arrival)
                return
            # the draw crossed the boundary: restart from the next segment
            now = segment.end
            segment = self._profile.segment_at(now)

    def _emit(self, arrival: float) -> None:
        request = Request(
            request_id=self._request_ids(),
            attributes=self._attributes,
            ingress_cluster=self._cluster,
            arrival_time=arrival,
        )
        self.generated += 1
        self._accept(request)
        self._schedule_next(arrival)


def install_sources(sim: Simulator, demand: DemandMatrix, duration: float,
                    attributes_for: Callable[[str], RequestAttributes],
                    accept_for: Callable[[str], Callable[[Request], None]],
                    rng_for: Callable[[str], np.random.Generator],
                    deterministic: bool = False,
                    request_ids: Callable[[], int] | None = None,
                    ) -> list[TrafficSource]:
    """Create and start one source per (class, cluster) demand entry.

    ``attributes_for(cls)`` supplies the request template for a class,
    ``accept_for(cluster)`` the gateway sink, ``rng_for(name)`` a named
    random stream (one per source, so runs are reproducible), and
    ``request_ids`` the run-scoped id allocator.
    """
    sources = []
    for cls, cluster, rps in demand.items():
        source = TrafficSource(
            sim=sim,
            profile=RateProfile.constant(rps, duration),
            attributes=attributes_for(cls),
            ingress_cluster=cluster,
            accept=accept_for(cluster),
            rng=rng_for(f"arrivals/{cls}/{cluster}"),
            deterministic=deterministic,
            request_ids=request_ids,
        )
        source.start()
        sources.append(source)
    return sources
