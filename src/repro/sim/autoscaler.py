"""Horizontal autoscaling of replica pools (§2, §5).

The paper positions request routing as *complementary* to autoscaling:
autoscalers "operate over seconds to minutes" — resource monitoring period,
evaluation interval, container image pull, and application initialization —
while load can shift "at > 1000x faster timescales"; and §5 calls the
interaction between the two layers out as future work ("cross-cluster
request routing increases resource utilization in remote clusters").

:class:`HorizontalAutoscaler` models a Kubernetes HPA: every
``evaluation_period`` it reads each pool's mean utilization over the window
and computes the classic HPA desired-replica formula
``ceil(current * utilization / target)``; scale-downs are held back by a
stabilization window; newly requested replicas only start serving after a
``provisioning_delay`` (image pull + cold start).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .cluster import Cluster
from .engine import Simulator
from .service import ReplicaPool

__all__ = ["AutoscalerConfig", "ScalingEvent", "HorizontalAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """HPA-style knobs (defaults shrunk to simulation-friendly scales)."""

    target_utilization: float = 0.6
    min_replicas: int = 1
    max_replicas: int = 64
    #: how often utilization is evaluated (k8s default 15 s)
    evaluation_period: float = 15.0
    #: scale-down stabilization window (k8s default 300 s)
    scale_down_stabilization: float = 60.0
    #: image pull + container init before new replicas serve traffic
    provisioning_delay: float = 30.0
    #: ignore utilization within this band of the target (k8s: 10%)
    tolerance: float = 0.1

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization < 1:
            raise ValueError("target_utilization must be in (0, 1)")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.evaluation_period <= 0 or self.provisioning_delay < 0:
            raise ValueError("invalid timing configuration")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")


@dataclass(frozen=True)
class ScalingEvent:
    """One executed scaling action."""

    time: float
    service: str
    cluster: str
    from_replicas: int
    to_replicas: int

    @property
    def direction(self) -> str:
        return "up" if self.to_replicas > self.from_replicas else "down"


@dataclass
class _PoolState:
    last_busy_integral: float = 0.0
    last_eval_time: float = 0.0
    last_scale_down_block: float = 0.0
    pending_target: int | None = None


class HorizontalAutoscaler:
    """Periodically right-sizes every pool of one cluster."""

    def __init__(self, sim: Simulator, cluster: Cluster,
                 config: AutoscalerConfig | None = None) -> None:
        self._sim = sim
        self._cluster = cluster
        self.config = config or AutoscalerConfig()
        self.events: list[ScalingEvent] = []
        self._states: dict[str, _PoolState] = {}
        self._started = False
        self._next_evaluation = None

    def start(self) -> None:
        """Begin the evaluation loop."""
        if self._started:
            raise RuntimeError("autoscaler already started")
        self._started = True
        self._next_evaluation = self._sim.schedule_cancellable(
            self.config.evaluation_period, self._evaluate)

    def stop(self) -> None:
        """Cancel the evaluation loop (lets the simulation drain)."""
        if self._next_evaluation is not None:
            self._next_evaluation.cancel()
            self._next_evaluation = None
        self._started = False

    # ------------------------------------------------------------ internal

    def _evaluate(self) -> None:
        for service, pool in sorted(self._cluster.pools.items()):
            self._evaluate_pool(service, pool)
        self._next_evaluation = self._sim.schedule_cancellable(
            self.config.evaluation_period, self._evaluate)

    def _window_utilization(self, service: str, pool: ReplicaPool) -> float:
        state = self._states.setdefault(service, _PoolState())
        now = self._sim.now
        busy = pool.lifetime_busy_seconds
        window = now - state.last_eval_time
        utilization = 0.0
        if window > 0 and pool.replicas > 0:
            utilization = ((busy - state.last_busy_integral)
                           / (pool.replicas * window))
        state.last_busy_integral = busy
        state.last_eval_time = now
        return utilization

    def _evaluate_pool(self, service: str, pool: ReplicaPool) -> None:
        config = self.config
        state = self._states.setdefault(service, _PoolState())
        utilization = self._window_utilization(service, pool)
        current = pool.replicas
        ratio = utilization / config.target_utilization
        if abs(ratio - 1.0) <= config.tolerance:
            return
        desired = math.ceil(current * ratio)
        desired = max(config.min_replicas, min(config.max_replicas, desired))
        if desired == current or state.pending_target == desired:
            return
        if desired < current:
            # stabilization: only shrink if we've wanted to for the window
            if state.last_scale_down_block == 0.0:
                state.last_scale_down_block = self._sim.now
                return
            if (self._sim.now - state.last_scale_down_block
                    < config.scale_down_stabilization):
                return
            state.last_scale_down_block = 0.0
            self._apply(service, pool, desired)
        else:
            state.last_scale_down_block = 0.0
            # scale up after the provisioning delay (pull + init)
            state.pending_target = desired
            self._sim.schedule(config.provisioning_delay,
                               self._finish_scale_up, service, desired)

    def _finish_scale_up(self, service: str, desired: int) -> None:
        state = self._states.setdefault(service, _PoolState())
        state.pending_target = None
        pool = self._cluster.pools.get(service)
        if pool is None or desired <= pool.replicas:
            return
        self._apply(service, pool, desired)

    def _apply(self, service: str, pool: ReplicaPool, desired: int) -> None:
        before = pool.replicas
        pool.resize(desired)
        self.events.append(ScalingEvent(
            time=self._sim.now, service=service,
            cluster=self._cluster.name,
            from_replicas=before, to_replicas=desired))

    # ------------------------------------------------------------- queries

    def replica_seconds(self, horizon: float) -> float:
        """Integrated replica-count-seconds up to ``horizon`` (cost proxy).

        Reconstructed from the scaling event log plus initial sizes; used
        to compare provisioning cost across routing policies.
        """
        total = 0.0
        for service, pool in self._cluster.pools.items():
            changes = [(e.time, e.from_replicas, e.to_replicas)
                       for e in self.events if e.service == service]
            changes.sort()
            level = changes[0][1] if changes else pool.replicas
            last_time = 0.0
            for time, _, to_replicas in changes:
                total += level * (min(time, horizon) - last_time)
                level = to_replicas
                last_time = min(time, horizon)
            total += level * max(0.0, horizon - last_time)
        return total
