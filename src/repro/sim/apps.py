"""Application models: services, per-class call trees, and resource demands.

A microservice application is described *per traffic class* (§4.4: classes
may have "completely different call trees"): each :class:`TrafficClassSpec`
carries a call tree rooted at the ingress-facing service, per-edge request
and response sizes, and per-service mean compute times.

Execution semantics (matching an async/event-loop RPC server): a service
occupies a replica only while computing; downstream calls are issued after
the compute phase and awaited without holding the replica. Children on a
node are called sequentially by default (the paper's chained apps) or in
parallel for fan-out nodes.

Builders at the bottom construct the three applications the paper evaluates:
the linear 3-service chain (§4.1, §4.2), the anomaly-detection FR→MP→DB app
(§4.3), and the two-class L/H app (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheSpec
from .request import RequestAttributes

__all__ = ["CallEdge", "TrafficClassSpec", "AppSpec",
           "linear_chain_app", "anomaly_detection_app", "two_class_app",
           "fanout_app", "social_network_app"]

KB = 1_000
MB = 1_000_000


@dataclass(frozen=True)
class CallEdge:
    """One caller→callee edge in a class's call tree.

    ``calls_per_request`` is the expected number of child invocations per
    parent execution; non-integer values are realised probabilistically by
    the simulator and used exactly by the optimizer.
    """

    caller: str
    callee: str
    calls_per_request: float = 1.0
    request_bytes: int = 1 * KB
    response_bytes: int = 10 * KB

    def __post_init__(self) -> None:
        if self.caller == self.callee:
            raise ValueError(f"self-call edge on {self.caller!r}")
        if self.calls_per_request < 0:
            raise ValueError("calls_per_request must be >= 0")
        if self.request_bytes < 0 or self.response_bytes < 0:
            raise ValueError("byte sizes must be >= 0")


@dataclass
class TrafficClassSpec:
    """A traffic class: matching attributes, call tree, resource demands."""

    name: str
    #: template attributes; the workload generator stamps these on requests
    attributes: RequestAttributes
    root_service: str
    edges: list[CallEdge] = field(default_factory=list)
    #: mean compute seconds per execution, keyed by service name
    exec_time: dict[str, float] = field(default_factory=dict)
    #: services whose children are invoked concurrently (default: sequential)
    parallel_fanout: frozenset[str] = frozenset()
    #: bytes for the user→root ingress call and its response
    ingress_request_bytes: int = 1 * KB
    ingress_response_bytes: int = 10 * KB
    #: size of this class's data-key universe; > 0 makes each request draw
    #: a key uniformly, enabling edge caches (see repro.sim.cache)
    key_space: int = 0
    #: route this class with per-key cluster affinity (weighted rendezvous
    #: hashing over the rule weights) instead of per-request sampling —
    #: preserves cache/data locality under fractional splits (§5)
    sticky_affinity: bool = False

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ structure

    def validate(self) -> None:
        """Check the edges form a tree rooted at ``root_service``."""
        parents: dict[str, str] = {}
        for edge in self.edges:
            if edge.callee in parents:
                raise ValueError(
                    f"class {self.name!r}: service {edge.callee!r} has two "
                    f"callers ({parents[edge.callee]!r}, {edge.caller!r}); "
                    "call graphs must be trees")
            if edge.callee == self.root_service:
                raise ValueError(
                    f"class {self.name!r}: root {self.root_service!r} "
                    "cannot be a callee")
            parents[edge.callee] = edge.caller
        # reachability from the root (also rejects cycles detached from it)
        reachable = {self.root_service}
        frontier = [self.root_service]
        children = self.children_map()
        while frontier:
            node = frontier.pop()
            for edge in children.get(node, []):
                reachable.add(edge.callee)
                frontier.append(edge.callee)
        unreachable = set(parents) - reachable
        if unreachable:
            raise ValueError(
                f"class {self.name!r}: services {sorted(unreachable)} not "
                f"reachable from root {self.root_service!r}")
        for service in self.services():
            if self.exec_time.get(service, 0.0) < 0:
                raise ValueError(
                    f"class {self.name!r}: negative exec_time for {service!r}")

    def services(self) -> list[str]:
        """All services this class touches, root first, in BFS order."""
        order = [self.root_service]
        children = self.children_map()
        index = 0
        while index < len(order):
            for edge in children.get(order[index], []):
                order.append(edge.callee)
            index += 1
        return order

    def children_map(self) -> dict[str, list[CallEdge]]:
        """Caller → ordered child edges."""
        out: dict[str, list[CallEdge]] = {}
        for edge in self.edges:
            out.setdefault(edge.caller, []).append(edge)
        return out

    def exec_time_of(self, service: str) -> float:
        """Mean compute seconds for one execution of ``service``."""
        return self.exec_time.get(service, 0.0)

    def executions_per_request(self) -> dict[str, float]:
        """Expected executions of each service per ingress request."""
        rates = {self.root_service: 1.0}
        for service in self.services():
            for edge in self.children_map().get(service, []):
                rates[edge.callee] = (rates.get(edge.callee, 0.0)
                                      + rates[service] * edge.calls_per_request)
        return rates


@dataclass
class AppSpec:
    """An application: a set of traffic classes over a shared service set."""

    name: str
    classes: dict[str, TrafficClassSpec] = field(default_factory=dict)
    #: edge caches keyed by (caller, callee); see repro.sim.cache
    caches: dict[tuple[str, str], "CacheSpec"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cls_name, spec in self.classes.items():
            if cls_name != spec.name:
                raise ValueError(
                    f"class keyed {cls_name!r} is named {spec.name!r}")
        for (caller, callee), cache in self.caches.items():
            if (caller, callee) != (cache.caller, cache.callee):
                raise ValueError(
                    f"cache keyed {(caller, callee)} is for "
                    f"{(cache.caller, cache.callee)}")

    def cache_for(self, caller: str, callee: str) -> "CacheSpec | None":
        return self.caches.get((caller, callee))

    def services(self) -> list[str]:
        """Union of services across classes, stable order."""
        seen: dict[str, None] = {}
        for spec in self.classes.values():
            for service in spec.services():
                seen.setdefault(service)
        return list(seen)

    def traffic_class(self, name: str) -> TrafficClassSpec:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"app {self.name!r} has no class {name!r}; "
                           f"classes: {sorted(self.classes)}") from None


# --------------------------------------------------------------------------
# Applications from the paper's evaluation
# --------------------------------------------------------------------------

def linear_chain_app(n_services: int = 3, exec_time: float = 0.010,
                     request_bytes: int = 1 * KB,
                     response_bytes: int = 10 * KB,
                     name: str = "linear-chain") -> AppSpec:
    """The §4 microbenchmark: ingress → S1 → S2 → ... chained linearly.

    Each service "performs simple file write operations", modelled as
    ``exec_time`` seconds of compute per call (default 10 ms).
    """
    if n_services < 1:
        raise ValueError("need at least one service")
    services = [f"S{i}" for i in range(1, n_services + 1)]
    edges = [
        CallEdge(caller=services[i], callee=services[i + 1],
                 request_bytes=request_bytes, response_bytes=response_bytes)
        for i in range(n_services - 1)
    ]
    spec = TrafficClassSpec(
        name="default",
        attributes=RequestAttributes.make(services[0], "POST", "/work"),
        root_service=services[0],
        edges=edges,
        exec_time={s: exec_time for s in services},
        ingress_request_bytes=request_bytes,
        ingress_response_bytes=response_bytes,
    )
    return AppSpec(name=name, classes={"default": spec})


def anomaly_detection_app(db_response_bytes: int = 500 * KB,
                          frontend_response_bytes: int = 50 * KB,
                          fr_exec: float = 0.002, mp_exec: float = 0.015,
                          db_exec: float = 0.008) -> AppSpec:
    """The §4.3 multi-hop app: FR (frontend) → MP (metrics processor) → DB.

    MP pulls a large volume of metrics from DB: the DB→MP response is
    roughly ten times the MP→FR response, which is what makes the cut
    placement matter for egress cost (SLATE cuts at FR→MP, locality failover
    cuts at MP→DB, paying ~10x the bytes).
    """
    edges = [
        CallEdge("FR", "MP", request_bytes=1 * KB,
                 response_bytes=frontend_response_bytes),
        CallEdge("MP", "DB", request_bytes=2 * KB,
                 response_bytes=db_response_bytes),
    ]
    spec = TrafficClassSpec(
        name="default",
        attributes=RequestAttributes.make("FR", "GET", "/dashboard"),
        root_service="FR",
        edges=edges,
        exec_time={"FR": fr_exec, "MP": mp_exec, "DB": db_exec},
        ingress_request_bytes=1 * KB,
        ingress_response_bytes=frontend_response_bytes,
    )
    return AppSpec(name="anomaly-detection", classes={"default": spec})


def two_class_app(light_exec: float = 0.004, heavy_exec: float = 0.040,
                  n_services: int = 2) -> AppSpec:
    """The §4.4 app: one chain serving cheap L and expensive H classes.

    H requests cost ~10x the compute of L requests at every service, so a
    class-aware router can relieve an overload by moving far fewer requests.
    """
    services = [f"S{i}" for i in range(1, n_services + 1)]
    def chain(request_bytes: int, response_bytes: int) -> list[CallEdge]:
        return [
            CallEdge(services[i], services[i + 1],
                     request_bytes=request_bytes,
                     response_bytes=response_bytes)
            for i in range(n_services - 1)
        ]
    light = TrafficClassSpec(
        name="L",
        attributes=RequestAttributes.make(services[0], "GET", "/light"),
        root_service=services[0],
        edges=chain(1 * KB, 5 * KB),
        exec_time={s: light_exec for s in services},
    )
    heavy = TrafficClassSpec(
        name="H",
        attributes=RequestAttributes.make(services[0], "POST", "/heavy"),
        root_service=services[0],
        edges=chain(2 * KB, 20 * KB),
        exec_time={s: heavy_exec for s in services},
    )
    return AppSpec(name="two-class", classes={"L": light, "H": heavy})


def social_network_app() -> AppSpec:
    """A DeathStarBench-style social network with two traffic classes.

    Exercises the heterogeneity §4.4 argues for — classes with different
    call trees, byte profiles, and compute demands at shared services:

    * ``read`` (GET /timeline): FE → TL, then TL pulls posts from PS (large
      responses) and author info from US. Read-heavy, cheap compute,
      egress-expensive if PS is remote.
    * ``compose`` (POST /compose): FE → CP, then CP writes to US, MD (media
      upload — large *request*), PS, and fans out 2 timeline updates to TL.
      Compute-heavy, write-amplifying.
    """
    read = TrafficClassSpec(
        name="read",
        attributes=RequestAttributes.make("FE", "GET", "/timeline"),
        root_service="FE",
        edges=[
            CallEdge("FE", "TL", request_bytes=1 * KB,
                     response_bytes=60 * KB),
            CallEdge("TL", "PS", request_bytes=2 * KB,
                     response_bytes=100 * KB),
            CallEdge("TL", "US", request_bytes=1 * KB,
                     response_bytes=2 * KB),
        ],
        exec_time={"FE": 0.002, "TL": 0.005, "PS": 0.004, "US": 0.001},
        ingress_request_bytes=1 * KB,
        ingress_response_bytes=60 * KB,
    )
    compose = TrafficClassSpec(
        name="compose",
        attributes=RequestAttributes.make("FE", "POST", "/compose"),
        root_service="FE",
        edges=[
            CallEdge("FE", "CP", request_bytes=210 * KB,
                     response_bytes=2 * KB),
            CallEdge("CP", "US", request_bytes=1 * KB,
                     response_bytes=2 * KB),
            CallEdge("CP", "MD", request_bytes=200 * KB,
                     response_bytes=1 * KB),
            CallEdge("CP", "PS", request_bytes=8 * KB,
                     response_bytes=1 * KB),
            CallEdge("CP", "TL", calls_per_request=2.0,
                     request_bytes=2 * KB, response_bytes=1 * KB),
        ],
        exec_time={"FE": 0.002, "CP": 0.008, "US": 0.001, "MD": 0.012,
                   "PS": 0.005, "TL": 0.003},
        ingress_request_bytes=210 * KB,
        ingress_response_bytes=2 * KB,
    )
    return AppSpec(name="social-network",
                   classes={"read": read, "compose": compose})


def fanout_app(width: int = 3, exec_time: float = 0.008,
               parallel: bool = True) -> AppSpec:
    """A frontend fanning out to ``width`` backends (scatter-gather).

    Not evaluated in the paper but exercised by tests and ablations: latency
    of a parallel fan-out is the max of children, so tail behaviour differs
    from chains.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    backends = [f"B{i}" for i in range(1, width + 1)]
    edges = [CallEdge("FE", b, request_bytes=1 * KB, response_bytes=20 * KB)
             for b in backends]
    exec_times = {b: exec_time for b in backends}
    exec_times["FE"] = exec_time / 2
    spec = TrafficClassSpec(
        name="default",
        attributes=RequestAttributes.make("FE", "GET", "/aggregate"),
        root_service="FE",
        edges=edges,
        exec_time=exec_times,
        parallel_fanout=frozenset({"FE"}) if parallel else frozenset(),
    )
    return AppSpec(name="fanout", classes={"default": spec})
