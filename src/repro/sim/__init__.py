"""Simulation substrate: clusters, replica pools, WAN, workloads, runner.

This package stands in for the paper's Kubernetes + ``tc netem`` testbed; see
DESIGN.md §4 for the substitution argument.
"""

from .apps import (AppSpec, CallEdge, TrafficClassSpec, anomaly_detection_app,
                   fanout_app, linear_chain_app, social_network_app,
                   two_class_app)
from .autoscaler import (AutoscalerConfig, HorizontalAutoscaler,
                         ScalingEvent)
from .cluster import Cluster
from .engine import EventHandle, SimulationError, Simulator
from .network import (GB, EgressLedger, EgressPricing, LatencyMatrix,
                      WanNetwork)
from .request import Request, RequestAttributes, Span, Trace
from .rng import RngRegistry
from .service import PoolStats, ReplicaPool
from .topology import (GCP_REGIONS, GCP_RTT_MS, ClusterSpec, DeploymentSpec,
                       gcp_four_region_latency, two_region_latency)
from .workload import DemandMatrix, RateProfile, RateSegment, TrafficSource

__all__ = [
    "AppSpec", "CallEdge", "TrafficClassSpec", "anomaly_detection_app",
    "fanout_app", "linear_chain_app", "social_network_app",
    "two_class_app",
    "AutoscalerConfig", "HorizontalAutoscaler", "ScalingEvent",
    "Cluster",
    "EventHandle", "SimulationError", "Simulator",
    "GB", "EgressLedger", "EgressPricing", "LatencyMatrix", "WanNetwork",
    "Request", "RequestAttributes", "Span", "Trace",
    "RngRegistry",
    "MeshSimulation", "TimeoutPolicy",
    "PoolStats", "ReplicaPool",
    "GCP_REGIONS", "GCP_RTT_MS", "ClusterSpec", "DeploymentSpec",
    "gcp_four_region_latency", "two_region_latency",
    "DemandMatrix", "RateProfile", "RateSegment", "TrafficSource",
]


def __getattr__(name: str):
    # Runner classes are loaded lazily: runner depends on repro.mesh, which
    # depends on the leaf modules of this package, so importing them eagerly
    # here would create an import cycle.
    if name in ("MeshSimulation", "TimeoutPolicy"):
        from . import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
