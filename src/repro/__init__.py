"""SLATE: Service Layer Traffic Engineering — reproduction library.

Reproduces *Opportunities and Challenges in Service Layer Traffic
Engineering* (Lim, Prerepa, Godfrey, Mittal — HotNets '24): a global
traffic-engineering approach to request routing for microservice
applications spanning multiple geo-distributed clusters.

Quick start::

    from repro import (MeshSimulation, DemandMatrix, DeploymentSpec,
                       linear_chain_app, two_region_latency,
                       GlobalController)

    app = linear_chain_app()
    deployment = DeploymentSpec.uniform(app.services(), ["west", "east"],
                                        replicas=5,
                                        latency=two_region_latency(25.0))
    demand = DemandMatrix({("default", "west"): 700.0,
                           ("default", "east"): 100.0})
    result = GlobalController.oracle(app, deployment, demand)
    sim = MeshSimulation(app, deployment, seed=1)
    result.rules().apply(sim.table)
    sim.run(demand, duration=30.0)

Subpackages:

* :mod:`repro.sim` — discrete-event substrate: clusters, replica pools,
  WAN, workloads (stands in for the paper's Kubernetes testbed).
* :mod:`repro.mesh` — service-mesh layer: SLATE-proxies, gateways, routing
  tables, telemetry.
* :mod:`repro.core` — SLATE itself: traffic classes, latency models, the
  TE optimizer, Global/Cluster controllers, resilient rollout.
* :mod:`repro.baselines` — Waterfall (Traffic Director / ServiceRouter),
  locality failover, local-only, static splits.
* :mod:`repro.analysis` — CDFs, summaries, fluid-model prediction.
* :mod:`repro.experiments` — scenario + harness for every paper figure.
* :mod:`repro.obs` — observability: distributed tracing, metrics registry,
  controller decision log, control-plane profiler (off by default).
"""

from .analysis import (Comparison, EmpiricalCDF, LatencySummary,
                       PolicyOutcome, evaluate_rules, summarize)
from .baselines import (LocalityFailoverPolicy, LocalOnlyPolicy,
                        PolicyContext, StaticSplitPolicy, WaterfallConfig,
                        WaterfallPolicy)
from .core import (GlobalController, GlobalControllerConfig,
                   IncrementalRollout, OptimizationResult, RoutingRule,
                   RuleSet, SlatePolicy, TEProblem, solve)
from .experiments import (Scenario, compare_policies, predict_policy,
                          run_policy)
from .obs import Observability, ObservabilityConfig
from .sim import (AppSpec, AutoscalerConfig, CallEdge, DemandMatrix,
                  DeploymentSpec, HorizontalAutoscaler, LatencyMatrix,
                  RequestAttributes, TrafficClassSpec,
                  anomaly_detection_app, gcp_four_region_latency,
                  linear_chain_app, social_network_app, two_class_app,
                  two_region_latency)
from .sim.cache import CacheSpec
from .sim.runner import MeshSimulation, TimeoutPolicy

__version__ = "0.1.0"

__all__ = [
    "Comparison", "EmpiricalCDF", "LatencySummary", "PolicyOutcome",
    "evaluate_rules", "summarize",
    "LocalityFailoverPolicy", "LocalOnlyPolicy", "PolicyContext",
    "StaticSplitPolicy", "WaterfallConfig", "WaterfallPolicy",
    "GlobalController", "GlobalControllerConfig", "IncrementalRollout",
    "OptimizationResult", "RoutingRule", "RuleSet", "SlatePolicy",
    "TEProblem", "solve",
    "Scenario", "compare_policies", "predict_policy", "run_policy",
    "Observability", "ObservabilityConfig",
    "AppSpec", "AutoscalerConfig", "CacheSpec", "CallEdge", "DemandMatrix",
    "DeploymentSpec", "HorizontalAutoscaler", "LatencyMatrix",
    "RequestAttributes", "TrafficClassSpec",
    "anomaly_detection_app", "gcp_four_region_latency",
    "linear_chain_app", "social_network_app", "two_class_app",
    "two_region_latency",
    "MeshSimulation", "TimeoutPolicy",
    "__version__",
]
