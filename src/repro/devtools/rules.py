"""The determinism & invariant lint rules (D01–D08).

Each rule is an AST visitor over one module. Rules are path-aware: the
codebase's layout encodes which guarantees apply where (``sim/``, ``core/``,
``mesh/``, ``baselines/`` are simulated/deterministic code; ``analysis/``
and ``benchmarks/`` may read wall clocks; only ``sim/rng.py`` may construct
raw generators). See ``docs/devtools.md`` for the full catalogue with
examples.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Iterator

from .findings import Finding, Severity

__all__ = ["ALL_RULES", "DunderAllConsistency", "FloatTimestampEquality",
           "ModuleSource", "ModuleStateMutation", "MutableDefaultArgument",
           "PrintInLibraryCode", "RandomnessOutsideRegistry", "Rule",
           "UnsortedSetIteration", "WallClockInSimulatedCode"]


@dataclass(frozen=True)
class ModuleSource:
    """One parsed source file handed to every rule."""

    path: str            # path as given on the command line
    tree: ast.Module
    source: str

    @property
    def parts(self) -> tuple[str, ...]:
        return PurePosixPath(self.path.replace("\\", "/")).parts


# --------------------------------------------------------------- path scopes

#: directories whose code runs inside the simulation / control plane and
#: therefore must be bit-reproducible from the seed
_DETERMINISTIC_DIRS = frozenset({"sim", "core", "mesh", "baselines"})


def _in_repro_package(module: ModuleSource) -> bool:
    """True for library code under ``repro`` (not tests or benchmarks)."""
    parts = module.parts
    return ("repro" in parts and "tests" not in parts
            and "benchmarks" not in parts)


def _in_deterministic_code(module: ModuleSource) -> bool:
    parts = module.parts
    return (_in_repro_package(module)
            and any(p in _DETERMINISTIC_DIRS for p in parts))


def _is_rng_module(module: ModuleSource) -> bool:
    parts = module.parts
    return len(parts) >= 2 and parts[-2:] == ("sim", "rng.py")


def _dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` → that string; None for non-name chains."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    names.append(node.id)
    return ".".join(reversed(names))


def _walk_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


class Rule:
    """Base class: one lint rule with an id, severity, and AST check."""

    rule_id: str = "D00"
    default_severity: Severity = Severity.ERROR
    summary: str = ""

    def applies_to(self, module: ModuleSource) -> bool:
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.rule_id,
                       severity=self.default_severity,
                       message=message)


# ------------------------------------------------------------------ D01

class RandomnessOutsideRegistry(Rule):
    """All randomness must flow through ``RngRegistry.stream(name)``.

    A raw ``random.random()`` or ``np.random.default_rng()`` anywhere else
    either ignores the run's seed entirely or creates an unregistered
    stream whose draws perturb every other component's.
    """

    rule_id = "D01"
    summary = ("randomness outside sim/rng.py — use "
               "RngRegistry.stream(name)")

    def applies_to(self, module: ModuleSource) -> bool:
        return not _is_rng_module(module)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        # tests and benchmarks may construct explicitly seeded generators
        # to inject into components; unseeded construction is never OK
        in_tests = not _in_repro_package(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            module, node,
                            "import of the stdlib `random` module; draw "
                            "from RngRegistry.stream(name) instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("random", "numpy.random"):
                    yield self.finding(
                        module, node,
                        f"import from `{node.module}`; draw from "
                        "RngRegistry.stream(name) instead")
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                segments = dotted.split(".")
                if segments[0] == "random" and len(segments) > 1:
                    yield self.finding(
                        module, node,
                        f"call to `{dotted}` bypasses the seeded "
                        "RngRegistry")
                elif (len(segments) >= 3
                      and segments[0] in ("np", "numpy")
                      and segments[1] == "random"):
                    if (in_tests and segments[2] == "default_rng"
                            and (node.args or node.keywords)):
                        continue   # seeded injection fixture
                    yield self.finding(
                        module, node,
                        f"call to `{dotted}` constructs an unregistered "
                        "generator; use RngRegistry.stream(name)")


# ------------------------------------------------------------------ D02

class WallClockInSimulatedCode(Rule):
    """Simulated code must only see virtual time (``Simulator.now``).

    A wall-clock read in ``sim/``, ``core/``, ``mesh/``, or ``baselines/``
    couples results to host speed and makes reruns diverge. Benchmarks and
    offline analysis may time themselves. The fluid substrate
    (``sim/fluid``) is covered by the same directory match: its tick loop
    advances virtual time only, and the runtime invariant checker
    (``check_fluid_tick``) enforces monotonicity when debug mode is on.
    """

    rule_id = "D02"
    summary = "wall-clock read in sim/core/mesh/baselines code"

    _TIME_CALLS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
    })
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
    _FROM_TIME_NAMES = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    })

    def applies_to(self, module: ModuleSource) -> bool:
        return _in_deterministic_code(module)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names
                       if a.name in self._FROM_TIME_NAMES]
                if bad:
                    yield self.finding(
                        module, node,
                        f"wall-clock import from `time` ({', '.join(bad)}); "
                        "simulated code must use Simulator.now")
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                segments = dotted.split(".")
                if dotted in self._TIME_CALLS:
                    yield self.finding(
                        module, node,
                        f"wall-clock call `{dotted}()`; simulated code "
                        "must use Simulator.now")
                elif (segments[-1] in self._DATETIME_ATTRS
                      and any(s in ("datetime", "date") for s in segments[:-1])):
                    yield self.finding(
                        module, node,
                        f"wall-clock call `{dotted}()`; simulated code "
                        "must use Simulator.now")


# ------------------------------------------------------------------ D03

class UnsortedSetIteration(Rule):
    """Iterating a set has arbitrary order; wrap it in ``sorted(...)``.

    Set iteration order depends on insertion history and hash seeding of
    the values. Feeding it into event scheduling or routing-weight
    construction silently reorders draws between runs.
    """

    rule_id = "D03"
    summary = "iteration over an unordered set without sorted(...)"

    _SET_METHODS = frozenset({"union", "intersection", "difference",
                              "symmetric_difference"})

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SET_METHODS):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        module, it,
                        "iteration over a set has arbitrary order; wrap "
                        "the expression in sorted(...)")


# ------------------------------------------------------------------ D04

class FloatTimestampEquality(Rule):
    """No ``==``/``!=`` between simulated timestamps.

    Virtual times are floats accumulated through arithmetic; exact
    equality is representation-dependent. Compare with inequalities or an
    explicit tolerance.
    """

    rule_id = "D04"
    summary = "float ==/!= comparison on simulated timestamps"

    def applies_to(self, module: ModuleSource) -> bool:
        return _in_repro_package(module)

    @staticmethod
    def _terminal_id(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _is_time_like(self, node: ast.expr) -> bool:
        name = self._terminal_id(node)
        if name is None:
            return False
        return (name == "now" or name == "deadline" or name == "timestamp"
                or name.endswith("time") or name.endswith("_at"))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_time_like(left) or self._is_time_like(right):
                    yield self.finding(
                        module, node,
                        "exact ==/!= on a simulated timestamp; use an "
                        "inequality or an explicit tolerance")


# ------------------------------------------------------------------ D05

class MutableDefaultArgument(Rule):
    """Mutable default arguments alias state across calls."""

    rule_id = "D05"
    summary = "mutable default argument"

    _FACTORY_NAMES = frozenset({"list", "dict", "set", "defaultdict",
                                "OrderedDict", "Counter", "deque",
                                "bytearray"})

    def _is_mutable_default(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return (dotted is not None
                    and dotted.split(".")[-1] in self._FACTORY_NAMES)
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for func in _walk_functions(module.tree):
            defaults = list(func.args.defaults)
            defaults.extend(d for d in func.args.kw_defaults
                            if d is not None)
            for default in defaults:
                if self._is_mutable_default(default):
                    name = getattr(func, "name", "<lambda>")
                    yield self.finding(
                        module, default,
                        f"mutable default argument in `{name}`; default "
                        "to None and create the object inside the body")


# ------------------------------------------------------------------ D06

class ModuleStateMutation(Rule):
    """Handlers and callbacks must not mutate module-level state.

    Module globals outlive a simulation; mutating them from event code
    leaks state between runs and between test cases, so run N's result
    depends on runs 1..N-1. Keep mutable state on the objects owned by
    one :class:`MeshSimulation`.
    """

    rule_id = "D06"
    summary = "function mutates module-level state"

    _MUTATORS = frozenset({"append", "extend", "insert", "add", "update",
                           "setdefault", "pop", "popleft", "remove",
                           "discard", "clear", "appendleft"})

    def applies_to(self, module: ModuleSource) -> bool:
        return _in_repro_package(module)

    def _module_level_mutables(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                             ast.ListComp, ast.DictComp,
                                             ast.SetComp))
                if isinstance(value, ast.Call):
                    dotted = _dotted_name(value.func)
                    if dotted is not None and dotted.split(".")[-1] in (
                            "list", "dict", "set", "defaultdict", "deque",
                            "count"):
                        mutable = True
                if mutable:
                    names.update(t.id for t in stmt.targets
                                 if isinstance(t, ast.Name))
        return names

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        mutables = self._module_level_mutables(module.tree)
        for func in _walk_functions(module.tree):
            # nested defs are revisited by the outer walk; the linter
            # deduplicates identical findings
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    names = ", ".join(node.names)
                    yield self.finding(
                        module, node,
                        f"`global {names}` rebinds module state from a "
                        "function; keep state on the simulation objects")
                elif mutables and isinstance(node, ast.Call):
                    func_expr = node.func
                    if (isinstance(func_expr, ast.Attribute)
                            and func_expr.attr in self._MUTATORS
                            and isinstance(func_expr.value, ast.Name)
                            and func_expr.value.id in mutables):
                        yield self.finding(
                            module, node,
                            f"mutates module-level "
                            f"`{func_expr.value.id}` from a function")
                    elif (isinstance(func_expr, ast.Name)
                          and func_expr.id == "next"
                          and len(node.args) == 1
                          and isinstance(node.args[0], ast.Name)
                          and node.args[0].id in mutables):
                        yield self.finding(
                            module, node,
                            f"advances module-level iterator "
                            f"`{node.args[0].id}` from a function; ids "
                            "drawn from it leak across simulations")
                elif mutables and isinstance(node, (ast.Assign,
                                                    ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Subscript)
                                and isinstance(target.value, ast.Name)
                                and target.value.id in mutables):
                            yield self.finding(
                                module, node,
                                f"assigns into module-level "
                                f"`{target.value.id}` from a function")


# ------------------------------------------------------------------ D07

class DunderAllConsistency(Rule):
    """``__all__`` must exist and match the module's public defs.

    The public-API tests and docs index are generated from ``__all__``;
    a public def missing from it is invisible to both, and a stale entry
    breaks ``from module import *``.
    """

    rule_id = "D07"
    summary = "__all__ missing or inconsistent with public defs"

    def applies_to(self, module: ModuleSource) -> bool:
        return _in_repro_package(module)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        tree = module.tree
        declared: list[str] | None = None
        all_node: ast.AST = tree
        top_level: set[str] = set()
        public_defs: dict[str, ast.AST] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                top_level.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        top_level.add(target.id)
                        if target.id == "__all__":
                            declared = self._literal_names(stmt.value)
                            all_node = stmt
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    top_level.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    top_level.add(name)

        if declared is None:
            if public_defs:
                names = ", ".join(sorted(public_defs))
                yield self.finding(
                    module, tree,
                    f"module defines public names ({names}) but has no "
                    "__all__")
            return
        # a module-level __getattr__ (PEP 562) can provide names lazily,
        # so "listed but not defined" cannot be decided statically
        has_module_getattr = "__getattr__" in top_level
        for name in declared:
            if has_module_getattr:
                break
            if name not in top_level:
                yield self.finding(
                    module, all_node,
                    f"__all__ lists `{name}` which is not defined at "
                    "module top level")
        for name, node in sorted(public_defs.items()):
            if name not in declared:
                yield self.finding(
                    module, node,
                    f"public `{name}` is missing from __all__")

    @staticmethod
    def _literal_names(value: ast.expr) -> list[str]:
        names: list[str] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    names.append(element.value)
        return names


# ------------------------------------------------------------------ D08

class PrintInLibraryCode(Rule):
    """Library code reports through telemetry/logging, never ``print``
    (nor unsanctioned file writes).

    ``print`` in the simulator or control plane interleaves with test
    output and cannot be captured by the analysis pipeline; silent file
    writes scatter run artifacts wherever the process happens to run. The
    CLI and the lint tool itself are the only sanctioned terminal writers;
    designated exporter modules (``repro.obs.export``,
    ``repro.analysis.export``, csv save helpers) suppress per line with a
    rationale — file output is their declared purpose and every path is
    caller-chosen.
    """

    rule_id = "D08"
    summary = "print()/file write in library code"

    #: ``open()`` mode characters that make the call a write
    _WRITE_MODE_CHARS = frozenset("wax+")
    _WRITE_METHODS = ("write_text", "write_bytes")

    def applies_to(self, module: ModuleSource) -> bool:
        if not _in_repro_package(module):
            return False
        parts = module.parts
        if parts[-1] == "cli.py" or "devtools" in parts:
            return False
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield self.finding(
                    module, node,
                    "print() in library code; return a string or use the "
                    "telemetry path")
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and self._opens_for_write(node)):
                yield self.finding(
                    module, node,
                    "file write in library code; route artifact output "
                    "through an exporter module (repro.obs.export / "
                    "repro.analysis.export) or suppress with a rationale")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._WRITE_METHODS):
                yield self.finding(
                    module, node,
                    f".{node.func.attr}() in library code; route artifact "
                    f"output through an exporter module or suppress with "
                    f"a rationale")

    def _opens_for_write(self, node: ast.Call) -> bool:
        mode = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if not (isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)):
            return False   # no/odd mode: default "r", a read
        return bool(self._WRITE_MODE_CHARS.intersection(mode.value))


#: registry in rule-id order; the linter instantiates from this list
ALL_RULES: tuple[type[Rule], ...] = (
    RandomnessOutsideRegistry,
    WallClockInSimulatedCode,
    UnsortedSetIteration,
    FloatTimestampEquality,
    MutableDefaultArgument,
    ModuleStateMutation,
    DunderAllConsistency,
    PrintInLibraryCode,
)
