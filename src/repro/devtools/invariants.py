"""Runtime invariant checks for the simulator and control plane.

Enabled by setting ``REPRO_DEBUG_INVARIANTS=1`` in the environment; all
checks are no-ops otherwise, so production runs pay nothing. The engine,
replica pools, gateways, and :class:`~repro.sim.runner.MeshSimulation`
call in at the natural checkpoints:

* **event-time monotonicity** — the heap loop never executes an event
  before the current virtual time;
* **request conservation** — at quiesce, every admitted request is
  accounted for: ``admitted == completed + failed + in_flight`` per
  gateway, with ``in_flight >= 0``;
* **routing-matrix stochasticity** — every installed rule's weights are
  non-negative and sum to 1 ± 1e-9 per (service, class, source cluster);
* **non-negative queue depths** — a pool never records negative busy
  replicas or queue length;
* **fluid tick monotonicity** — the fluid substrate's tick loop never
  observes virtual time moving backwards between ticks;
* **fluid flow sanity** — bulk flow rates are finite and non-negative,
  and every routing matrix row applied as a matrix product sums to
  1 ± 1e-9 (the same stochasticity bound as installed rules).

Violations raise :class:`InvariantViolation` with a message naming the
offending stream/service/cluster so the report is actionable.
"""

from __future__ import annotations

import math
import os

__all__ = ["INVARIANTS_ENV", "InvariantViolation", "ROW_SUM_TOLERANCE",
           "check_event_monotonic", "check_fluid_rates",
           "check_fluid_tick", "check_pool_depths",
           "check_request_conservation", "check_routing_matrix",
           "check_routing_table", "invariants_enabled"]

INVARIANTS_ENV = "REPRO_DEBUG_INVARIANTS"

#: allowed deviation of a routing row's weight sum from 1.0
ROW_SUM_TOLERANCE = 1e-9

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantViolation(AssertionError):
    """A debug-mode invariant failed; the message names the culprit."""


def invariants_enabled() -> bool:
    """Whether ``REPRO_DEBUG_INVARIANTS`` is set to a truthy value."""
    return os.environ.get(INVARIANTS_ENV, "").strip().lower() in _TRUTHY


def check_event_monotonic(now: float, event_time: float,
                          callback: object) -> None:
    """The next event must not precede the current virtual time."""
    if event_time < now:
        name = getattr(callback, "__qualname__", repr(callback))
        raise InvariantViolation(
            f"event-time monotonicity violated: event {name!r} scheduled "
            f"at t={event_time!r} popped while now={now!r}")


def check_routing_table(table) -> None:
    """Every installed rule must be a proper probability row.

    ``table`` is a :class:`~repro.mesh.routing_table.RoutingTable`; its
    ``rules()`` accessor returns (key → cluster → weight) mappings.
    """
    for key, weights in table.rules().items():
        if not weights:
            raise InvariantViolation(
                f"routing rule for service={key.service!r} "
                f"class={key.traffic_class!r} src={key.src_cluster!r} "
                f"has an empty weight row")
        for cluster, weight in weights.items():
            if not math.isfinite(weight) or weight < 0:
                raise InvariantViolation(
                    f"routing rule for service={key.service!r} "
                    f"class={key.traffic_class!r} src={key.src_cluster!r} "
                    f"has invalid weight {weight!r} for cluster "
                    f"{cluster!r}")
        total = sum(weights.values())
        if abs(total - 1.0) > ROW_SUM_TOLERANCE:
            raise InvariantViolation(
                f"routing rule for service={key.service!r} "
                f"class={key.traffic_class!r} src={key.src_cluster!r} "
                f"sums to {total!r}, expected 1 ± {ROW_SUM_TOLERANCE}")


def check_request_conservation(gateways) -> None:
    """At quiesce, each gateway's admissions must be fully accounted for.

    ``gateways`` maps cluster name → :class:`IngressGateway`; gateways
    keep always-on admission/completion/failure counters.
    """
    for cluster, gateway in sorted(gateways.items()):
        admitted = gateway.admitted_count
        completed = gateway.completed_count
        failed = gateway.failed_count
        in_flight = admitted - completed - failed
        if in_flight < 0:
            raise InvariantViolation(
                f"request conservation violated at cluster {cluster!r}: "
                f"admitted={admitted} < completed={completed} + "
                f"failed={failed} (a request settled twice?)")
        if gateway.open_requests != in_flight:
            raise InvariantViolation(
                f"request conservation violated at cluster {cluster!r}: "
                f"admitted={admitted}, completed={completed}, "
                f"failed={failed} imply {in_flight} in flight, but "
                f"{gateway.open_requests} are tracked open")


def check_fluid_tick(last_tick: float, now: float) -> None:
    """The fluid tick loop must see monotone non-decreasing virtual time."""
    if now < last_tick:
        raise InvariantViolation(
            f"fluid tick monotonicity violated: tick fired at t={now!r} "
            f"after a tick at t={last_tick!r}")


def check_routing_matrix(service, traffic_class, matrix) -> None:
    """Each row of a fluid routing matrix must be a probability row.

    ``matrix`` is the n x n numpy split matrix the fluid substrate applies
    as ``demand @ matrix``; rows index source clusters. Same tolerance as
    :func:`check_routing_table` — the matrix is the vectorized form of the
    same rules.
    """
    for i, row in enumerate(matrix):
        total = 0.0
        for weight in row:
            value = float(weight)
            if not math.isfinite(value) or value < 0:
                raise InvariantViolation(
                    f"fluid routing matrix for service={service!r} "
                    f"class={traffic_class!r} has invalid weight {value!r} "
                    f"in row {i}")
            total += value
        if abs(total - 1.0) > ROW_SUM_TOLERANCE:
            raise InvariantViolation(
                f"fluid routing matrix for service={service!r} "
                f"class={traffic_class!r} row {i} sums to {total!r}, "
                f"expected 1 ± {ROW_SUM_TOLERANCE}")


def check_fluid_rates(traffic_class, rates) -> None:
    """Bulk flow rates must be finite and non-negative."""
    values = rates.flat if hasattr(rates, "flat") else rates
    for rate in values:
        value = float(rate)
        if not math.isfinite(value) or value < 0:
            raise InvariantViolation(
                f"fluid flow conservation violated for "
                f"class={traffic_class!r}: rate {value!r} is negative or "
                f"non-finite")


def check_pool_depths(pool) -> None:
    """A replica pool must never report negative occupancy."""
    if pool.busy_replicas < 0 or pool.queue_length < 0:
        raise InvariantViolation(
            f"negative queue depth at service={pool.service!r} "
            f"cluster={pool.cluster!r}: busy={pool.busy_replicas}, "
            f"queued={pool.queue_length}")
