"""``--changed-only`` support: the set of files touched since a base ref.

Both CLIs (:mod:`repro.devtools.lint` and :mod:`repro.devtools.analyze`)
accept ``--changed-only [BASE]`` so pre-commit runs stay fast as the tree
grows: the lint scopes which files it *checks*, the analyzer scopes which
findings it *reports* (its passes are whole-program by construction).
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["GitError", "changed_paths", "is_changed"]


class GitError(RuntimeError):
    """git was unavailable or the base ref did not resolve."""


def changed_paths(base: str = "HEAD",
                  cwd: str | Path | None = None) -> set[str]:
    """Repo files changed against ``base``, plus untracked files.

    Returns absolute, ``/``-normalized path strings (deleted files are
    skipped — there is nothing left to analyze).
    """
    root = Path(cwd) if cwd is not None else Path.cwd()
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", base, "--"],
            cwd=root, capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            cwd=root, capture_output=True, text=True, check=True)
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=root, capture_output=True, text=True, check=True)
    except FileNotFoundError as exc:
        raise GitError("git executable not found") from exc
    except subprocess.CalledProcessError as exc:
        detail = (exc.stderr or "").strip() or f"exit status {exc.returncode}"
        raise GitError(f"git diff against {base!r} failed: {detail}") \
            from exc
    repo_root = Path(top.stdout.strip())
    names = [n for n in diff.stdout.split("\0") if n]
    names.extend(n for n in untracked.stdout.split("\0") if n)
    paths: set[str] = set()
    for name in names:
        candidate = repo_root / name
        if candidate.exists():
            paths.add(str(candidate.resolve()).replace("\\", "/"))
    return paths


def is_changed(path: str | Path, changed: set[str]) -> bool:
    """Whether ``path`` (any spelling) is in a ``changed_paths`` result."""
    resolved = str(Path(path).resolve()).replace("\\", "/")
    return resolved in changed
