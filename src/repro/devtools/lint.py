"""AST lint runner and CLI.

Run over the tree with::

    python -m repro.devtools.lint src tests

Human-readable output by default, ``--format json`` for machines; exits
nonzero when any error-severity finding survives suppression. See
``docs/devtools.md`` for the rule catalogue.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .changes import GitError, changed_paths, is_changed
from .config import LintConfig
from .findings import Finding, Severity, Suppressions
from .rules import ALL_RULES, ModuleSource, Rule

__all__ = ["Linter", "build_parser", "lint_paths", "main"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache",
                        ".hypothesis", "build", "dist"})


def _iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


class Linter:
    """Applies the rule set to files, honouring config and suppressions."""

    def __init__(self, config: LintConfig | None = None,
                 rules: Sequence[type[Rule]] = ALL_RULES,
                 audit_suppressions: bool = False) -> None:
        self.config = config or LintConfig()
        self.rules: list[Rule] = [cls() for cls in rules
                                  if self.config.runs(cls.rule_id)]
        #: warn about `lint: ignore[...]` markers that silence nothing
        self.audit_suppressions = audit_suppressions
        #: files that failed to parse: (path, message)
        self.parse_errors: list[tuple[str, str]] = []

    def lint_source(self, source: str, path: str) -> list[Finding]:
        """Lint one in-memory module (fixtures, tests)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append((path, str(exc)))
            return []
        module = ModuleSource(path=path, tree=tree, source=source)
        suppressions = Suppressions(source)
        findings: dict[Finding, None] = {}
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            severity = self.config.severity_for(rule.rule_id,
                                                rule.default_severity)
            for found in rule.check(module):
                if suppressions.silences(found.line, found.rule):
                    continue
                if severity is not found.severity:
                    found = Finding(found.path, found.line, found.col,
                                    found.rule, severity, found.message)
                findings[found] = None
        if self.audit_suppressions:
            running = {rule.rule_id for rule in self.rules}
            for line, ids in suppressions.unused(running):
                label = ",".join(sorted(ids)) if ids else "all rules"
                findings[Finding(
                    path, line, 0, "SUP", Severity.WARNING,
                    f"unused suppression: `# lint: ignore` marker for "
                    f"{label} silences nothing on this line")] = None
        return sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                               f.rule, f.message))

    def lint_file(self, path: str | Path) -> list[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for path in _iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return findings


def lint_paths(paths: Iterable[str | Path],
               config: LintConfig | None = None) -> list[Finding]:
    """Convenience wrapper: lint files/directories with a fresh linter."""
    return Linter(config).lint_paths(paths)


def _render_text(findings: list[Finding],
                 parse_errors: list[tuple[str, str]]) -> str:
    lines = [f.render() for f in findings]
    lines.extend(f"{path}: parse error: {message}"
                 for path, message in parse_errors)
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings or parse_errors:
        lines.append(f"{errors} error(s), {warnings} warning(s), "
                     f"{len(parse_errors)} unparseable file(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def _render_json(findings: list[Finding],
                 parse_errors: list[tuple[str, str]]) -> str:
    return json.dumps({
        "findings": [f.as_dict() for f in findings],
        "parse_errors": [{"path": p, "message": m}
                         for p, m in parse_errors],
        "error_count": sum(1 for f in findings
                           if f.severity is Severity.ERROR),
        "warning_count": sum(1 for f in findings
                             if f.severity is Severity.WARNING),
    }, indent=2)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Determinism & invariant lint for the SLATE repo.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--config", metavar="FILE",
                        help="JSON file with per-rule severity overrides")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run (e.g. D01,D03)")
    parser.add_argument("--audit-suppressions", action="store_true",
                        help="warn about `# lint: ignore` markers that "
                             "silence nothing")
    parser.add_argument("--changed-only", metavar="BASE", nargs="?",
                        const="HEAD", default=None,
                        help="lint only files changed against BASE "
                             "(default HEAD)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.rule_id}  {cls.summary}")
        return 0
    try:
        config = (LintConfig.from_file(args.config) if args.config
                  else LintConfig())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        config.select = frozenset(s.strip() for s in args.select.split(",")
                                  if s.strip())
        known = {cls.rule_id for cls in ALL_RULES}
        unknown = sorted(config.select - known)
        if unknown:
            print(f"error: unknown rule id(s) in --select: "
                  f"{', '.join(unknown)} (see --list-rules)",
                  file=sys.stderr)
            return 2
    linter = Linter(config, audit_suppressions=args.audit_suppressions)
    try:
        targets: Iterable[str | Path] = args.paths
        if args.changed_only is not None:
            changed = changed_paths(args.changed_only)
            targets = [p for p in _iter_python_files(args.paths)
                       if is_changed(p, changed)]
        findings = linter.lint_paths(targets)
    except GitError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_render_json(findings, linter.parse_errors))
    else:
        print(_render_text(findings, linter.parse_errors))
    failed = (linter.parse_errors
              or any(f.severity is Severity.ERROR for f in findings))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
