"""Lint configuration: per-rule severity overrides and rule selection.

Defaults treat every rule as an error (the determinism invariants are
load-bearing, not stylistic). A JSON config file can downgrade or disable
rules::

    {"severities": {"D04": "warning", "D06": "off"}}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Severity

__all__ = ["LintConfig"]


@dataclass
class LintConfig:
    """Runtime knobs for one lint invocation."""

    #: rule id → severity override; unlisted rules use their default
    severities: dict[str, Severity] = field(default_factory=dict)
    #: when set, only these rule ids run (``--select D01,D03``)
    select: frozenset[str] | None = None

    @classmethod
    def from_file(cls, path: str | Path) -> "LintConfig":
        """Load severity overrides from a JSON file."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: config root must be an object")
        severities: dict[str, Severity] = {}
        for rule, level in raw.get("severities", {}).items():
            try:
                severities[rule] = Severity(level)
            except ValueError:
                choices = ", ".join(s.value for s in Severity)
                raise ValueError(
                    f"{path}: invalid severity {level!r} for {rule} "
                    f"(choose from {choices})") from None
        return cls(severities=severities)

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        return self.severities.get(rule_id, default)

    def runs(self, rule_id: str) -> bool:
        """Whether a rule participates in this invocation at all."""
        if self.select is not None and rule_id not in self.select:
            return False
        return self.severity_for(rule_id, Severity.ERROR) is not Severity.OFF
