"""Architecture contracts (A04–A06): layering, cycles, dead public API.

The repo's package layout encodes an architecture: the simulation
substrate must not know about observability or fault injection, the
observability layer must not know about fault injection, and the dev
tooling must not import the runtime at module scope (the runtime imports
*it* for the invariant hooks). :class:`LayerSpec` states those rules as
data — checkable, diffable, overridable from a JSON file — and the pass
enforces them over the parsed import graph:

* **A04** — a module imports a package its layer forbids (findings land
  on the import line, so an intentional deferred import can carry a
  per-line suppression with its rationale);
* **A05** — an import cycle among eager imports;
* **A06** — a name exported via ``__all__`` that no code in ``src``,
  ``tests``, ``examples``, or ``benchmarks`` ever references (re-export
  chains through package ``__init__`` are followed, so a symbol used
  only via ``from repro.obs import X`` still counts as used).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path

from ..findings import Finding, Severity
from .project import Project, ProjectModule, SourceFile, import_cycles
from .symbols import SymbolTable

__all__ = ["LayerRule", "LayerSpec", "check_cycles", "check_dead_api",
           "check_layering"]


@dataclass(frozen=True)
class LayerRule:
    """One layering constraint: ``package`` must not import ``forbid``."""

    package: str                 # module prefix the rule governs
    forbid: tuple[str, ...]      # prefixes it must not import
    allow_deferred: bool = False  # exempt function-body (lazy) imports


@dataclass(frozen=True)
class LayerSpec:
    """The declarative layering contract for one project."""

    rules: tuple[LayerRule, ...]

    @classmethod
    def default(cls) -> "LayerSpec":
        """The repo's architecture, as stated in docs/devtools.md."""
        runtime = ("repro.sim", "repro.mesh", "repro.core",
                   "repro.baselines", "repro.analysis",
                   "repro.experiments", "repro.obs", "repro.chaos")
        return cls(rules=(
            LayerRule("repro.sim", ("repro.obs", "repro.chaos")),
            # the fluid substrate gets its own (longest-prefix) entry so
            # the constraint survives any future relaxation of repro.sim:
            # bulk flows feed scrape/chaos through the same pool/gateway
            # interfaces the event path uses, never by importing upward
            LayerRule("repro.sim.fluid", ("repro.obs", "repro.chaos")),
            LayerRule("repro.mesh", ("repro.obs", "repro.chaos")),
            LayerRule("repro.core", ("repro.obs", "repro.chaos")),
            LayerRule("repro.baselines", ("repro.obs", "repro.chaos")),
            LayerRule("repro.obs", ("repro.chaos",)),
            LayerRule("repro.devtools", runtime),
        ))

    @classmethod
    def from_file(cls, path: str | Path) -> "LayerSpec":
        """Load a spec from JSON::

            {"rules": [{"package": "repro.sim",
                        "forbid": ["repro.obs", "repro.chaos"],
                        "allow_deferred": false}]}
        """
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or not isinstance(
                raw.get("rules"), list):
            raise ValueError(f"{path}: spec root must be an object with "
                             f"a 'rules' list")
        rules = []
        for entry in raw["rules"]:
            if not isinstance(entry, dict) or "package" not in entry:
                raise ValueError(f"{path}: each rule needs a 'package'")
            rules.append(LayerRule(
                package=str(entry["package"]),
                forbid=tuple(str(f) for f in entry.get("forbid", [])),
                allow_deferred=bool(entry.get("allow_deferred", False))))
        return cls(rules=tuple(rules))

    def rule_for(self, module: str) -> LayerRule | None:
        """The most specific rule whose package prefix covers ``module``."""
        best: LayerRule | None = None
        for rule in self.rules:
            if module == rule.package or module.startswith(
                    rule.package + "."):
                if best is None or len(rule.package) > len(best.package):
                    best = rule
        return best


def _prefix_match(module: str, prefixes: tuple[str, ...]) -> str | None:
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


def check_layering(project: Project, spec: LayerSpec) -> list[Finding]:
    """A04: every project-internal import edge against the layer spec."""
    findings: list[Finding] = []
    for edge in project.import_edges:
        rule = spec.rule_for(edge.src)
        if rule is None:
            continue
        if edge.deferred and rule.allow_deferred:
            continue
        hit = _prefix_match(edge.dst, rule.forbid)
        if hit is None:
            continue
        module = project.modules[edge.src]
        flavor = "deferred import of" if edge.deferred else "imports"
        findings.append(Finding(
            path=module.path, line=edge.line, col=0, rule="A04",
            severity=Severity.ERROR,
            message=(f"layering: `{edge.src}` {flavor} `{edge.dst}`, but "
                     f"layer `{rule.package}` must not depend on "
                     f"`{hit}`")))
    return sorted(findings)


def check_cycles(project: Project) -> list[Finding]:
    """A05: strongly connected components in the eager import graph."""
    findings: list[Finding] = []
    for cycle in import_cycles(project):
        anchor = project.modules[cycle[0]]
        findings.append(Finding(
            path=anchor.path, line=1, col=0, rule="A05",
            severity=Severity.ERROR,
            message=(f"import cycle among {len(cycle)} modules: "
                     f"{' <-> '.join(cycle)}")))
    return findings


# --------------------------------------------------------- dead public API

def _all_names(module: ProjectModule) -> list[tuple[str, int]]:
    """Literal ``__all__`` entries with the assignment's line number."""
    names: list[tuple[str, int]] = []
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = stmt.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    for element in value.elts:
                        if (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            names.append((element.value, stmt.lineno))
    return names


def _def_line(module: ProjectModule, name: str, fallback: int) -> int:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and stmt.name == name:
            return stmt.lineno
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.lineno
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name):
            return stmt.lineno
    return fallback


class _UsageIndex:
    """Canonical symbols referenced by loads anywhere in the repo.

    Import statements alone do not count as uses (a package ``__init__``
    re-exporting a symbol must not keep it alive); a ``Name`` or
    ``Attribute`` *load* anywhere — src, tests, examples, benchmarks —
    does. ``from m import *`` conservatively uses everything ``m``
    exports.
    """

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.project = symbols.project
        self.used: set[tuple[str, str]] = set()

    def scan_project_module(self, module: ProjectModule) -> None:
        bindings = self._import_bindings(module.tree, module)
        # loads of a module's own top-level defs count as uses too: an
        # export referenced only by a sibling in its module is not dead
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bindings.setdefault(
                    stmt.name, ("symbol", f"{module.name}:{stmt.name}"))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and not target.id.startswith("__")):
                        bindings.setdefault(
                            target.id,
                            ("symbol", f"{module.name}:{target.id}"))
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)
                  and not stmt.target.id.startswith("__")):
                bindings.setdefault(
                    stmt.target.id,
                    ("symbol", f"{module.name}:{stmt.target.id}"))
        self._scan_tree(module.tree, bindings)

    def scan_consumer(self, consumer: SourceFile) -> None:
        bindings = self._import_bindings(consumer.tree, None)
        self._scan_tree(consumer.tree, bindings)

    # ------------------------------------------------------------- helpers

    def _import_bindings(self, tree: ast.Module,
                         module: ProjectModule | None
                         ) -> dict[str, tuple[str, str]]:
        """local alias → ("module", m) | ("symbol", "mod:name")."""
        bindings: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    if target in self.project.modules:
                        bindings[local] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node, module)
                if base is None or base not in self.project.modules:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        self._use_star(base)
                        continue
                    local = alias.asname or alias.name
                    submodule = f"{base}.{alias.name}"
                    if submodule in self.project.modules:
                        bindings[local] = ("module", submodule)
                    else:
                        bindings[local] = ("symbol",
                                           f"{base}:{alias.name}")
        return bindings

    def _from_base(self, node: ast.ImportFrom,
                   module: ProjectModule | None) -> str | None:
        if node.level == 0:
            return node.module
        if module is None:
            return None
        return self.project.resolve_from_base(module, node)

    def _use_star(self, module_name: str) -> None:
        module = self.project.modules[module_name]
        for name, _ in _all_names(module):
            self._record(module_name, name)

    def _record(self, module_name: str, name: str) -> None:
        self.used.add(self.symbols.canonical(module_name, name))

    def _scan_tree(self, tree: ast.Module,
                   bindings: dict[str, tuple[str, str]]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                         ast.Load):
                binding = bindings.get(node.id)
                if binding is None:
                    continue
                kind, target = binding
                if kind == "symbol":
                    base, name = target.split(":", 1)
                    self._record(base, name)
                else:
                    # loading a module alias uses the module itself
                    self.used.add((target, ""))
            elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, (ast.Load, ast.Store, ast.Del)):
                self._scan_attribute(node, bindings)

    def _scan_attribute(self, node: ast.Attribute,
                        bindings: dict[str, tuple[str, str]]) -> None:
        # resolve `alias.attr.attr...` to the longest module prefix, then
        # record the next attribute as a use of that module's symbol
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return
        binding = bindings.get(cursor.id)
        if binding is None or binding[0] != "module":
            return
        chain.reverse()
        current = binding[1]
        for index, attr in enumerate(chain):
            child = f"{current}.{attr}"
            if child in self.project.modules:
                self.used.add((child, ""))
                current = child
                continue
            self._record(current, attr)
            return


def check_dead_api(symbols: SymbolTable) -> list[Finding]:
    """A06: ``__all__`` names nothing in the repo ever references."""
    project = symbols.project
    index = _UsageIndex(symbols)
    for module in project.sorted_modules():
        index.scan_project_module(module)
    for consumer in project.consumers:
        index.scan_consumer(consumer)

    findings: list[Finding] = []
    reported: set[tuple[str, str]] = set()
    for module in project.sorted_modules():
        for name, all_line in _all_names(module):
            if name.startswith("_"):
                continue
            canon = symbols.canonical(module.name, name)
            submodule = f"{module.name}.{name}"
            if submodule in project.modules:
                canon_key = (submodule, "")
            else:
                canon_key = canon
            if canon_key in index.used or canon_key in reported:
                continue
            reported.add(canon_key)
            defining = project.modules.get(canon[0], module)
            line = _def_line(defining, canon[1] or name, 0)
            if line == 0:
                # no definition in the canonical module (the chain ends at
                # an import binding): point at the __all__ export instead
                defining, line = module, all_line
            findings.append(Finding(
                path=defining.path, line=line, col=0, rule="A06",
                severity=Severity.ERROR,
                message=(f"dead public API: `{module.name}.{name}` is "
                         f"exported via __all__ but never referenced "
                         f"from src, tests, examples, or benchmarks")))
    return sorted(findings)
