"""Orchestration: parse once, run the three passes, apply suppressions.

:class:`FlowAnalyzer` is the façade the CLI (and tests) drive. It owns
the pass configuration — purity contracts, taint sinks, the layer spec —
so fixture projects can swap any of them out, and applies the same
per-line ``# lint: ignore[Axx]`` suppression machinery the AST linter
uses, plus the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..findings import Finding
from .baseline import Baseline, BaselineEntry
from .contracts import (LayerSpec, check_cycles, check_dead_api,
                        check_layering)
from .project import Project
from .purity import (DEFAULT_PURITY_CONTRACTS, PurityContract, WriteSets,
                     check_purity_contracts)
from .symbols import SymbolTable
from .taint import DEFAULT_SINKS, TaintSink, check_taint

__all__ = ["ANALYZER_RULES", "AnalysisResult", "FlowAnalyzer"]

#: rule catalogue for --list-rules / --select validation
ANALYZER_RULES: dict[str, str] = {
    "A01": "obs entrypoint may write simulator/mesh/controller state",
    "A02": "chaos harness may mutate the shared scenario object",
    "A03": "nondeterminism flows into a sim-visible sink",
    "A04": "module imports a package its layer forbids",
    "A05": "import cycle among eager imports",
    "A06": "dead public API: __all__ name never referenced",
}


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: module/function counts for reporting
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        from ..findings import Severity
        return bool(self.parse_errors) or any(
            f.severity is Severity.ERROR for f in self.findings)


class FlowAnalyzer:
    """Run the purity, taint, and contract passes over one project."""

    def __init__(self, project: Project, *,
                 purity_contracts: tuple[PurityContract, ...]
                 = DEFAULT_PURITY_CONTRACTS,
                 taint_sinks: Iterable[TaintSink] = DEFAULT_SINKS,
                 layer_spec: LayerSpec | None = None) -> None:
        self.project = project
        self.purity_contracts = purity_contracts
        self.taint_sinks = tuple(taint_sinks)
        self.layer_spec = layer_spec or LayerSpec.default()
        self.symbols = SymbolTable(project)

    def run(self, select: frozenset[str] | None = None,
            baseline: Baseline | None = None,
            changed_paths: set[str] | None = None) -> AnalysisResult:
        """All selected passes; suppressions, baseline, change scoping.

        ``changed_paths`` (normalized path strings) limits *reported*
        findings to those files — the analysis itself is always whole
        program, because that is the point.
        """

        def runs(rule: str) -> bool:
            return select is None or rule in select

        raw: list[Finding] = []
        if runs("A01") or runs("A02"):
            write_sets = WriteSets(self.symbols)
            contracts = tuple(c for c in self.purity_contracts
                              if runs(c.rule))
            raw.extend(check_purity_contracts(
                self.symbols, contracts, write_sets))
        if runs("A03"):
            raw.extend(check_taint(self.symbols, self.taint_sinks))
        if runs("A04"):
            raw.extend(check_layering(self.project, self.layer_spec))
        if runs("A05"):
            raw.extend(check_cycles(self.project))
        if runs("A06"):
            raw.extend(check_dead_api(self.symbols))

        result = AnalysisResult(parse_errors=list(self.project.parse_errors))
        result.stats = {
            "modules": len(self.project.modules),
            "functions": len(self.symbols.functions),
            "classes": len(self.symbols.classes),
            "import_edges": len(self.project.import_edges),
            "consumer_files": len(self.project.consumers),
        }

        visible: list[Finding] = []
        for finding in sorted(set(raw), key=lambda f: (
                f.path, f.line, f.col, f.rule, f.message)):
            module = self.project.module_for_path(finding.path)
            if module is not None and module.suppressions.silences(
                    finding.line, finding.rule):
                result.suppressed += 1
                continue
            visible.append(finding)

        if baseline is not None:
            fresh, known, stale = baseline.split(visible)
            result.baselined = known
            result.stale_baseline = stale
            visible = fresh

        if changed_paths is not None:
            visible = [f for f in visible
                       if f.path.replace("\\", "/") in changed_paths]

        result.findings = visible
        return result
