"""Committed finding baselines: grandfather known findings with rationale.

A whole-program analyzer lands on a tree that already exists, so it needs
a way to adopt the contract without a flag day: triage each pre-existing
finding, record the intentional ones in a committed baseline file with a
reason, and gate CI on *new* findings only. Baseline entries match on
``(rule, path, message)`` — deliberately not on line numbers, which shift
on every edit; analyzer messages therefore never embed line numbers.

Workflow::

    python -m repro.devtools.analyze src --write-baseline   # adopt
    $EDITOR analyze-baseline.json                           # add reasons
    python -m repro.devtools.analyze src                    # gates on new

Stale entries (baselined findings that no longer fire) are reported so
the file shrinks as violations get fixed for real.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One grandfathered finding, with its triage rationale."""

    rule: str
    path: str
    message: str
    reason: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: dict[tuple[str, str, str], BaselineEntry] = field(
        default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      reason: str = "TODO: triage") -> "Baseline":
        entries = {}
        for finding in findings:
            entry = BaselineEntry(rule=finding.rule, path=finding.path,
                                  message=finding.message, reason=reason)
            entries[entry.key] = entry
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or not isinstance(
                raw.get("entries"), list):
            raise ValueError(f"{path}: baseline root must be an object "
                             f"with an 'entries' list")
        entries = {}
        for item in raw["entries"]:
            entry = BaselineEntry(
                rule=str(item.get("rule", "")),
                path=str(item.get("path", "")),
                message=str(item.get("message", "")),
                reason=str(item.get("reason", "")))
            entries[entry.key] = entry
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "schema_version": _SCHEMA_VERSION,
            "entries": [
                {"rule": e.rule, "path": e.path, "message": e.message,
                 "reason": e.reason}
                for e in sorted(self.entries.values())
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition into (new, grandfathered, stale-baseline-entries)."""
        fresh: list[Finding] = []
        known: list[Finding] = []
        hit: set[tuple[str, str, str]] = set()
        for finding in findings:
            key = (finding.rule, finding.path, finding.message)
            if key in self.entries:
                known.append(finding)
                hit.add(key)
            else:
                fresh.append(finding)
        stale = sorted(entry for key, entry in self.entries.items()
                       if key not in hit)
        return fresh, known, stale

    def __len__(self) -> int:
        return len(self.entries)
