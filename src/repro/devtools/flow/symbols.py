"""Name resolution and the intra-project call graph.

Built on top of :class:`~repro.devtools.flow.project.Project`:

* a **symbol table** per module — every local name mapped to the project
  module or the fully qualified class/function it binds, following
  package ``__init__`` re-export chains to the defining module;
* **class info** — methods, project base classes, and field types
  harvested from dataclass annotations and ``__init__`` assignments;
* **local type inference** per function — parameter annotations,
  ``x = ClassName(...)`` constructor assignments, annotated assignments,
  and builtin-container literals (so ``seen = set()`` is never confused
  with a project object);
* **call resolution** — direct calls, module-attribute calls,
  ``self.method()``, typed-receiver method calls, and a capped
  class-hierarchy-analysis fallback by method name when the receiver
  type is unknown.

The purity and taint passes both consume this one resolved view, which
is what lets them see flows whose source and sink live in different
modules — the whole point of the analyzer over the per-line lints.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .project import Project, ProjectModule

__all__ = ["BUILTIN", "ClassInfo", "FunctionInfo", "SymbolTable",
           "dotted_name"]

#: sentinel "type" for builtin containers/scalars — receivers of this
#: type never resolve to project methods, killing the CHA noise that
#: ``seen.add(...)`` on a local set would otherwise produce
BUILTIN = "<builtin>"

#: receiver-less CHA: give up when a method name is defined on more than
#: this many project classes (the edge set would be meaningless)
_CHA_CAP = 12

_MAPPING_TYPES = frozenset({"dict", "defaultdict", "OrderedDict",
                            "Counter", "Mapping", "MutableMapping"})

_SEQUENCE_TYPES = frozenset({"list", "set", "frozenset", "tuple", "deque",
                             "Sequence", "Iterable", "Iterator",
                             "MutableSequence", "Collection"})

#: dict methods whose return is (possibly) an element of the receiver
_ELEMENT_GETTERS = frozenset({"get", "setdefault", "pop"})

_BUILTIN_FACTORIES = frozenset({
    "list", "dict", "set", "frozenset", "tuple", "str", "int", "float",
    "bool", "bytes", "bytearray", "sorted", "reversed", "enumerate",
    "zip", "map", "filter", "range", "len", "sum", "min", "max", "abs",
    "round", "repr", "format", "defaultdict", "OrderedDict", "Counter",
    "deque", "namedtuple",
})


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` → that string; None for non-name chains."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    names.append(node.id)
    return ".".join(reversed(names))


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qualname: str          # repro.sim.engine.Simulator.schedule
    module: str            # defining module's dotted name
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # owning class qualname for methods

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names.extend(a.arg for a in args.args)
        if args.vararg is not None:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One project class: methods, bases, and inferred field types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: project base-class qualnames (external bases are dropped)
    bases: list[str] = field(default_factory=list)
    #: field name → possible class qualnames (or BUILTIN)
    fields: dict[str, frozenset[str]] = field(default_factory=dict)
    #: container field name → element class qualnames, so objects pulled
    #: out of `self._states[key]` / `.get(key)` keep their type
    elements: dict[str, frozenset[str]] = field(default_factory=dict)


class SymbolTable:
    """Whole-program symbol and call resolution over one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: module → local name → ("module", name) | ("symbol", qualname)
        self.bindings: dict[str, dict[str, tuple[str, str]]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: raw import aliases per module: local → (base module, orig name)
        self._imports: dict[str, dict[str, tuple[str, str | None]]] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._fields_by_name: dict[str, set[str]] = {}
        self._canonical_memo: dict[tuple[str, str], tuple[str, str]] = {}
        self._build()

    # ------------------------------------------------------------ building

    def _build(self) -> None:
        for module in self.project.sorted_modules():
            self._collect_defs(module)
            self._collect_imports(module)
        for module in self.project.sorted_modules():
            self._resolve_bindings(module)
        for cls in self.classes.values():
            self._resolve_bases(cls)
        for cls in self.classes.values():
            self._infer_fields(cls)
        for cls in self.classes.values():
            for name, info in cls.methods.items():
                self._methods_by_name.setdefault(name, []).append(info)
            for fname in cls.fields:
                self._fields_by_name.setdefault(fname, set()).add(
                    cls.qualname)

    def _collect_defs(self, module: ProjectModule) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.name}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module.name, name=stmt.name,
                    node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{module.name}.{stmt.name}"
                info = ClassInfo(qualname=cls_qual, module=module.name,
                                 name=stmt.name, node=stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        method_qual = f"{cls_qual}.{sub.name}"
                        method = FunctionInfo(
                            qualname=method_qual, module=module.name,
                            name=sub.name, node=sub, cls=cls_qual)
                        info.methods[sub.name] = method
                        self.functions[method_qual] = method
                self.classes[cls_qual] = info

    def _collect_imports(self, module: ProjectModule) -> None:
        imports: dict[str, tuple[str, str | None]] = {}
        for stmt in ast.walk(module.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    imports[local] = (target, None)
            elif isinstance(stmt, ast.ImportFrom):
                base = self.project.resolve_from_base(module, stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = (base, alias.name)
        self._imports[module.name] = imports

    def _resolve_bindings(self, module: ProjectModule) -> None:
        table: dict[str, tuple[str, str]] = {}
        for qualname, info in self.functions.items():
            if info.module == module.name and info.cls is None:
                table[info.name] = ("symbol", qualname)
        for qualname, cls in self.classes.items():
            if cls.module == module.name:
                table[cls.name] = ("symbol", qualname)
        for local, (base, orig) in self._imports[module.name].items():
            resolved = self._resolve_import_binding(base, orig)
            if resolved is not None:
                table[local] = resolved
        self.bindings[module.name] = table

    def _resolve_import_binding(self, base: str, orig: str | None
                                ) -> tuple[str, str] | None:
        if orig is None:
            # plain `import x.y` — binds a module (or nothing of ours)
            return ("module", base) if base in self.project.modules else None
        submodule = f"{base}.{orig}"
        if submodule in self.project.modules:
            return ("module", submodule)
        if base in self.project.modules:
            target_module, target_name = self.canonical(base, orig)
            qualname = f"{target_module}.{target_name}"
            if qualname in self.functions or qualname in self.classes:
                return ("symbol", qualname)
            if f"{target_module}.{target_name}" in self.project.modules:
                return ("module", f"{target_module}.{target_name}")
            # name exists only dynamically (PEP 562 __getattr__, module
            # globals): keep the package-level identity
            return ("symbol", qualname)
        return None

    def canonical(self, module: str, name: str) -> tuple[str, str]:
        """Follow re-export chains to the defining ``(module, name)``."""
        memo = self._canonical_memo
        seen: set[tuple[str, str]] = set()
        current = (module, name)
        chain: list[tuple[str, str]] = []
        while True:
            if current in memo:
                result = memo[current]
                break
            if current in seen:
                result = current
                break
            seen.add(current)
            chain.append(current)
            mod, nm = current
            qualname = f"{mod}.{nm}"
            if qualname in self.functions or qualname in self.classes:
                result = current
                break
            if qualname in self.project.modules:
                result = current
                break
            imported = self._imports.get(mod, {}).get(nm)
            if imported is None:
                result = current
                break
            base, orig = imported
            if orig is None:
                result = (base, "") if base in self.project.modules \
                    else current
                break
            submodule = f"{base}.{orig}"
            if submodule in self.project.modules:
                result = (base, orig)
                break
            if base not in self.project.modules:
                result = current
                break
            current = (base, orig)
        for link in chain:
            memo[link] = result
        return result

    def _resolve_bases(self, cls: ClassInfo) -> None:
        for base in cls.node.bases:
            resolved = self.resolve_annotation(cls.module, base)
            cls.bases.extend(q for q in sorted(resolved)
                             if q in self.classes)

    def _infer_fields(self, cls: ClassInfo) -> None:
        fields: dict[str, set[str]] = {}
        elements: dict[str, set[str]] = {}
        for stmt in cls.node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                types = self.resolve_annotation(cls.module, stmt.annotation)
                if types:
                    fields.setdefault(stmt.target.id, set()).update(types)
                elts = self.annotation_elements(cls.module, stmt.annotation)
                if elts:
                    elements.setdefault(stmt.target.id, set()).update(elts)
        init = cls.methods.get("__init__")
        if init is not None:
            param_types = self._param_annotation_types(init)
            for stmt in ast.walk(init.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        types = self.resolve_annotation(cls.module,
                                                        stmt.annotation)
                        if types:
                            fields.setdefault(target.attr, set()).update(
                                types)
                        elts = self.annotation_elements(cls.module,
                                                        stmt.annotation)
                        if elts:
                            elements.setdefault(target.attr, set()).update(
                                elts)
                if (target is None or value is None
                        or not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"):
                    continue
                types = self._value_types(cls.module, value, param_types)
                if types:
                    fields.setdefault(target.attr, set()).update(types)
                elts = self._value_elements(cls.module, value, param_types)
                if elts:
                    elements.setdefault(target.attr, set()).update(elts)
        # `self.field[key] = Thing(...)` anywhere in the class also
        # populates the container's element types
        for method in cls.methods.values():
            param_types = self._param_annotation_types(method)
            for stmt in ast.walk(method.node):
                if not (isinstance(stmt, ast.Assign) and stmt.targets):
                    continue
                for target in stmt.targets:
                    if not (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and isinstance(target.value.value, ast.Name)
                            and target.value.value.id == "self"):
                        continue
                    types = self._value_types(cls.module, stmt.value,
                                              param_types)
                    if types - {BUILTIN}:
                        elements.setdefault(
                            target.value.attr, set()).update(
                                types - {BUILTIN})
        cls.fields = {name: frozenset(types)
                      for name, types in fields.items()}
        cls.elements = {name: frozenset(types)
                        for name, types in elements.items()
                        if types - {BUILTIN}}

    # --------------------------------------------------------- type lookup

    def resolve_annotation(self, module: str,
                           node: ast.expr | None) -> frozenset[str]:
        """Class qualnames (or BUILTIN) an annotation may denote."""
        if node is None:
            return frozenset()
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                try:
                    parsed = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return frozenset()
                return self.resolve_annotation(module, parsed)
            return frozenset()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.resolve_annotation(module, node.left)
                    | self.resolve_annotation(module, node.right))
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base and base.split(".")[-1] in ("Optional", "Union"):
                inner = node.slice
                elements = (inner.elts if isinstance(inner, ast.Tuple)
                            else [inner])
                out: set[str] = set()
                for element in elements:
                    out |= self.resolve_annotation(module, element)
                return frozenset(out)
            return frozenset({BUILTIN})   # list[T], dict[K, V], ...
        dotted = dotted_name(node)
        if dotted is None:
            return frozenset()
        resolved = self._resolve_dotted_symbol(module, dotted)
        if resolved is not None and resolved in self.classes:
            return frozenset({resolved})
        if dotted.split(".")[-1] in _BUILTIN_FACTORIES or dotted in (
                "None", "object", "Any"):
            return frozenset({BUILTIN})
        return frozenset()

    def annotation_elements(self, module: str,
                            node: ast.expr | None) -> frozenset[str]:
        """Element classes of a container annotation.

        ``dict[K, V]`` → classes of ``V``; ``list[T]`` → classes of
        ``T``; unions recurse. Only project classes are kept.
        """
        if node is None:
            return frozenset()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return frozenset()
            return self.annotation_elements(module, parsed)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self.annotation_elements(module, node.left)
                    | self.annotation_elements(module, node.right))
        if not isinstance(node, ast.Subscript):
            return frozenset()
        base = dotted_name(node.value)
        if base is None:
            return frozenset()
        last = base.split(".")[-1]
        inner = node.slice
        if last in ("Optional", "Union"):
            branches = (inner.elts if isinstance(inner, ast.Tuple)
                        else [inner])
            out: set[str] = set()
            for branch in branches:
                out |= self.annotation_elements(module, branch)
            return frozenset(out)
        if last in _MAPPING_TYPES:
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return self.resolve_annotation(
                    module, inner.elts[1]) - {BUILTIN}
            return frozenset()
        if last in _SEQUENCE_TYPES:
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            out = set()
            for elt in elts:
                out |= self.resolve_annotation(module, elt)
            return frozenset(out - {BUILTIN})
        return frozenset()

    def _value_elements(self, module: str, value: ast.expr,
                        env: dict[str, frozenset[str]]) -> frozenset[str]:
        """Element classes of a container-building RHS expression."""
        sources: list[ast.expr] = []
        if isinstance(value, ast.Dict):
            sources = [v for v in value.values if v is not None]
        elif isinstance(value, (ast.List, ast.Set, ast.Tuple)):
            sources = list(value.elts)
        elif isinstance(value, ast.DictComp):
            sources = [value.value]
        elif isinstance(value, (ast.ListComp, ast.SetComp)):
            sources = [value.elt]
        out: set[str] = set()
        for source in sources:
            out |= self._value_types(module, source, env)
        return frozenset(out - {BUILTIN})

    def _resolve_dotted_symbol(self, module: str,
                               dotted: str) -> str | None:
        """Resolve ``alias.attr...`` through this module's bindings."""
        parts = dotted.split(".")
        binding = self.bindings.get(module, {}).get(parts[0])
        if binding is None:
            return None
        kind, target = binding
        if kind == "symbol":
            return target if len(parts) == 1 else None
        current = target
        for index, attr in enumerate(parts[1:], start=1):
            child = f"{current}.{attr}"
            if child in self.project.modules:
                current = child
                continue
            target_module, target_name = self.canonical(current, attr)
            qualname = f"{target_module}.{target_name}"
            if index == len(parts) - 1:
                return qualname
            if qualname in self.project.modules:
                current = qualname
                continue
            return None
        return current

    def _param_annotation_types(self, func: FunctionInfo
                                ) -> dict[str, frozenset[str]]:
        types: dict[str, frozenset[str]] = {}
        args = func.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                resolved = self.resolve_annotation(func.module,
                                                   arg.annotation)
                if resolved:
                    types[arg.arg] = resolved
        return types

    def _value_types(self, module: str, value: ast.expr,
                     env: dict[str, frozenset[str]]) -> frozenset[str]:
        """Types of a RHS expression: constructor calls, typed names."""
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                resolved = self._resolve_dotted_symbol(module, dotted)
                if resolved is not None and resolved in self.classes:
                    return frozenset({resolved})
                if resolved is not None and resolved in self.functions:
                    return self.return_types(self.functions[resolved])
                if dotted.split(".")[-1] in _BUILTIN_FACTORIES:
                    return frozenset({BUILTIN})
            return frozenset()
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                              ast.ListComp, ast.DictComp, ast.SetComp,
                              ast.GeneratorExp, ast.JoinedStr)):
            return frozenset({BUILTIN})
        if isinstance(value, ast.Constant):
            return frozenset({BUILTIN})
        if isinstance(value, ast.Name):
            return env.get(value.id, frozenset())
        return frozenset()

    def return_types(self, func: FunctionInfo) -> frozenset[str]:
        """Types from the return annotation (classes or BUILTIN)."""
        return self.resolve_annotation(func.module, func.node.returns)

    # ------------------------------------------------- per-function context

    def local_types(self, func: FunctionInfo) -> dict[str, frozenset[str]]:
        """Best-effort local variable types for one function body."""
        env: dict[str, frozenset[str]] = dict(
            self._param_annotation_types(func))
        if func.cls is not None:
            env["self"] = frozenset({func.cls})
        for stmt in ast.walk(func.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                # `for workload in problem.workloads.values():` — type the
                # loop variable from the container's element classes
                if isinstance(stmt.target, ast.Name):
                    types = self._iter_element_types(func, stmt.iter, env)
                    if types:
                        env[stmt.target.id] = env.get(
                            stmt.target.id, frozenset()) | types
                continue
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
                if isinstance(stmt.target, ast.Name):
                    annotated = self.resolve_annotation(func.module,
                                                        stmt.annotation)
                    if annotated:
                        env[stmt.target.id] = env.get(
                            stmt.target.id, frozenset()) | annotated
            names = [t for t in targets if isinstance(t, ast.Name)]
            if not names or value is None:
                continue
            types = self._value_types(func.module, value, env)
            if not types and isinstance(value,
                                        (ast.Call, ast.Attribute,
                                         ast.Subscript)):
                # `store = self.store` / `latency = registry.histogram(...)`
                # / `state = self._states[key]` — flow field, element, and
                # return-annotation types into the local
                types = self.expr_types(func, value, env)
            if types:
                for name in names:
                    env[name.id] = env.get(name.id, frozenset()) | types
        return env

    def expr_types(self, func: FunctionInfo, expr: ast.expr,
                   env: dict[str, frozenset[str]]) -> frozenset[str]:
        """Possible classes of an expression (receiver inference)."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            base_types = self.expr_types(func, expr.value, env)
            out: set[str] = set()
            for base in base_types:
                if base == BUILTIN:
                    continue
                for cls in self._mro(base):
                    fields = self.classes[cls].fields
                    if expr.attr in fields:
                        out.update(fields[expr.attr])
                        break
            if out:
                return frozenset(out)
            # `mod.attr` where mod is a module alias: a symbol, not an
            # instance; expr_types is about instances so return nothing
            return frozenset()
        if isinstance(expr, ast.Subscript):
            # `self._states[key]` → the container field's element types
            return self.container_elements(func, expr.value, env)
        if isinstance(expr, ast.Call):
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in _ELEMENT_GETTERS):
                out = set(self.container_elements(func, expr.func.value,
                                                  env))
                if len(expr.args) >= 2:   # `.get(key, default)`
                    out |= self.expr_types(func, expr.args[1], env)
                if out - {BUILTIN}:
                    return frozenset(out - {BUILTIN})
            dotted = dotted_name(expr.func)
            if dotted is not None:
                if dotted == "cls" and func.cls is not None:
                    # `cls(...)` in a classmethod builds an instance of
                    # the enclosing class
                    return frozenset({func.cls})
                resolved = self._resolve_dotted_symbol(func.module, dotted)
                if resolved is not None and resolved in self.classes:
                    return frozenset({resolved})
                if dotted.split(".")[-1] in _BUILTIN_FACTORIES:
                    return frozenset({BUILTIN})
            callees = self.resolve_call(func, expr, env)
            out = set()
            for callee in callees:
                out |= self.return_types(callee)
            return frozenset(out)
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                             ast.ListComp, ast.DictComp, ast.SetComp,
                             ast.GeneratorExp, ast.Constant,
                             ast.JoinedStr)):
            return frozenset({BUILTIN})
        return frozenset()

    def _iter_element_types(self, func: FunctionInfo, iter_expr: ast.expr,
                            env: dict[str, frozenset[str]]
                            ) -> frozenset[str]:
        """Element classes of a ``for`` iterable, if statically known."""
        if (isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr == "values"
                and not iter_expr.args):
            return self.container_elements(func, iter_expr.func.value, env)
        return frozenset()

    def container_elements(self, func: FunctionInfo, container: ast.expr,
                           env: dict[str, frozenset[str]]
                           ) -> frozenset[str]:
        """Element classes of a container-valued expression, if known."""
        if not isinstance(container, ast.Attribute):
            return frozenset()
        owners = self.expr_types(func, container.value, env)
        out: set[str] = set()
        for owner in sorted(owners - {BUILTIN}):
            for cls in self._mro(owner):
                elements = self.classes[cls].elements
                if container.attr in elements:
                    out.update(elements[container.attr])
                    break
        return frozenset(out)

    def _mro(self, cls_qualname: str) -> Iterator[str]:
        """The class and its project bases, breadth-first, deduplicated."""
        seen: set[str] = set()
        queue = [cls_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            yield current
            queue.extend(self.classes[current].bases)

    def lookup_method(self, cls_qualname: str,
                      name: str) -> FunctionInfo | None:
        for cls in self._mro(cls_qualname):
            method = self.classes[cls].methods.get(name)
            if method is not None:
                return method
        return None

    # ------------------------------------------------------ call resolution

    def resolve_call(self, func: FunctionInfo, node: ast.Call,
                     env: dict[str, frozenset[str]]) -> list[FunctionInfo]:
        """Project functions a call may reach (empty when external)."""
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id == "cls" and func.cls is not None:
                return self._symbol_callees(func.cls)
            binding = self.bindings.get(func.module, {}).get(callee.id)
            if binding is None:
                return []
            kind, target = binding
            if kind != "symbol":
                return []
            return self._symbol_callees(target)
        if not isinstance(callee, ast.Attribute):
            return []
        # module-attribute call: `engine.foo()` / `repro.sim.engine.foo()`
        dotted = dotted_name(callee)
        if dotted is not None:
            resolved = self._resolve_dotted_symbol(func.module, dotted)
            if resolved is not None:
                hits = self._symbol_callees(resolved)
                if hits:
                    return hits
        receiver_types = self.expr_types(func, callee.value, env)
        if BUILTIN in receiver_types and len(receiver_types) == 1:
            return []
        hits = []
        for cls in sorted(receiver_types - {BUILTIN}):
            method = self.lookup_method(cls, callee.attr)
            if method is not None:
                hits.append(method)
        if hits:
            return hits
        if receiver_types - {BUILTIN}:
            return []   # typed receiver, method not in project: external
        # unknown receiver: class-hierarchy fallback by method name
        candidates = self._methods_by_name.get(callee.attr, [])
        if 0 < len(candidates) <= _CHA_CAP:
            return list(candidates)
        return []

    def _symbol_callees(self, qualname: str) -> list[FunctionInfo]:
        if qualname in self.functions:
            return [self.functions[qualname]]
        if qualname in self.classes:
            init = self.lookup_method(qualname, "__init__")
            if init is not None:
                return [init]
        return []

    def classes_with_field(self, attr: str) -> frozenset[str]:
        """Project classes declaring a field named ``attr`` (CHA on writes)."""
        return frozenset(self._fields_by_name.get(attr, ()))

    def call_edges(self, func: FunctionInfo
                   ) -> Iterator[tuple[ast.Call, list[FunctionInfo]]]:
        """Every call in the body with its resolved project callees.

        Nested function bodies (closures like epoch hooks) are included:
        their effects belong to the enclosing function for the purposes
        of the purity and taint passes.
        """
        env = self.local_types(func)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(func, node, env)
