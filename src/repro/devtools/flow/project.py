"""Whole-program parse: the project's module set and import graph.

A :class:`Project` parses every ``*.py`` under one or more roots exactly
once and derives, for each module, its dotted name (``repro.sim.engine``),
its AST, its per-line lint suppressions, and its imports of *other project
modules*. Import edges distinguish eager (module/class body) from
deferred (function body) imports, because the layering contracts treat
them differently and only eager edges can participate in import cycles.

Everything downstream — the call graph, the purity and taint passes, the
architecture contracts — works off this one parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Callable, Iterable, Iterator

from ..findings import Suppressions

__all__ = ["ImportEdge", "Project", "ProjectModule", "SourceFile",
           "import_cycles"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache",
                        ".hypothesis", "build", "dist"})


@dataclass(frozen=True, order=True)
class ImportEdge:
    """One project-internal import: ``src`` imports ``dst``."""

    src: str        # importing module (dotted name)
    dst: str        # imported project module (dotted name)
    line: int
    deferred: bool  # inside a function body (lazy import)


@dataclass
class SourceFile:
    """One parsed file that is *not* part of the analyzed package.

    Tests, examples, and benchmarks are parsed as consumers: their
    references keep public API alive, but no findings are raised on them.
    """

    path: str
    tree: ast.Module
    source: str


@dataclass
class ProjectModule:
    """One parsed module of the analyzed package."""

    name: str       # dotted module name, e.g. "repro.sim.engine"
    path: str       # path as given on the command line
    tree: ast.Module
    source: str
    suppressions: Suppressions
    is_package: bool  # True for __init__.py


def _norm(path: str | Path) -> str:
    return str(path).replace("\\", "/")


def _module_name(path: str, is_package_dir: Callable[[str], bool]) -> str:
    """Dotted module name for ``path``, ascending while parents are packages."""
    pure = PurePosixPath(_norm(path))
    if pure.name == "__init__.py":
        parts = [pure.parent.name]
        cursor = pure.parent.parent
    else:
        parts = [pure.stem]
        cursor = pure.parent
    while cursor.name and is_package_dir(str(cursor)):
        parts.append(cursor.name)
        cursor = cursor.parent
    return ".".join(reversed(parts))


def _parse(source: str, path: str) -> ast.Module | None:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError:
        return None


class Project:
    """The parsed module set of one package tree plus its consumer files."""

    def __init__(self, modules: dict[str, ProjectModule],
                 consumers: list[SourceFile] | None = None,
                 parse_errors: list[tuple[str, str]] | None = None) -> None:
        self.modules = modules
        self.consumers = consumers or []
        #: files that failed to parse: (path, message)
        self.parse_errors = parse_errors or []
        self._by_path = {_norm(m.path): m for m in modules.values()}
        self._edges: list[ImportEdge] | None = None

    # ------------------------------------------------------------ loading

    @classmethod
    def load(cls, roots: Iterable[str | Path],
             consumer_roots: Iterable[str | Path] = ()) -> "Project":
        """Parse every ``*.py`` under ``roots`` into project modules.

        ``consumer_roots`` (tests, examples, benchmarks) are parsed too,
        but only to record references for dead-public-API detection.
        """
        modules: dict[str, ProjectModule] = {}
        consumers: list[SourceFile] = []
        parse_errors: list[tuple[str, str]] = []

        def is_package_dir(directory: str) -> bool:
            return (Path(directory) / "__init__.py").exists()

        for root in roots:
            root_path = Path(root)
            if not root_path.exists():
                raise FileNotFoundError(
                    f"no such file or directory: {root}")
            files = ([root_path] if root_path.is_file()
                     else sorted(root_path.rglob("*.py")))
            for candidate in files:
                if _SKIP_DIRS.intersection(candidate.parts):
                    continue
                source = candidate.read_text(encoding="utf-8")
                tree = _parse(source, str(candidate))
                if tree is None:
                    parse_errors.append((str(candidate), "syntax error"))
                    continue
                name = _module_name(str(candidate), is_package_dir)
                modules[name] = ProjectModule(
                    name=name, path=str(candidate), tree=tree, source=source,
                    suppressions=Suppressions(source),
                    is_package=candidate.name == "__init__.py")
        for root in consumer_roots:
            root_path = Path(root)
            if not root_path.exists():
                continue
            files = ([root_path] if root_path.is_file()
                     else sorted(root_path.rglob("*.py")))
            for candidate in files:
                if _SKIP_DIRS.intersection(candidate.parts):
                    continue
                source = candidate.read_text(encoding="utf-8")
                tree = _parse(source, str(candidate))
                if tree is None:
                    parse_errors.append((str(candidate), "syntax error"))
                    continue
                consumers.append(SourceFile(path=str(candidate), tree=tree,
                                            source=source))
        return cls(modules, consumers, parse_errors)

    @classmethod
    def from_sources(cls, sources: dict[str, str],
                     consumer_sources: dict[str, str] | None = None
                     ) -> "Project":
        """Build a project from in-memory ``{path: source}`` (fixtures)."""
        paths = {_norm(p) for p in sources}

        def is_package_dir(directory: str) -> bool:
            return f"{_norm(directory)}/__init__.py" in paths

        modules: dict[str, ProjectModule] = {}
        parse_errors: list[tuple[str, str]] = []
        for path in sorted(sources):
            source = sources[path]
            tree = _parse(source, path)
            if tree is None:
                parse_errors.append((path, "syntax error"))
                continue
            name = _module_name(path, is_package_dir)
            modules[name] = ProjectModule(
                name=name, path=path, tree=tree, source=source,
                suppressions=Suppressions(source),
                is_package=_norm(path).endswith("/__init__.py"))
        consumers = []
        for path in sorted(consumer_sources or {}):
            tree = _parse(consumer_sources[path], path)
            if tree is not None:
                consumers.append(SourceFile(
                    path=path, tree=tree, source=consumer_sources[path]))
        return cls(modules, consumers, parse_errors)

    # ----------------------------------------------------------- accessors

    def module_for_path(self, path: str | Path) -> ProjectModule | None:
        return self._by_path.get(_norm(path))

    def sorted_modules(self) -> list[ProjectModule]:
        return [self.modules[name] for name in sorted(self.modules)]

    # -------------------------------------------------------- import graph

    @property
    def import_edges(self) -> list[ImportEdge]:
        """All project-internal import edges, sorted and deduplicated."""
        if self._edges is None:
            edges: set[ImportEdge] = set()
            for module in self.modules.values():
                edges.update(self._edges_of(module))
            self._edges = sorted(edges)
        return self._edges

    def _edges_of(self, module: ProjectModule) -> Iterator[ImportEdge]:
        for node, deferred in _walk_imports(module.tree):
            for target in self.resolve_import_targets(module, node):
                yield ImportEdge(src=module.name, dst=target,
                                 line=node.lineno, deferred=deferred)

    def resolve_import_targets(self, module: ProjectModule,
                               node: ast.Import | ast.ImportFrom
                               ) -> list[str]:
        """Project modules the import statement binds (sorted, deduped)."""
        targets: set[str] = set()
        if isinstance(node, ast.Import):
            for alias in node.names:
                hit = self._longest_module_prefix(alias.name)
                if hit is not None:
                    targets.add(hit)
        else:
            base = self.resolve_from_base(module, node)
            if base is not None:
                for alias in node.names:
                    if alias.name == "*":
                        if base in self.modules:
                            targets.add(base)
                        continue
                    child = f"{base}.{alias.name}"
                    if child in self.modules:
                        targets.add(child)
                    elif base in self.modules:
                        targets.add(base)
        return sorted(targets)

    def resolve_from_base(self, module: ProjectModule,
                          node: ast.ImportFrom) -> str | None:
        """Absolute dotted base of a ``from ... import`` statement."""
        if node.level == 0:
            return node.module
        parts = module.name.split(".")
        # for a plain module, level 1 is its parent package; for a
        # package __init__, level 1 is the package itself
        drop = node.level if not module.is_package else node.level - 1
        if drop >= len(parts) and not (module.is_package and drop == 0):
            return None
        base_parts = parts[:len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _longest_module_prefix(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            name = ".".join(parts[:end])
            if name in self.modules:
                return name
        return None


def _walk_imports(tree: ast.Module
                  ) -> Iterator[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Yield every import with a flag for deferred ones.

    Imports inside function bodies and under ``if TYPE_CHECKING:`` guards
    never execute at module import time, so they cannot participate in an
    import cycle and are excluded from the eager import graph.
    """

    def visit(node: ast.AST, deferred: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, deferred
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                yield from visit(child, True)
            elif isinstance(child, ast.If) and _is_type_checking(child.test):
                yield from visit(child, True)
            else:
                yield from visit(child, deferred)

    yield from visit(tree, False)


def _is_type_checking(test: ast.expr) -> bool:
    """True for ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` guards."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def import_cycles(project: Project) -> list[list[str]]:
    """Import cycles among eager edges, as sorted SCC member lists.

    Deferred (function-body) imports cannot deadlock module loading, so
    they are excluded; each returned cycle is the sorted module list of
    one strongly connected component with more than one member (or a
    self-loop).
    """
    graph: dict[str, set[str]] = {name: set() for name in project.modules}
    for edge in project.import_edges:
        if not edge.deferred and edge.src != edge.dst:
            graph[edge.src].add(edge.dst)

    # Tarjan's SCC, iterative to survive deep trees
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for name in sorted(graph):
        if name not in index_of:
            strongconnect(name)
    return sorted(sccs)
