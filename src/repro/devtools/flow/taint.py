"""Determinism taint pass (A03): nondeterminism sources → sim-visible sinks.

The per-line lints (D01–D03) catch a wall-clock read *in* simulated code.
What they structurally cannot catch is a helper in an unrestricted module
returning ``time.time()`` and a restricted module scheduling an event at
that value three calls later. This pass tracks nondeterminism as *taint*:

* **sources** — wall clocks, unseeded/os randomness, environment reads,
  process identity (``id()`` / ``hash()`` / ``os.getpid()``), and
  completion-order iteration (``as_completed`` / ``imap_unordered`` —
  the pickling boundary in :mod:`repro.experiments.parallel`);
* **summaries** — per function, whether its return value carries taint
  and which parameters flow through to the return, iterated to fixpoint
  over the call graph; values stored into object fields carry their
  taint to every later read of that field (that is the cross-module
  channel);
* **sinks** — event scheduling, the RNG registry seed, routing-weight
  installation, and result export (see :data:`DEFAULT_SINKS`).

A finding fires at the call site where a tainted value enters a sink,
naming the source kinds so the reader can trace the flow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..findings import Finding, Severity
from .symbols import FunctionInfo, SymbolTable, dotted_name

__all__ = ["DEFAULT_SINKS", "TaintAnalysis", "TaintSink", "check_taint"]

#: fixpoint guard: summaries stabilize in 2–4 rounds on this tree
_MAX_ROUNDS = 12

#: dotted-call suffixes that *produce* nondeterminism, by kind
_SOURCE_SUFFIXES: dict[str, str] = {
    "time.time": "wall-clock", "time.time_ns": "wall-clock",
    "time.monotonic": "wall-clock", "time.monotonic_ns": "wall-clock",
    "time.perf_counter": "wall-clock",
    "time.perf_counter_ns": "wall-clock",
    "time.process_time": "wall-clock",
    "time.process_time_ns": "wall-clock",
    "datetime.now": "wall-clock", "datetime.utcnow": "wall-clock",
    "datetime.today": "wall-clock", "date.today": "wall-clock",
    "os.urandom": "os-randomness", "uuid.uuid1": "os-randomness",
    "uuid.uuid4": "os-randomness",
    "os.getenv": "env-read", "environ.get": "env-read",
    "os.getpid": "process-identity",
}

_SOURCE_PREFIXES: dict[str, str] = {
    "random.": "unseeded-randomness",
    "secrets.": "os-randomness",
}

#: called bare: builtins whose value depends on the process, not the seed
_SOURCE_BARE = {"id": "process-identity", "hash": "hash-seed"}

#: completion-order iteration — nondeterministic across the pickling
#: boundary even when every task is deterministic
_SOURCE_NAMES = {"as_completed": "completion-order",
                 "imap_unordered": "completion-order"}


@dataclass(frozen=True, order=True)
class TaintSink:
    """One sim-visible sink: a resolved project function."""

    qualname: str
    description: str


DEFAULT_SINKS: tuple[TaintSink, ...] = (
    TaintSink("repro.sim.engine.Simulator.schedule",
              "event scheduling"),
    TaintSink("repro.sim.engine.Simulator.schedule_at",
              "event scheduling"),
    TaintSink("repro.sim.engine.Simulator.schedule_periodic",
              "event scheduling"),
    TaintSink("repro.sim.engine.Simulator.schedule_cancellable",
              "event scheduling"),
    TaintSink("repro.sim.engine.Simulator.schedule_at_cancellable",
              "event scheduling"),
    TaintSink("repro.sim.rng.RngRegistry.__init__",
              "RNG registry seed"),
    TaintSink("repro.sim.rng.RngRegistry.stream",
              "RNG stream selection"),
    TaintSink("repro.mesh.routing_table.RoutingTable.set_weights",
              "routing-weight installation"),
    TaintSink("repro.mesh.routing_table.RoutingTable.replace_all",
              "routing-weight installation"),
    TaintSink("repro.core.rules.RoutingRule.make",
              "routing-rule construction"),
)


@dataclass
class _Value:
    """Abstract value: taint kinds plus parameter provenance."""

    kinds: frozenset[str] = frozenset()
    params: frozenset[int] = frozenset()

    def __or__(self, other: "_Value") -> "_Value":
        return _Value(self.kinds | other.kinds, self.params | other.params)


_CLEAN = _Value()


@dataclass
class _Summary:
    """Interprocedural summary of one function."""

    returns: frozenset[str] = frozenset()      # kinds in the return value
    param_flow: frozenset[int] = frozenset()   # params flowing to return

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _Summary)
                and self.returns == other.returns
                and self.param_flow == other.param_flow)


def _source_kind_of_call(dotted: str | None, node: ast.Call) -> str | None:
    """Taint kind a call expression produces, if any."""
    if dotted is None:
        return None
    segments = dotted.split(".")
    if len(segments) == 1 and dotted in _SOURCE_BARE:
        return _SOURCE_BARE[dotted]
    if segments[-1] in _SOURCE_NAMES:
        return _SOURCE_NAMES[segments[-1]]
    for suffix, kind in _SOURCE_SUFFIXES.items():
        parts = suffix.split(".")
        if segments[-len(parts):] == parts:
            return kind
    if segments[0] in ("np", "numpy") and len(segments) >= 2 \
            and segments[1] == "random":
        if segments[-1] == "default_rng" and (node.args or node.keywords):
            return None   # explicitly seeded: deterministic
        return "unseeded-randomness"
    for prefix, kind in _SOURCE_PREFIXES.items():
        if dotted.startswith(prefix):
            return kind
    return None


class TaintAnalysis:
    """Fixpoint taint summaries plus the sink check."""

    def __init__(self, symbols: SymbolTable,
                 sinks: Iterable[TaintSink] = DEFAULT_SINKS) -> None:
        self.symbols = symbols
        self.sinks = {s.qualname: s for s in sinks}
        self.summaries: dict[str, _Summary] = {}
        #: (class qualname, field) → kinds; "*" class for untyped stores
        self.field_taint: dict[tuple[str, str], frozenset[str]] = {}
        self._solve()

    # ------------------------------------------------------------ fixpoint

    def _solve(self) -> None:
        order = sorted(self.symbols.functions)
        for qualname in order:
            self.summaries[qualname] = _Summary()
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname in order:
                func = self.symbols.functions[qualname]
                summary = self._analyze(func, check_sinks=False)
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed:
                break

    def sink_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(self.symbols.functions):
            func = self.symbols.functions[qualname]
            module = self.symbols.project.modules.get(func.module)
            if module is None:
                continue
            self._analyze(func, check_sinks=True,
                          findings=findings, path=module.path)
        return sorted(set(findings), key=lambda f: (f.path, f.line, f.col,
                                                    f.rule, f.message))

    # --------------------------------------------------- one-function walk

    def _analyze(self, func: FunctionInfo, *, check_sinks: bool,
                 findings: list[Finding] | None = None,
                 path: str | None = None) -> _Summary:
        env: dict[str, _Value] = {}
        params = func.param_names()
        for index, name in enumerate(params):
            env[name] = _Value(params=frozenset({index}))
        state = {"returns": frozenset(), "param_flow": frozenset()}
        type_env = self.symbols.local_types(func)

        def eval_expr(node: ast.expr) -> _Value:
            if isinstance(node, ast.Name):
                return env.get(node.id, _CLEAN)
            if isinstance(node, ast.Call):
                return eval_call(node)
            if isinstance(node, ast.Attribute):
                base = eval_expr(node.value)
                kinds = set(base.kinds)
                # field reads pick up whatever any store put there
                owners = self.symbols.expr_types(func, node.value, type_env)
                hit_typed = False
                for owner in owners:
                    stored = self.field_taint.get((owner, node.attr))
                    if stored:
                        kinds.update(stored)
                        hit_typed = True
                if not hit_typed and not owners:
                    stored = self.field_taint.get(("*", node.attr))
                    if stored:
                        kinds.update(stored)
                return _Value(frozenset(kinds), base.params)
            if isinstance(node, ast.Subscript):
                value = eval_expr(node.value)
                if isinstance(node.slice, ast.expr):
                    value = value | eval_expr(node.slice)
                # os.environ[...] is an env read
                dotted = dotted_name(node.value)
                if dotted is not None and dotted.endswith("environ"):
                    value = value | _Value(frozenset({"env-read"}))
                return value
            if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare,
                                 ast.UnaryOp, ast.IfExp, ast.Tuple,
                                 ast.List, ast.Set, ast.Dict, ast.Starred,
                                 ast.JoinedStr, ast.FormattedValue,
                                 ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp, ast.Await, ast.Lambda,
                                 ast.NamedExpr, ast.Slice)):
                out = _CLEAN
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.expr):
                        out = out | eval_expr(child)
                    elif isinstance(child, ast.comprehension):
                        out = out | eval_expr(child.iter)
                return out
            return _CLEAN

        def eval_call(node: ast.Call) -> _Value:
            arg_values = [eval_expr(a) for a in node.args]
            arg_values.extend(eval_expr(k.value) for k in node.keywords)
            dotted = dotted_name(node.func)
            kind = _source_kind_of_call(dotted, node)
            out = _Value()
            if kind is not None:
                out = out | _Value(frozenset({kind}))
            callees = self.symbols.resolve_call(func, node, type_env)
            if callees:
                for callee in callees:
                    summary = self.summaries.get(callee.qualname,
                                                 _Summary())
                    out = out | _Value(kinds=summary.returns)
                    # positional mapping is approximate: methods (and
                    # constructors) shift by the implicit self, so map by
                    # position over the explicit args (good enough for
                    # flow detection)
                    offset = 1 if callee.cls is not None else 0
                    for param_index in summary.param_flow:
                        arg_index = param_index - offset
                        if 0 <= arg_index < len(arg_values):
                            out = out | arg_values[arg_index]
                if check_sinks and findings is not None:
                    for callee in callees:
                        sink = self.sinks.get(callee.qualname)
                        if sink is None:
                            continue
                        tainted = [v for v in arg_values if v.kinds]
                        if tainted:
                            kinds = sorted(set().union(
                                *(v.kinds for v in tainted)))
                            findings.append(Finding(
                                path=path or "", line=node.lineno,
                                col=node.col_offset, rule="A03",
                                severity=Severity.ERROR,
                                message=(f"nondeterminism "
                                         f"({', '.join(kinds)}) flows into "
                                         f"{sink.description} sink "
                                         f"`{sink.qualname}` from "
                                         f"`{func.qualname}`")))
            else:
                # unresolved (builtin/stdlib) call: conservatively pass
                # argument taint through the result
                for value in arg_values:
                    out = out | value
            # a tainted receiver taints method-call results
            if isinstance(node.func, ast.Attribute):
                out = out | eval_expr(node.func.value)
            return out

        def assign(target: ast.expr, value: _Value) -> None:
            if isinstance(target, ast.Name):
                env[target.id] = env.get(target.id, _CLEAN) | value
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    assign(element, value)
            elif isinstance(target, ast.Starred):
                assign(target.value, value)
            elif isinstance(target, ast.Attribute):
                if not value.kinds:
                    return
                owners = self.symbols.expr_types(func, target.value,
                                                 type_env)
                keys = ([(owner, target.attr) for owner in sorted(owners)]
                        or [("*", target.attr)])
                for key in keys:
                    merged = self.field_taint.get(key,
                                                  frozenset()) | value.kinds
                    if merged != self.field_taint.get(key):
                        self.field_taint[key] = merged
            elif isinstance(target, ast.Subscript):
                assign(target.value, value)

        def walk(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    value = eval_expr(stmt.value)
                    for target in stmt.targets:
                        assign(target, value)
                elif isinstance(stmt, ast.AnnAssign):
                    if stmt.value is not None:
                        assign(stmt.target, eval_expr(stmt.value))
                elif isinstance(stmt, ast.AugAssign):
                    assign(stmt.target,
                           eval_expr(stmt.value) | eval_expr(stmt.target))
                elif isinstance(stmt, ast.Return):
                    if stmt.value is not None:
                        value = eval_expr(stmt.value)
                        state["returns"] = state["returns"] | value.kinds
                        state["param_flow"] = (state["param_flow"]
                                               | value.params)
                elif isinstance(stmt, ast.Expr):
                    eval_expr(stmt.value)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    assign(stmt.target, eval_expr(stmt.iter))
                    # two passes pick up loop-carried taint
                    walk(stmt.body)
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.While):
                    eval_expr(stmt.test)
                    walk(stmt.body)
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.If):
                    eval_expr(stmt.test)
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        value = eval_expr(item.context_expr)
                        if item.optional_vars is not None:
                            assign(item.optional_vars, value)
                    walk(stmt.body)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    # nested defs (epoch hooks): their body runs with the
                    # enclosing locals; fold it in for flow purposes
                    walk(stmt.body)
                elif isinstance(stmt, (ast.Raise, ast.Assert)):
                    for child in ast.iter_child_nodes(stmt):
                        if isinstance(child, ast.expr):
                            eval_expr(child)

        walk(func.node.body)
        return _Summary(returns=frozenset(state["returns"]),
                        param_flow=frozenset(state["param_flow"]))


def check_taint(symbols: SymbolTable,
                sinks: Iterable[TaintSink] = DEFAULT_SINKS
                ) -> list[Finding]:
    """Run the taint pass and return its A03 findings."""
    return TaintAnalysis(symbols, sinks).sink_findings()
