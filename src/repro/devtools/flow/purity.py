"""Purity pass: per-function write-sets and read-only contracts (A01/A02).

For every project function the pass computes the set of object attributes
and module globals it may mutate — directly, or transitively through any
project function it can reach in the call graph. Write targets are
attributed to the owning *class* (``repro.sim.service.ReplicaPool.queue``)
or *module* (``repro.sim.request._IDS``), so a contract can be stated as
"code entered here must never write state owned by those packages" and
checked whole-program, which the per-line lints structurally cannot do.

Two contracts ship by default (see :data:`DEFAULT_PURITY_CONTRACTS`):

* **A01 obs-read-only** — nothing reachable from the observability
  layer's collection / scrape / SLO / diff entrypoints may write
  simulator, pool, gateway, WAN, mesh, or controller state. PR 3–4 only
  tested this empirically (byte-identical runs); here it is proved over
  the call graph.
* **A02 chaos-twin-isolation** — the chaos harness (which runs a faulted
  run and an unfaulted twin from the *same* scenario object) must never
  mutate the shared scenario, or twin comparisons would be confounded.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding, Severity
from .symbols import BUILTIN, FunctionInfo, SymbolTable, dotted_name

__all__ = ["DEFAULT_PURITY_CONTRACTS", "PurityContract", "WriteEffect",
           "WriteSets", "check_purity_contracts"]

#: attribute methods that mutate their receiver in place
_MUTATORS = frozenset({"append", "extend", "insert", "add", "update",
                       "setdefault", "pop", "popleft", "remove", "discard",
                       "clear", "appendleft", "sort", "reverse",
                       "__setitem__", "__delitem__"})

#: like the symbol table's CHA cap, but for attributing untyped writes
_FIELD_CAP = 8


@dataclass(frozen=True, order=True)
class WriteEffect:
    """One potential mutation, attributed to the state's owner."""

    kind: str     # "attr" (class field) | "global" (module global)
    owner: str    # class qualname or module dotted name
    attr: str     # field / global name
    module: str   # module containing the write (for reporting)
    line: int

    def target(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass(frozen=True)
class PurityContract:
    """A read-only contract: entrypoints vs. forbidden state owners."""

    name: str
    rule: str                       # finding rule id (A01, A02)
    entry_modules: tuple[str, ...]  # modules whose defs are entrypoints
    forbidden: tuple[str, ...]      # module prefixes whose state is off-limits
    description: str


DEFAULT_PURITY_CONTRACTS: tuple[PurityContract, ...] = (
    PurityContract(
        name="obs-read-only",
        rule="A01",
        entry_modules=("repro.obs.collect", "repro.obs.timeseries",
                       "repro.obs.slo", "repro.obs.alerts",
                       "repro.obs.diff", "repro.obs.analyzer",
                       "repro.obs.provenance"),
        forbidden=("repro.sim", "repro.mesh", "repro.core",
                   "repro.baselines", "repro.experiments", "repro.chaos"),
        description=("observability collection/scrape/SLO/diff code must "
                     "never write simulator, mesh, or controller state")),
    PurityContract(
        name="chaos-twin-isolation",
        rule="A02",
        entry_modules=("repro.chaos.harness", "repro.chaos.report"),
        forbidden=("repro.experiments.scenarios",
                   "repro.experiments.harness"),
        description=("the chaos harness shares one scenario object between "
                     "the faulted run and its unfaulted twin; neither may "
                     "mutate it")),
)


def _owner_matches(owner: str, prefixes: tuple[str, ...]) -> bool:
    return any(owner == prefix or owner.startswith(prefix + ".")
               for prefix in prefixes)


#: summary fixpoint rounds — call-graph depth is far below this
_MAX_ROUNDS = 50

#: witness paths are truncated past this many hops
_PATH_CAP = 12


class WriteSets:
    """Direct and transitive write-sets over the resolved call graph.

    Effects are tracked with a *self-rooted* flag: a write whose receiver
    is the method's own ``self`` only escapes to a caller when the caller
    invoked the method on an object that outlives the call. Calls on
    freshly constructed objects (``RuleSet()`` then ``.add(...)``, or a
    classmethod's ``cls(...)``) keep their self-rooted effects internal —
    mutating an object you just built is not an observable side effect.
    """

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        #: per function: effect → is the write rooted at the method's self
        self._direct_rooted: dict[str, dict[WriteEffect, bool]] = {}
        #: per function: (callee qualname, edge category) pairs
        self._edges: dict[str, list[tuple[str, str]]] = {}
        self._module_globals: dict[str, frozenset[str]] = {}
        self._summaries: dict[
            str, dict[tuple[WriteEffect, bool], tuple[str, ...]]] | None \
            = None

    # -------------------------------------------------------- direct layer

    def direct_effects(self, func: FunctionInfo) -> frozenset[WriteEffect]:
        return frozenset(self._direct_with_roots(func))

    def _direct_with_roots(self, func: FunctionInfo
                           ) -> dict[WriteEffect, bool]:
        cached = self._direct_rooted.get(func.qualname)
        if cached is None:
            cached = {}
            for effect, rooted in self._scan(func):
                # an effect seen both rooted and unrooted escapes
                cached[effect] = cached.get(effect, True) and rooted
            self._direct_rooted[func.qualname] = cached
        return cached

    def _globals_of(self, module: str) -> frozenset[str]:
        cached = self._module_globals.get(module)
        if cached is None:
            names: set[str] = set()
            project_module = self.symbols.project.modules.get(module)
            if project_module is not None:
                for stmt in project_module.tree.body:
                    if isinstance(stmt, ast.Assign):
                        names.update(t.id for t in stmt.targets
                                     if isinstance(t, ast.Name))
                    elif (isinstance(stmt, ast.AnnAssign)
                          and isinstance(stmt.target, ast.Name)):
                        names.add(stmt.target.id)
            cached = frozenset(names)
            self._module_globals[module] = cached
        return cached

    @staticmethod
    def _receiver_root(expr: ast.expr) -> str | None:
        """The root name of an attribute/subscript chain, if any."""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def _is_self_rooted(self, func: FunctionInfo, expr: ast.expr) -> bool:
        return (func.cls is not None
                and self._receiver_root(expr) == "self")

    def _scan(self, func: FunctionInfo
              ) -> Iterator[tuple[WriteEffect, bool]]:
        env = self.symbols.local_types(func)
        module_globals = self._globals_of(func.module)
        fresh = self._fresh_locals(func)
        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._effects_of_store(func, env, target,
                                                      node.lineno, fresh)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._effects_of_store(func, env, target,
                                                      node.lineno, fresh)
            elif isinstance(node, ast.Global):
                for name in node.names:
                    yield WriteEffect(kind="global", owner=func.module,
                                      attr=name, module=func.module,
                                      line=node.lineno), False
            elif isinstance(node, ast.Call):
                yield from self._effects_of_mutator(func, env, node,
                                                   module_globals, fresh)

    def _effects_of_store(self, func: FunctionInfo,
                          env: dict[str, frozenset[str]],
                          target: ast.expr,
                          line: int,
                          fresh: frozenset[str] = frozenset()
                          ) -> Iterator[tuple[WriteEffect, bool]]:
        # unwrap subscript stores: `recv.attr[k] = v` mutates recv.attr
        was_subscript = False
        while isinstance(target, ast.Subscript):
            was_subscript = True
            target = target.value
        if isinstance(target, ast.Name):
            # a bare-name store rebinds a local (the module-global case
            # needs `global`, reported separately); a subscript store on
            # a module-level name mutates the global in place
            if was_subscript and target.id in self._globals_of(func.module):
                yield WriteEffect(kind="global", owner=func.module,
                                  attr=target.id, module=func.module,
                                  line=line), False
            return
        if not isinstance(target, ast.Attribute):
            return
        yield from self._attribute_effects(func, env, target, line, fresh)

    def _attribute_effects(self, func: FunctionInfo,
                           env: dict[str, frozenset[str]],
                           target: ast.Attribute,
                           line: int,
                           fresh: frozenset[str] = frozenset()
                           ) -> Iterator[tuple[WriteEffect, bool]]:
        if self._receiver_root(target) in fresh:
            return   # writing an object that dies with this function
        owners = self.symbols.expr_types(func, target.value, env)
        owners = owners - {BUILTIN}
        rooted = self._is_self_rooted(func, target)
        if not owners:
            # untyped receiver: attribute the write to every project
            # class declaring a field with this name, capped
            owners = self.symbols.classes_with_field(target.attr)
            if not owners or len(owners) > _FIELD_CAP:
                return
        for owner in sorted(owners):
            yield WriteEffect(kind="attr", owner=owner, attr=target.attr,
                              module=func.module, line=line), rooted

    def _effects_of_mutator(self, func: FunctionInfo,
                            env: dict[str, frozenset[str]],
                            node: ast.Call,
                            module_globals: frozenset[str],
                            fresh: frozenset[str] = frozenset()
                            ) -> Iterator[tuple[WriteEffect, bool]]:
        callee = node.func
        if not isinstance(callee, ast.Attribute):
            # `next(_COUNTER)` on a module-level iterator
            if (isinstance(callee, ast.Name) and callee.id == "next"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in module_globals):
                yield WriteEffect(kind="global", owner=func.module,
                                  attr=node.args[0].id, module=func.module,
                                  line=node.lineno), False
            return
        if callee.attr not in _MUTATORS:
            return
        receiver = callee.value
        if isinstance(receiver, ast.Name):
            if receiver.id in fresh:
                return
            if receiver.id in module_globals:
                yield WriteEffect(kind="global", owner=func.module,
                                  attr=receiver.id, module=func.module,
                                  line=node.lineno), False
                return
            types = env.get(receiver.id, frozenset())
            if types == frozenset({BUILTIN}) or not types:
                # locally constructed container, or an untyped local /
                # parameter: mutating it is the caller's business only
                # when it was constructed here; for untyped names we
                # cannot attribute an owner, so stay silent
                return
            for owner in sorted(types - {BUILTIN}):
                yield WriteEffect(kind="attr", owner=owner,
                                  attr="<container>", module=func.module,
                                  line=node.lineno), False
            return
        if isinstance(receiver, ast.Attribute):
            # `recv.attr.append(...)` mutates the `attr` field of recv
            yield from self._attribute_effects(func, env, receiver,
                                               node.lineno, fresh)

    # ---------------------------------------------------- transitive layer

    def _fresh_locals(self, func: FunctionInfo) -> frozenset[str]:
        """Locals that provably hold objects no one else can see.

        A name qualifies when every assignment to it is a fresh
        construction *and* the object never escapes — it is not
        returned, yielded, passed as an argument, stored into another
        object, or aliased. Mutating such an object is invisible to
        callers.
        """
        params = set(func.param_names())
        fresh: set[str] = set()
        tainted: set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and node.targets:
                names = [t.id for t in node.targets
                         if isinstance(t, ast.Name)]
                if len(names) != len(node.targets):
                    # `x = self.field[k] = C()` — x aliases an escapee
                    tainted.update(names)
                    continue
                value = node.value
            elif (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.value is not None):
                names, value = [node.target.id], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.withitem,
                                   ast.NamedExpr)):
                # loop / with / walrus targets bind pre-existing objects
                target = getattr(node, "target",
                                 getattr(node, "optional_vars", None))
                for sub in ast.walk(target) if target is not None else ():
                    if isinstance(sub, ast.Name):
                        tainted.add(sub.id)
                continue
            else:
                continue
            if self._is_fresh_value(func, value):
                fresh.update(names)
            else:
                tainted.update(names)
        candidates = fresh - tainted - params
        if candidates:
            candidates -= self._escaped_names(func, candidates)
        return frozenset(candidates)

    @staticmethod
    def _escaped_names(func: FunctionInfo,
                       candidates: set[str]) -> set[str]:
        """Candidates whose value is used beyond receiver position."""
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(func.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        escaped: set[str] = set()
        for node in ast.walk(func.node):
            if (not isinstance(node, ast.Name)
                    or node.id not in candidates
                    or not isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(node)
            # benign: receiver of `x.method(...)`, attribute or subscript
            # access on x (read or write), identity comparisons — none of
            # these leak the object itself
            if isinstance(parent, ast.Attribute):
                continue
            if isinstance(parent, ast.Subscript) and parent.value is node:
                continue
            if isinstance(parent, ast.Compare):
                continue
            escaped.add(node.id)
        return escaped

    def _is_fresh_value(self, func: FunctionInfo, value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                              ast.ListComp, ast.DictComp, ast.SetComp,
                              ast.Constant, ast.JoinedStr)):
            return True
        if not isinstance(value, ast.Call):
            return False
        dotted = dotted_name(value.func)
        if dotted is None:
            return False
        if dotted == "cls" and func.cls is not None:
            return True
        resolved = self.symbols._resolve_dotted_symbol(func.module, dotted)
        return resolved is not None and resolved in self.symbols.classes

    def _edge_categories(self, func: FunctionInfo
                         ) -> list[tuple[str, str]]:
        """(callee, category) call edges: how self-rooted effects cross.

        * ``new``    — constructor call: the receiver is brand new
        * ``fresh``  — method call on a local built here from a constructor
        * ``self``   — ``self.method()``: stays rooted at our own self
        * ``escape`` — anything else: the write hits a shared object
        """
        cached = self._edges.get(func.qualname)
        if cached is not None:
            return cached
        fresh = self._fresh_locals(func)
        pairs: set[tuple[str, str]] = set()
        for node, callees in self.symbols.call_edges(func):
            category = self._categorize(func, node, fresh)
            pairs.update((c.qualname, category) for c in callees)
        cached = sorted(pairs)
        self._edges[func.qualname] = cached
        return cached

    def _categorize(self, func: FunctionInfo, node: ast.Call,
                    fresh: frozenset[str]) -> str:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id == "cls" and func.cls is not None:
                return "new"
            binding = self.symbols.bindings.get(func.module,
                                                {}).get(callee.id)
            if (binding is not None and binding[0] == "symbol"
                    and binding[1] in self.symbols.classes):
                return "new"
            return "escape"
        if not isinstance(callee, ast.Attribute):
            return "escape"
        dotted = dotted_name(callee)
        if dotted is not None:
            resolved = self.symbols._resolve_dotted_symbol(func.module,
                                                           dotted)
            if resolved is not None and resolved in self.symbols.classes:
                return "new"
        receiver = callee.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and func.cls is not None:
                return "self"
            if receiver.id in fresh:
                return "fresh"
        return "escape"

    def _all_summaries(self) -> dict[
            str, dict[tuple[WriteEffect, bool], tuple[str, ...]]]:
        """Fixpoint: transitive (effect, rooted) → witness path, per func."""
        if self._summaries is not None:
            return self._summaries
        functions = self.symbols.functions
        order = sorted(functions)
        summaries: dict[
            str, dict[tuple[WriteEffect, bool], tuple[str, ...]]] = {}
        for qualname in order:
            func = functions[qualname]
            summaries[qualname] = {
                (effect, rooted): (qualname,)
                for effect, rooted
                in self._direct_with_roots(func).items()}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname in order:
                mine = summaries[qualname]
                for callee, category in self._edge_categories(
                        functions[qualname]):
                    theirs = summaries.get(callee)
                    if not theirs:
                        continue
                    # list(): `theirs` is `mine` on self-recursive calls
                    for (effect, rooted), path in list(theirs.items()):
                        if rooted and category in ("new", "fresh"):
                            continue   # the written object dies with us
                        key = (effect, rooted and category == "self")
                        if key not in mine:
                            mine[key] = ((qualname,) + path)[:_PATH_CAP]
                            changed = True
            if not changed:
                break
        self._summaries = summaries
        return summaries

    def reachable_effects(self, entry: FunctionInfo
                          ) -> dict[WriteEffect, tuple[str, ...]]:
        """Transitive write-set of ``entry`` with one witness path each.

        Returns ``{effect: (entry qualname, ..., writer qualname)}``.
        A contract entrypoint is invoked on long-lived objects, so its
        own self-rooted effects count as real writes here.
        """
        summary = self._all_summaries().get(entry.qualname, {})
        effects: dict[WriteEffect, tuple[str, ...]] = {}
        for (effect, _rooted), path in sorted(
                summary.items(), key=lambda item: (item[0][0], item[1])):
            if effect not in effects or len(path) < len(effects[effect]):
                effects[effect] = path
        return effects


def _contract_entries(symbols: SymbolTable,
                      contract: PurityContract) -> list[FunctionInfo]:
    """Public defs (functions + methods of public classes) of the entry
    modules, in deterministic order."""
    entries: list[FunctionInfo] = []
    for qualname in sorted(symbols.functions):
        func = symbols.functions[qualname]
        if func.module not in contract.entry_modules:
            continue
        if func.name.startswith("_") and func.name != "__init__":
            continue
        if func.cls is not None:
            cls_name = func.cls.rsplit(".", 1)[-1]
            if cls_name.startswith("_"):
                continue
        entries.append(func)
    return entries


def check_purity_contracts(
        symbols: SymbolTable,
        contracts: tuple[PurityContract, ...] = DEFAULT_PURITY_CONTRACTS,
        write_sets: WriteSets | None = None) -> list[Finding]:
    """Check every contract; one finding per (entrypoint, written target)."""
    write_sets = write_sets or WriteSets(symbols)
    findings: list[Finding] = []
    for contract in contracts:
        for entry in _contract_entries(symbols, contract):
            module = symbols.project.modules.get(entry.module)
            if module is None:
                continue
            effects = write_sets.reachable_effects(entry)
            seen_targets: set[str] = set()
            for effect in sorted(effects):
                if not _owner_matches(effect.owner, contract.forbidden):
                    continue
                if effect.target() in seen_targets:
                    continue
                seen_targets.add(effect.target())
                path = effects[effect]
                witness = (" -> ".join(path) if len(path) > 1
                           else path[0])
                findings.append(Finding(
                    path=module.path, line=entry.lineno, col=0,
                    rule=contract.rule, severity=Severity.ERROR,
                    message=(f"[{contract.name}] `{entry.qualname}` may "
                             f"write `{effect.target()}` via {witness}; "
                             f"{contract.description}")))
    return findings
