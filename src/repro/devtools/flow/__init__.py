"""Whole-program flow analysis: purity proofs, determinism taint,
architecture contracts.

This package parses the full source tree once
(:class:`~repro.devtools.flow.project.Project`), builds a module import
graph and a name-resolved intra-project call graph
(:class:`~repro.devtools.flow.symbols.SymbolTable`), and runs three
passes over them:

1. **Purity / write-sets** (:mod:`~repro.devtools.flow.purity`, A01/A02)
   — per-function mutation sets propagated transitively, proving the
   observability layer read-only and the chaos twin-run scenario
   unshared.
2. **Determinism taint** (:mod:`~repro.devtools.flow.taint`, A03) —
   wall clocks, unseeded randomness, env reads, and completion-order
   iteration tracked to event scheduling, RNG seeding, routing weights,
   and exports, across module boundaries.
3. **Architecture contracts** (:mod:`~repro.devtools.flow.contracts`,
   A04–A06) — declarative layering, import cycles, dead public API.

Drive it with ``python -m repro.devtools.analyze src`` (see
:mod:`repro.devtools.analyze` and docs/devtools.md).
"""

from __future__ import annotations

from .analyzer import ANALYZER_RULES, AnalysisResult, FlowAnalyzer
from .baseline import Baseline, BaselineEntry
from .contracts import LayerRule, LayerSpec
from .project import ImportEdge, Project, ProjectModule, SourceFile
from .purity import (DEFAULT_PURITY_CONTRACTS, PurityContract, WriteEffect,
                     WriteSets)
from .symbols import ClassInfo, FunctionInfo, SymbolTable
from .taint import DEFAULT_SINKS, TaintAnalysis, TaintSink

__all__ = ["ANALYZER_RULES", "AnalysisResult", "Baseline", "BaselineEntry",
           "ClassInfo", "DEFAULT_PURITY_CONTRACTS", "DEFAULT_SINKS",
           "FlowAnalyzer", "FunctionInfo", "ImportEdge", "LayerRule",
           "LayerSpec", "Project", "ProjectModule", "PurityContract",
           "SourceFile", "SymbolTable", "TaintAnalysis", "TaintSink",
           "WriteEffect", "WriteSets"]
