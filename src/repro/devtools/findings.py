"""Lint findings and per-line suppressions.

A :class:`Finding` is one rule violation at one source location. Findings
can be silenced in the source with a trailing comment::

    t = time.perf_counter()   # lint: ignore[D02]

Multiple rules separate with commas (``# lint: ignore[D01,D02]``); a bare
``# lint: ignore`` silences every rule on that line. Suppressions are
parsed per physical line, so a violation is silenced only by a marker on
its own line.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

__all__ = ["Finding", "Severity", "Suppressions"]

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9,\s]*)\])?")

#: Sentinel stored for a blanket ``# lint: ignore`` (no rule list).
_ALL_RULES = "*"


class Severity(enum.Enum):
    """How a finding is treated by the CLI exit code."""

    ERROR = "error"       # fails the lint run
    WARNING = "warning"   # reported, does not fail the run
    OFF = "off"           # rule disabled entirely

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def as_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": str(self.severity),
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


class Suppressions:
    """Per-line ``# lint: ignore[...]`` markers for one file."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self._by_line[lineno] = {_ALL_RULES}
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                self._by_line[lineno] = ids or {_ALL_RULES}

    def silences(self, line: int, rule: str) -> bool:
        """True when ``rule`` is suppressed on ``line``."""
        ids = self._by_line.get(line)
        if ids is None:
            return False
        return _ALL_RULES in ids or rule in ids

    def __len__(self) -> int:
        return len(self._by_line)
