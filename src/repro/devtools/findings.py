"""Lint findings and per-line suppressions.

A :class:`Finding` is one rule violation at one source location. Findings
can be silenced in the source with a trailing comment::

    t = time.perf_counter()   # lint: ignore[D02]

Multiple rules separate with commas (``# lint: ignore[D01,D02]``); a bare
``# lint: ignore`` silences every rule on that line. Suppressions are
parsed per physical line, so a violation is silenced only by a marker on
its own line.
"""

from __future__ import annotations

import enum
import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Finding", "Severity", "Suppressions"]

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9,\s]*)\])?")

#: Sentinel stored for a blanket ``lint: ignore`` marker (no rule list).
_ALL_RULES = "*"


def _comments(source: str) -> list[tuple[int, str]]:
    """Real comment tokens as (line, text).

    Tokenizing (rather than regex-scanning every line) keeps marker text
    inside docstrings and string literals — documentation examples, lint
    test fixtures — from registering as live suppressions.
    """
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable tail: keep whatever comments tokenized so far
        pass
    return out


class Severity(enum.Enum):
    """How a finding is treated by the CLI exit code."""

    ERROR = "error"       # fails the lint run
    WARNING = "warning"   # reported, does not fail the run
    OFF = "off"           # rule disabled entirely

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def as_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": str(self.severity),
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


class Suppressions:
    """Per-line ``# lint: ignore[...]`` markers for one file."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._fired: set[int] = set()
        for lineno, text in _comments(source):
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self._by_line[lineno] = {_ALL_RULES}
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                self._by_line[lineno] = ids or {_ALL_RULES}

    def silences(self, line: int, rule: str) -> bool:
        """True when ``rule`` is suppressed on ``line``."""
        ids = self._by_line.get(line)
        if ids is None:
            return False
        if _ALL_RULES in ids or rule in ids:
            self._fired.add(line)
            return True
        return False

    def unused(self, running: set[str]) -> list[tuple[int, frozenset[str]]]:
        """Marker lines that silenced nothing this run.

        Markers naming only rule ids that are not running are skipped — a
        ``--select D01`` run must not flag every unrelated marker (nor the
        flow analyzer's ``ignore[Axx]`` markers when the lint audits).
        Blanket markers (no id list) are always audited.
        """
        out: list[tuple[int, frozenset[str]]] = []
        for line, ids in sorted(self._by_line.items()):
            if line in self._fired:
                continue
            if _ALL_RULES in ids:
                out.append((line, frozenset()))
                continue
            relevant = ids & running
            if relevant:
                out.append((line, frozenset(relevant)))
        return out

    def __len__(self) -> int:
        return len(self._by_line)
