"""Whole-program analyzer CLI.

Run over the tree with::

    PYTHONPATH=src python -m repro.devtools.analyze src

The analyzer parses everything under the given roots once, builds the
import and call graphs, and runs the purity (A01/A02), determinism-taint
(A03), and architecture-contract (A04–A06) passes — see
:mod:`repro.devtools.flow` and ``docs/devtools.md``. Sibling ``tests``,
``examples``, and ``benchmarks`` directories are parsed as consumers for
dead-public-API detection.

Exits nonzero when any error-severity finding survives per-line
suppression and the committed baseline (``analyze-baseline.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .changes import GitError, changed_paths
from .findings import Severity
from .flow.analyzer import ANALYZER_RULES, AnalysisResult, FlowAnalyzer
from .flow.baseline import Baseline
from .flow.contracts import LayerSpec
from .flow.project import Project

__all__ = ["build_parser", "main", "run_analysis"]

DEFAULT_BASELINE = "analyze-baseline.json"

#: consumer roots auto-discovered next to the analysis root
_CONSUMER_DIRS = ("tests", "examples", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.analyze",
        description=("Whole-program flow analyzer: purity proofs, "
                     "determinism taint, architecture contracts."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="package roots to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--baseline", metavar="FILE",
                        default=None,
                        help=(f"baseline file of grandfathered findings "
                              f"(default: {DEFAULT_BASELINE} when it "
                              f"exists)"))
    parser.add_argument("--write-baseline", action="store_true",
                        help="adopt every current finding into the "
                             "baseline file and exit")
    parser.add_argument("--layers", metavar="FILE",
                        help="JSON layering spec overriding the default")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated pass ids (e.g. A01,A04)")
    parser.add_argument("--changed-only", metavar="BASE", nargs="?",
                        const="HEAD", default=None,
                        help="report findings only for files changed "
                             "against BASE (default HEAD)")
    parser.add_argument("--report", metavar="FILE",
                        help="also write the JSON report to FILE "
                             "(CI artifact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the pass catalogue and exit")
    return parser


def run_analysis(paths: Sequence[str], *,
                 layer_spec: LayerSpec | None = None,
                 select: frozenset[str] | None = None,
                 baseline: Baseline | None = None,
                 changed: set[str] | None = None
                 ) -> tuple[FlowAnalyzer, AnalysisResult]:
    """Load the project (with sibling consumer roots) and run the passes."""
    consumer_roots = []
    for root in paths:
        for sibling in _CONSUMER_DIRS:
            candidate = Path(root).resolve().parent / sibling
            if candidate.is_dir():
                consumer_roots.append(candidate)
    project = Project.load(paths, consumer_roots)
    analyzer = FlowAnalyzer(project, layer_spec=layer_spec)
    changed_resolved = None
    if changed is not None:
        # findings carry paths as given on the command line; compare
        # resolved so `src/...` matches git's repo-relative names
        changed_resolved = changed
    result = analyzer.run(select=select, baseline=baseline,
                          changed_paths=_rebase(project, changed_resolved))
    return analyzer, result


def _rebase(project: Project,
            changed: set[str] | None) -> set[str] | None:
    """Map resolved changed paths back to the project's path spellings."""
    if changed is None:
        return None
    spellings: set[str] = set()
    for module in project.modules.values():
        resolved = str(Path(module.path).resolve()).replace("\\", "/")
        if resolved in changed:
            spellings.add(module.path.replace("\\", "/"))
    return spellings


def _render_text(result: AnalysisResult) -> str:
    lines = [f.render() for f in result.findings]
    lines.extend(f"{path}: parse error: {message}"
                 for path, message in result.parse_errors)
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry ({entry.rule} {entry.path}): "
                     f"fixed for real — remove it from the baseline")
    stats = result.stats
    summary = (f"analyzed {stats.get('modules', 0)} modules, "
               f"{stats.get('functions', 0)} functions, "
               f"{stats.get('import_edges', 0)} import edges")
    errors = sum(1 for f in result.findings
                 if f.severity is Severity.ERROR)
    warnings = len(result.findings) - errors
    if result.findings or result.parse_errors:
        lines.append(f"{summary}: {errors} error(s), {warnings} "
                     f"warning(s), {len(result.baselined)} baselined, "
                     f"{result.suppressed} suppressed")
    else:
        lines.append(f"{summary}: clean "
                     f"({len(result.baselined)} baselined, "
                     f"{result.suppressed} suppressed)")
    return "\n".join(lines)


def _report_payload(result: AnalysisResult) -> dict:
    return {
        "findings": [f.as_dict() for f in result.findings],
        "baselined": [f.as_dict() for f in result.baselined],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "message": e.message,
             "reason": e.reason} for e in result.stale_baseline],
        "parse_errors": [{"path": p, "message": m}
                         for p, m in result.parse_errors],
        "suppressed_count": result.suppressed,
        "error_count": sum(1 for f in result.findings
                           if f.severity is Severity.ERROR),
        "warning_count": sum(1 for f in result.findings
                             if f.severity is Severity.WARNING),
        "stats": result.stats,
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(ANALYZER_RULES):
            print(f"{rule_id}  {ANALYZER_RULES[rule_id]}")
        return 0

    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(s.strip() for s in args.select.split(",")
                           if s.strip())
        unknown = sorted(select - set(ANALYZER_RULES))
        if unknown:
            print(f"error: unknown pass id(s) in --select: "
                  f"{', '.join(unknown)} (see --list-rules)",
                  file=sys.stderr)
            return 2

    layer_spec = None
    if args.layers:
        try:
            layer_spec = LayerSpec.from_file(args.layers)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    baseline = None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(f"error: baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    changed: set[str] | None = None
    if args.changed_only is not None:
        try:
            changed = changed_paths(args.changed_only)
        except GitError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        _, result = run_analysis(args.paths, layer_spec=layer_spec,
                                 select=select, baseline=baseline,
                                 changed=changed)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        merged = Baseline.from_findings(result.findings)
        if baseline_path is not None and Path(baseline_path).exists():
            previous = Baseline.load(baseline_path)
            for key, entry in previous.entries.items():
                if key in merged.entries and entry.reason:
                    merged.entries[key] = entry
        merged.save(target)
        print(f"baseline written: {target} "
              f"({len(merged)} entries — add a reason to each)")
        return 0

    if args.report:
        Path(args.report).write_text(
            json.dumps(_report_payload(result), indent=2) + "\n",
            encoding="utf-8")
    if args.format == "json":
        print(json.dumps(_report_payload(result), indent=2))
    else:
        print(_render_text(result))
    return 1 if result.failed else 0


if __name__ == "__main__":
    sys.exit(main())
