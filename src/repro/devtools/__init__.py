"""Developer tooling: determinism lint, flow analyzer, invariant checks.

Three layers guard the reproducibility discipline the simulator's results
rest on (a run must be exactly reproducible from its seed, and every
routing decision must obey the optimizer's conservation constraints):

* :mod:`repro.devtools.lint` — an AST-based, file-local static analysis
  pass (``python -m repro.devtools.lint src tests``) with
  codebase-specific rules: all randomness through
  :class:`~repro.sim.rng.RngRegistry`, no wall-clock reads in simulated
  code, no iteration over unordered sets in decision paths, and so on.
  See :mod:`repro.devtools.rules` and ``docs/devtools.md``.
* :mod:`repro.devtools.flow` — the whole-program analyzer
  (``python -m repro.devtools.analyze src``): purity proofs for the
  observability layer, determinism taint tracking across call edges, and
  architecture contracts (layering, import cycles, dead public API).
* :mod:`repro.devtools.invariants` — runtime checks the engine, pools,
  gateways, and runner perform when ``REPRO_DEBUG_INVARIANTS=1``:
  event-time monotonicity, request conservation, routing rows summing
  to one, non-negative queue depths.
"""

from __future__ import annotations

from .config import LintConfig
from .findings import Finding, Severity
from .invariants import (INVARIANTS_ENV, InvariantViolation,
                         invariants_enabled)
from .rules import ALL_RULES, Rule

__all__ = ["ALL_RULES", "Finding", "FlowAnalyzer", "INVARIANTS_ENV",
           "InvariantViolation", "LintConfig", "Linter", "Rule", "Severity",
           "invariants_enabled", "lint_paths", "run_analysis"]

#: lazy exports: runner modules must not be pre-imported in sys.modules
#: (`python -m` runpy warning), and the flow package stays import-free
#: until something actually analyzes
_LAZY = {"Linter": "lint", "lint_paths": "lint",
         "FlowAnalyzer": "flow.analyzer", "run_analysis": "analyze"}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is not None:
        import importlib
        module = importlib.import_module(f".{target}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
