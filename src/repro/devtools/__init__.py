"""Developer tooling: determinism lint + runtime invariant checks.

Two layers guard the reproducibility discipline the simulator's results
rest on (a run must be exactly reproducible from its seed, and every
routing decision must obey the optimizer's conservation constraints):

* :mod:`repro.devtools.lint` — an AST-based static analysis pass
  (``python -m repro.devtools.lint src tests``) with codebase-specific
  rules: all randomness through :class:`~repro.sim.rng.RngRegistry`, no
  wall-clock reads in simulated code, no iteration over unordered sets in
  decision paths, and so on. See :mod:`repro.devtools.rules` and
  ``docs/devtools.md``.
* :mod:`repro.devtools.invariants` — runtime checks the engine, pools,
  gateways, and runner perform when ``REPRO_DEBUG_INVARIANTS=1``:
  event-time monotonicity, request conservation, routing rows summing
  to one, non-negative queue depths.
"""

from __future__ import annotations

from .config import LintConfig
from .findings import Finding, Severity
from .invariants import (INVARIANTS_ENV, InvariantViolation,
                         invariants_enabled)
from .rules import ALL_RULES, Rule

__all__ = ["ALL_RULES", "Finding", "INVARIANTS_ENV", "InvariantViolation",
           "LintConfig", "Linter", "Rule", "Severity", "invariants_enabled",
           "lint_paths"]


def __getattr__(name: str):
    # the lint runner is loaded lazily so `python -m repro.devtools.lint`
    # does not find the module pre-imported in sys.modules (runpy warning)
    if name in ("Linter", "lint_paths"):
        from . import lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
