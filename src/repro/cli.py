"""Command-line interface: run paper figures and one-off optimizations.

Usage::

    python -m repro list
    python -m repro figure fig6a [--duration 40] [--seed 42]
    python -m repro figure fig4
    python -m repro solve --app chain --west 650 --east 100 [--cost-weight W]

``figure`` regenerates one paper experiment and prints the same series the
benchmark harness saves; ``solve`` runs a single optimizer pass on a stock
application and prints the routing rules.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["APPS", "FIGURES", "build_parser", "cmd_figure", "cmd_list",
           "cmd_solve", "cmd_survey", "main"]

from .analysis.report import format_cdf_series, format_comparison, format_table
from .core.controller.global_controller import GlobalController
from .experiments.harness import compare_policies
from .experiments import scenarios as sc
from .sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                  linear_chain_app, social_network_app, two_class_app,
                  two_region_latency)

FIGURES = ("fig3", "fig4", "fig6a", "fig6b", "fig6c", "fig6d")
APPS = {
    "chain": lambda: linear_chain_app(n_services=3, exec_time=0.010),
    "anomaly": anomaly_detection_app,
    "two-class": two_class_app,
    "social": social_network_app,
}


def _figure_setup(name: str, duration: float, seed: int):
    if name == "fig6a":
        return sc.fig6a_how_much(duration=duration, seed=seed)
    if name == "fig6b":
        return sc.fig6b_which_cluster(duration=duration, seed=seed)
    if name == "fig6c":
        return sc.fig6c_multihop(duration=duration, seed=seed)
    if name == "fig6d":
        return sc.fig6d_traffic_classes(duration=duration, seed=seed)
    raise ValueError(f"unknown figure {name!r}")


def cmd_list(args: argparse.Namespace) -> int:
    print("figures:", ", ".join(FIGURES))
    print("apps:   ", ", ".join(sorted(APPS)))
    print("\nsee EXPERIMENTS.md for what each figure demonstrates")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from .experiments.survey import survey_table
    print(survey_table())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name == "fig3":
        return _run_fig3()
    if name == "fig4":
        return _run_fig4()
    setup = _figure_setup(name, args.duration, args.seed)
    policies = list(setup.policies)
    if name == "fig6c":
        policies.append(sc.locality_failover_policy())
    comparison = compare_policies(setup.scenario, policies)
    print(format_cdf_series(comparison.cdfs(), title=f"{name} latency CDF"))
    print()
    print(format_comparison(comparison, baseline="waterfall",
                            target="slate"))
    return 0


def _run_fig3() -> int:
    from .analysis.fluid import evaluate_rules
    from .core.controller.policy import SlatePolicy
    rows = []
    for west in (150.0, 250.0, 350.0, 420.0, 470.0):
        scenario = sc.fig3_threshold_scenario(west)
        ctx = scenario.context()
        row = [west]
        for policy in (
                sc.waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, 250.0),
                sc.waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, 480.0),
                SlatePolicy()):
            rules = policy.compute_rules(ctx)
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, rules)
            row.append(prediction.mean_latency * 1000)
        rows.append(row)
    print(format_table(
        ["west load (rps)", "conservative 250 (ms)", "aggressive 480 (ms)",
         "SLATE (ms)"], rows,
        title="Fig. 3: static-threshold pathology"))
    return 0


def _run_fig4() -> int:
    rows = []
    for west in range(100, 1001, 100):
        row = [float(west)]
        for one_way_ms in (5.0, 25.0, 50.0):
            scenario = sc.fig4_offload_threshold_problem(one_way_ms,
                                                         float(west))
            result = GlobalController.oracle(
                scenario.app, scenario.deployment, scenario.demand)
            row.append(result.ingress_local_fraction("default", "west")
                       * west)
        rows.append(row)
    print(format_table(
        ["west load (rps)", "local @ 5ms", "local @ 25ms", "local @ 50ms"],
        rows, title="Fig. 4: locally served RPS at West"))
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    app = APPS[args.app]()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=args.replicas,
        latency=two_region_latency(args.rtt_ms / 2))
    demand = DemandMatrix()
    for cls in app.classes:
        share = 1.0 / len(app.classes)
        demand.set(cls, "west", args.west * share)
        if args.east > 0:
            demand.set(cls, "east", args.east * share)
    result = GlobalController.oracle(app, deployment, demand,
                                     cost_weight=args.cost_weight)
    print(f"status: {result.status}   objective: {result.objective:.3f}")
    print(f"predicted mean latency: "
          f"{result.predicted_mean_latency * 1000:.2f} ms")
    print(f"predicted egress cost: "
          f"${result.predicted_egress_cost_rate * 3600:.4f}/hour")
    print("\nrouting rules:")
    for rule in result.rules():
        weights = ", ".join(f"{c}={w:.1%}" for c, w in rule.weights)
        print(f"  {rule.service} [{rule.traffic_class}] @ "
              f"{rule.src_cluster}: {weights}")
    if args.render_istio:
        from .mesh.render import destination_rules, rules_to_virtualservices
        print("\n# --- Istio manifests ---")
        print(rules_to_virtualservices(result.rules(), app), end="")
        print("---")
        print(destination_rules(result.rules()), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLATE (HotNets '24) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and stock apps")
    sub.add_parser("survey", help="print the paper's §2 operator survey")

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--duration", type=float, default=40.0,
                        help="simulated seconds (fig6x only)")
    figure.add_argument("--seed", type=int, default=42)

    solve = sub.add_parser("solve", help="one-shot optimization")
    solve.add_argument("--app", choices=sorted(APPS), default="chain")
    solve.add_argument("--west", type=float, default=650.0,
                       help="total west ingress RPS")
    solve.add_argument("--east", type=float, default=100.0,
                       help="total east ingress RPS")
    solve.add_argument("--replicas", type=int, default=5)
    solve.add_argument("--rtt-ms", type=float, default=50.0)
    solve.add_argument("--cost-weight", type=float, default=0.0)
    solve.add_argument("--render-istio", action="store_true",
                       help="emit Istio VirtualService/DestinationRule "
                            "manifests for the plan")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "figure": cmd_figure,
                "solve": cmd_solve, "survey": cmd_survey}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
