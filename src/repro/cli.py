"""Command-line interface: run paper figures and one-off optimizations.

Usage::

    python -m repro list
    python -m repro figure fig6a [--duration 40] [--seed 42]
    python -m repro figure fig4
    python -m repro solve --app chain --west 650 --east 100 [--cost-weight W]
    python -m repro run --scenario diurnal --fidelity hybrid --rps 500000
    python -m repro obs trace --figure fig6a --format chrome -o trace.json
    python -m repro obs metrics --figure fig6a --format prom
    python -m repro obs decisions --scenario diurnal
    python -m repro obs forecast --scenario slo --model holt --table
    python -m repro obs anomalies --scenario chaos --table

``figure`` regenerates one paper experiment and prints the same series the
benchmark harness saves; ``solve`` runs a single optimizer pass on a stock
application and prints the routing rules; ``obs`` runs a scenario with the
observability layer enabled and exports traces, metrics, or the Global
Controller decision log (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["APPS", "FIGURES", "build_parser", "cmd_chaos", "cmd_figure",
           "cmd_list", "cmd_obs", "cmd_run", "cmd_solve", "cmd_survey",
           "main"]

from .analysis.report import format_cdf_series, format_comparison, format_table
from .core.controller.global_controller import GlobalController
from .experiments.harness import compare_policies
from .experiments import scenarios as sc
from .sim import (DemandMatrix, DeploymentSpec, anomaly_detection_app,
                  linear_chain_app, social_network_app, two_class_app,
                  two_region_latency)

FIGURES = ("fig3", "fig4", "fig6a", "fig6b", "fig6c", "fig6d")
APPS = {
    "chain": lambda: linear_chain_app(n_services=3, exec_time=0.010),
    "anomaly": anomaly_detection_app,
    "two-class": two_class_app,
    "social": social_network_app,
}


def _figure_setup(name: str, duration: float, seed: int):
    if name == "fig6a":
        return sc.fig6a_how_much(duration=duration, seed=seed)
    if name == "fig6b":
        return sc.fig6b_which_cluster(duration=duration, seed=seed)
    if name == "fig6c":
        return sc.fig6c_multihop(duration=duration, seed=seed)
    if name == "fig6d":
        return sc.fig6d_traffic_classes(duration=duration, seed=seed)
    raise ValueError(f"unknown figure {name!r}")


def cmd_list(args: argparse.Namespace) -> int:
    print("figures:", ", ".join(FIGURES))
    print("apps:   ", ", ".join(sorted(APPS)))
    print("\nsee EXPERIMENTS.md for what each figure demonstrates")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from .experiments.survey import survey_table
    print(survey_table())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name == "fig3":
        return _run_fig3()
    if name == "fig4":
        return _run_fig4()
    setup = _figure_setup(name, args.duration, args.seed)
    policies = list(setup.policies)
    if name == "fig6c":
        policies.append(sc.locality_failover_policy())
    comparison = compare_policies(setup.scenario, policies)
    print(format_cdf_series(comparison.cdfs(), title=f"{name} latency CDF"))
    print()
    print(format_comparison(comparison, baseline="waterfall",
                            target="slate"))
    return 0


def _run_fig3() -> int:
    from .analysis.fluid import evaluate_rules
    from .core.controller.policy import SlatePolicy
    rows = []
    for west in (150.0, 250.0, 350.0, 420.0, 470.0):
        scenario = sc.fig3_threshold_scenario(west)
        ctx = scenario.context()
        row = [west]
        for policy in (
                sc.waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, 250.0),
                sc.waterfall_with_absolute_threshold(
                    scenario.app, scenario.deployment, 480.0),
                SlatePolicy()):
            rules = policy.compute_rules(ctx)
            prediction = evaluate_rules(scenario.app, scenario.deployment,
                                        scenario.demand, rules)
            row.append(prediction.mean_latency * 1000)
        rows.append(row)
    print(format_table(
        ["west load (rps)", "conservative 250 (ms)", "aggressive 480 (ms)",
         "SLATE (ms)"], rows,
        title="Fig. 3: static-threshold pathology"))
    return 0


def _run_fig4() -> int:
    rows = []
    for west in range(100, 1001, 100):
        row = [float(west)]
        for one_way_ms in (5.0, 25.0, 50.0):
            scenario = sc.fig4_offload_threshold_problem(one_way_ms,
                                                         float(west))
            result = GlobalController.oracle(
                scenario.app, scenario.deployment, scenario.demand)
            row.append(result.ingress_local_fraction("default", "west")
                       * west)
        rows.append(row)
    print(format_table(
        ["west load (rps)", "local @ 5ms", "local @ 25ms", "local @ 50ms"],
        rows, title="Fig. 4: locally served RPS at West"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import math as math_module
    import time
    from .core.controller.policy import SlatePolicy
    from .experiments.harness import Scenario, run_policy
    from .obs.timeseries import percentile

    rps = args.rps if args.rps is not None else 150.0
    # size pools for the diurnal peak (base * (1 + amplitude)) at ~70%
    # utilization so every fidelity runs the same stable deployment
    replicas = args.replicas if args.replicas is not None else max(
        5, math_module.ceil(rps * 0.010 * 1.5 / 0.7))
    timeline = None
    if args.scenario == "diurnal":
        setup = sc.diurnal_control_setup(
            base_rps=rps, duration=args.duration, epoch=args.epoch,
            replicas=replicas, seed=args.seed)
        scenario, policy, timeline = setup.scenario, setup.policy, \
            setup.timeline
    else:
        app = linear_chain_app(n_services=3, exec_time=0.010)
        deployment = DeploymentSpec.uniform(
            app.services(), ["west", "east"], replicas=replicas,
            latency=two_region_latency(25.0))
        demand = DemandMatrix()
        demand.set("default", "west", rps)
        demand.set("default", "east", rps)
        scenario = Scenario("constant", app, deployment, demand,
                            duration=args.duration, warmup=0.0,
                            seed=args.seed, epoch=args.epoch)
        policy = SlatePolicy()
    started = time.perf_counter()
    outcome = run_policy(scenario, policy, timeline=timeline,
                         fidelity=args.fidelity,
                         sample_rate=args.sample_rate,
                         fluid_tick=args.tick)
    wall = time.perf_counter() - started
    offered = rps * 2 * args.duration
    latencies = outcome.latencies
    document = {
        "command": "run", "scenario": args.scenario,
        "fidelity": args.fidelity, "duration": args.duration,
        "seed": args.seed, "rps_per_cluster": rps, "replicas": replicas,
        "sample_rate": args.sample_rate, "fluid_tick": args.tick,
        "offered_requests": offered,
        "wall_seconds": round(wall, 4),
        "sampled_latency": {
            "count": len(latencies),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        },
        "egress": {"bytes": outcome.egress_bytes,
                   "cost": outcome.egress_cost},
    }
    if args.json or args.output:
        _emit_json(document, args.output, "run report")
    else:
        stats = document["sampled_latency"]
        print(f"{args.scenario} @ {args.fidelity}: {rps:g} rps/cluster x "
              f"{args.duration:g}s sim ({offered:g} requests offered) in "
              f"{wall:.2f}s wall")
        if stats["count"]:
            print(f"sampled latency (n={stats['count']}): "
                  f"p50={stats['p50'] * 1000:.1f}ms "
                  f"p95={stats['p95'] * 1000:.1f}ms "
                  f"p99={stats['p99'] * 1000:.1f}ms")
        else:
            print("sampled latency: none (fluid fidelity tracks bulk "
                  "flows only; use hybrid for percentiles)")
        print(f"egress: {outcome.egress_bytes} bytes "
              f"(${outcome.egress_cost:.4f})")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    app = APPS[args.app]()
    deployment = DeploymentSpec.uniform(
        app.services(), ["west", "east"], replicas=args.replicas,
        latency=two_region_latency(args.rtt_ms / 2))
    demand = DemandMatrix()
    for cls in app.classes:
        share = 1.0 / len(app.classes)
        demand.set(cls, "west", args.west * share)
        if args.east > 0:
            demand.set(cls, "east", args.east * share)
    result = GlobalController.oracle(app, deployment, demand,
                                     cost_weight=args.cost_weight)
    print(f"status: {result.status}   objective: {result.objective:.3f}")
    print(f"predicted mean latency: "
          f"{result.predicted_mean_latency * 1000:.2f} ms")
    print(f"predicted egress cost: "
          f"${result.predicted_egress_cost_rate * 3600:.4f}/hour")
    print("\nrouting rules:")
    for rule in result.rules():
        weights = ", ".join(f"{c}={w:.1%}" for c, w in rule.weights)
        print(f"  {rule.service} [{rule.traffic_class}] @ "
              f"{rule.src_cluster}: {weights}")
    if args.render_istio:
        from .mesh.render import destination_rules, rules_to_virtualservices
        print("\n# --- Istio manifests ---")
        print(rules_to_virtualservices(result.rules(), app), end="")
        print("---")
        print(destination_rules(result.rules()), end="")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    handlers = {"trace": _obs_trace, "metrics": _obs_metrics,
                "decisions": _obs_decisions, "timeseries": _obs_timeseries,
                "slo": _obs_slo, "diff": _obs_diff, "explain": _obs_explain,
                "forecast": _obs_forecast, "anomalies": _obs_anomalies}
    return handlers[args.obs_command](args)


def _obs_trace(args: argparse.Namespace) -> int:
    from .experiments.harness import run_policy
    from .obs import (Observability, ObservabilityConfig, trace_summary,
                      write_chrome_trace, write_trace_jsonl)
    setup = _figure_setup(args.figure, args.duration, args.seed)
    obs = Observability(ObservabilityConfig(tracing=True))
    run_policy(setup.scenario, setup.slate, observability=obs)
    tracer = obs.tracer
    print(f"{args.figure} (slate, {args.duration:g}s sim): "
          f"{len(tracer)} requests, {tracer.span_count} spans traced")
    if args.format == "chrome":
        out = args.output or f"{args.figure}_trace_chrome.json"
        events = write_chrome_trace(tracer, out,
                                    max_requests=args.max_requests)
        print(f"wrote {events} trace events to {out}")
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0
    if args.format == "jsonl":
        out = args.output or f"{args.figure}_trace.jsonl"
        count = write_trace_jsonl(tracer, out)
        print(f"wrote {count} spans to {out}")
        return 0
    # summary: critical paths of the slowest requests
    for record in tracer.slowest_requests(args.top):
        summary = trace_summary(tracer.tree(record.request_id))
        print(f"\nrequest {record.request_id} "
              f"[{record.traffic_class}] via {record.ingress_cluster}: "
              f"{record.latency * 1000:.2f} ms e2e, "
              f"{summary['spans']} spans, "
              f"{summary['cross_cluster_hops']} cross-cluster hops")
        print(f"  critical path: queue {summary['critical_queue'] * 1000:.2f}"
              f" ms | exec {summary['critical_exec'] * 1000:.2f} ms"
              f" | wan {summary['critical_wan'] * 1000:.2f} ms")
        for hop in summary["critical_path"]:
            print(f"    {hop['hop']:<14} total {hop['total'] * 1000:8.2f} ms"
                  f"  queue {hop['queue_wait'] * 1000:7.2f}"
                  f"  exec {hop['exec_time'] * 1000:7.2f}"
                  f"  downstream {hop['downstream'] * 1000:7.2f}"
                  f"  wan-rtt {hop['wan_rtt'] * 1000:6.2f}")
    return 0


def _obs_metrics(args: argparse.Namespace) -> int:
    import json as json_module
    from .experiments.harness import run_policy
    from .obs import Observability, ObservabilityConfig
    setup = _figure_setup(args.figure, args.duration, args.seed)
    obs = Observability(ObservabilityConfig(metrics=True, profiling=True))
    run_policy(setup.scenario, setup.slate, observability=obs)
    if args.format == "prom":
        text = obs.metrics.to_prometheus()
    else:
        text = json_module.dumps(obs.metrics.snapshot(), indent=2,
                                 sort_keys=True)
    if args.output:
        from pathlib import Path
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(obs.metrics)} metrics to {args.output}")
    else:
        print(text)
    return 0


def _obs_decisions(args: argparse.Namespace) -> int:
    import dataclasses
    from .core.controller.global_controller import GlobalControllerConfig
    from .core.controller.policy import SlatePolicy
    from .experiments.harness import run_policy
    from .obs import Observability, ObservabilityConfig, write_decisions_jsonl
    obs = Observability(ObservabilityConfig(decisions=True))
    if args.scenario == "diurnal":
        setup = sc.diurnal_control_setup(
            duration=args.duration, seed=args.seed)
        run_policy(setup.scenario, setup.policy, observability=obs,
                   timeline=setup.timeline)
    else:   # fig6a under an adaptive controller
        figure = sc.fig6a_how_much(duration=args.duration, seed=args.seed)
        scenario = dataclasses.replace(figure.scenario, epoch=args.epoch)
        policy = SlatePolicy(
            GlobalControllerConfig(rho_max=0.95, demand_quantum=25.0,
                                   learn_profiles=False),
            adaptive=True)
        run_policy(scenario, policy, observability=obs)
    log = obs.decisions
    if args.format == "jsonl":
        out = args.output or f"{args.scenario}_decisions.jsonl"
        count = write_decisions_jsonl(log, out)
        print(f"wrote {count} decisions to {out}")
        return 0
    print(log.render())
    return 0


def _obs_explain(args: argparse.Namespace) -> int:
    from .obs import (Observability, ObservabilityConfig,
                      write_flight_dump, write_provenance_jsonl)
    obs = Observability(ObservabilityConfig(provenance=True, decisions=True,
                                            timeseries=True))
    if args.scenario == "chaos":
        from .chaos import run_chaos
        duration = args.duration if args.duration is not None else 40.0
        setup = sc.chaos_outage_setup(duration=duration, seed=args.seed)
        run_chaos(setup.scenario, setup.policy, setup.plan,
                  fallback=setup.fallback, max_rule_age=setup.max_rule_age,
                  observability=obs)
    else:
        from .experiments.harness import run_policy
        duration = args.duration if args.duration is not None else 240.0
        # replicas=2 keeps peak diurnal demand above one cluster's
        # capacity, so the optimizer actually shifts weight cross-cluster
        # (the default 5 replicas never offload — nothing to explain)
        setup = sc.diurnal_control_setup(duration=duration, seed=args.seed,
                                         replicas=args.replicas)
        run_policy(setup.scenario, setup.policy, observability=obs,
                   timeline=setup.timeline)
    provenance = obs.provenance
    print(provenance.explain(args.traffic_class, at=args.at))
    if args.table:
        print()
        print(provenance.render())
    if args.output:
        count = write_provenance_jsonl(provenance, args.output)
        print(f"wrote {count} provenance records to {args.output}")
    if args.dump:
        count = write_flight_dump(provenance, args.dump)
        print(f"wrote {count} flight-recorder snapshots to {args.dump}")
    return 0


def _obs_timeseries(args: argparse.Namespace) -> int:
    from .experiments.harness import run_policy
    from .obs import (Observability, ObservabilityConfig,
                      write_timeseries_json)
    setup = _figure_setup(args.figure, args.duration, args.seed)
    obs = Observability(ObservabilityConfig(
        timeseries=True, scrape_interval=args.interval))
    run_policy(setup.scenario, setup.slate, observability=obs)
    store = obs.timeseries
    if args.output:
        count = write_timeseries_json(store, args.output)
        print(f"wrote {count} series ({store.scrape_count} scrapes) "
              f"to {args.output}")
        return 0
    print(f"{args.figure} (slate, {args.duration:g}s sim, "
          f"interval {args.interval:g}s): {store.scrape_count} scrapes, "
          f"{store.series_count()} series")
    for name in store.names():
        for series in store.all_series(name):
            labels = ",".join(f"{k}={v}" for k, v in series.labels)
            last = series.last
            print(f"  {name}{{{labels}}}: {len(series)} points, "
                  f"last={last[1]:.6g} @ t={last[0]:.1f}")
    return 0


def _obs_slo(args: argparse.Namespace) -> int:
    from .experiments.harness import run_policy
    from .obs import (Observability, join_alerts_decisions,
                      write_alerts_jsonl, write_decisions_jsonl,
                      write_timeseries_json)
    setup = sc.slo_burnrate_setup(duration=args.duration, seed=args.seed)
    obs = Observability(setup.observability(scrape_interval=args.interval))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    if args.json:
        document = {"command": "slo", "scenario": "slo_burnrate",
                    "duration": args.duration, "seed": args.seed,
                    "interval": args.interval,
                    "alerts": [alert.as_dict() for alert in obs.alerts]}
        _emit_json(document, args.output, "alert report")
    elif args.format == "jsonl":
        out = args.output or "slo_alerts.jsonl"
        count = write_alerts_jsonl(obs.alerts, out)
        print(f"wrote {count} alerts to {out}")
    else:
        print(obs.alerts.render())
        print()
        for row in join_alerts_decisions(obs.alerts, obs.decisions):
            alert = row["alert"]
            resolved = ("active" if alert.resolved_at is None
                        else f"{alert.resolved_at:.1f}")
            print(f"{alert.rule} [{alert.fired_at:.1f}, {resolved}]: "
                  f"{len(row['decisions'])} controller epochs overlap, "
                  f"{row['replans']} fresh re-plans")
    if args.timeseries_out:
        count = write_timeseries_json(obs.timeseries, args.timeseries_out)
        print(f"wrote {count} series to {args.timeseries_out}")
    if args.decisions_out:
        count = write_decisions_jsonl(obs.decisions, args.decisions_out)
        print(f"wrote {count} decisions to {args.decisions_out}")
    return 0


#: per-scenario default simulated duration for the predictive subcommands
_PREDICTIVE_DURATIONS = {"slo": 180.0, "chaos": 40.0, "diurnal": 240.0}


def _predictive_season(args: argparse.Namespace,
                       default_period: float | None) -> float:
    """Resolve the holt-winters seasonal period (simulated seconds)."""
    if getattr(args, "model", "holt") != "holt-winters":
        return args.season if getattr(args, "season", None) is not None else 0.0
    if args.season is not None:
        return args.season
    if default_period is not None:
        return default_period
    raise SystemExit("--model holt-winters needs --season SECONDS on the "
                     "slo scenario (diurnal defaults to its period)")


def _run_predictive(args: argparse.Namespace, *, forecast: bool,
                    anomaly: bool):
    """Run the chosen scenario with the predictive pillar on; return obs."""
    from .experiments.harness import run_policy
    from .obs import Observability, ObservabilityConfig
    if args.duration is None:
        args.duration = _PREDICTIVE_DURATIONS[args.scenario]
    model = getattr(args, "model", "holt")
    horizon = getattr(args, "horizon", 5)
    if args.scenario == "slo":
        season = _predictive_season(args, None)
        setup = sc.slo_burnrate_setup(duration=args.duration, seed=args.seed)
        obs = Observability(setup.observability(
            scrape_interval=args.interval, forecast=forecast,
            anomaly=anomaly, forecast_model=model, season_length=season,
            forecast_horizon=horizon))
        run_policy(setup.scenario, setup.policy, observability=obs,
                   timeline=setup.timeline)
        return obs
    if args.scenario == "chaos":
        from .chaos import run_chaos
        setup = sc.chaos_outage_setup(duration=args.duration, seed=args.seed)
        obs = Observability(setup.observability(
            timeseries=True, scrape_interval=args.interval,
            forecast=forecast, anomaly=anomaly, forecast_model=model,
            forecast_horizon=horizon))
        run_chaos(setup.scenario, setup.policy, setup.plan,
                  fallback=setup.fallback, max_rule_age=setup.max_rule_age,
                  observability=obs)
        return obs
    period = args.period if getattr(args, "period", None) is not None \
        else args.duration
    season = _predictive_season(args, period)
    setup = sc.diurnal_control_setup(duration=args.duration, seed=args.seed,
                                     period=period)
    obs = Observability(ObservabilityConfig(
        decisions=True, timeseries=True, forecast=forecast, anomaly=anomaly,
        scrape_interval=args.interval, forecast_model=model,
        season_length=season, forecast_horizon=horizon))
    run_policy(setup.scenario, setup.policy, observability=obs,
               timeline=setup.timeline)
    return obs


def _emit_json(document: dict, output: str | None, what: str) -> None:
    import json as json_module
    from pathlib import Path
    text = json_module.dumps(document, indent=2, sort_keys=True)
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {what} to {output}")
    else:
        print(text)


def _obs_forecast(args: argparse.Namespace) -> int:
    from .obs import write_signals_jsonl
    obs = _run_predictive(args, forecast=True, anomaly=False)
    engine = obs.forecast
    document = {"command": "forecast", "scenario": args.scenario,
                "duration": args.duration, "seed": args.seed,
                "interval": args.interval, "forecast": engine.summary()}
    if obs.breach is not None:
        document["predictions"] = [p.as_dict()
                                   for p in obs.breach.predictions]
        document["prediction_score"] = obs.breach.score().as_dict()
    if args.json or args.output:
        _emit_json(document, args.output, "forecast report")
    else:
        backtests = engine.backtests()
        print(f"{args.scenario} ({args.duration:g}s sim, interval "
              f"{args.interval:g}s): model={engine.model_name} "
              f"horizon={engine.horizon} ticks, {engine.samples} ticks "
              f"sampled, {len(backtests)} series backtested")
        header = f"{'evals':>6} {'MASE':>8} {'sMAPE':>8} {'MAE':>11} series"
        print(header)
        print("-" * len(header))
        for sid, score in sorted(backtests.items()):
            print(f"{score.evaluations:>6} {score.mase:>8.3f} "
                  f"{score.smape:>8.3f} {score.mae:>11.4g} {sid}")
        if obs.breach is not None:
            score = obs.breach.score()
            print(f"\npredicted breaches: {score.predictions} "
                  f"(hits {score.hits}, misses {score.misses}, "
                  f"open {score.open}); precision {score.precision:.2f} "
                  f"recall {score.recall:.2f}, mean lead "
                  f"{score.mean_lead_seconds:.1f}s")
            if args.table:
                for p in obs.breach.predictions:
                    lead = ("-" if p.actual_lead is None
                            else f"{p.actual_lead:.1f}s")
                    print(f"  t={p.fired_at:.1f} {p.rule} "
                          f"eta={p.breach_eta:.1f} "
                          f"lead_est={p.lead_estimate:.1f}s "
                          f"outcome={p.outcome} actual_lead={lead}")
    if args.signals_out:
        count = write_signals_jsonl(obs.signals, args.signals_out)
        print(f"wrote {count} signals to {args.signals_out}")
    return 0


def _obs_anomalies(args: argparse.Namespace) -> int:
    from .obs import write_anomalies_jsonl, write_signals_jsonl
    obs = _run_predictive(args, forecast=False, anomaly=True)
    engine = obs.anomaly
    summary = engine.summary()
    if args.json:
        document = {"command": "anomalies", "scenario": args.scenario,
                    "duration": args.duration, "seed": args.seed,
                    "interval": args.interval, "summary": summary,
                    "events": [event.as_dict() for event in engine.log]}
        _emit_json(document, None, "anomaly report")
    else:
        detectors = ", ".join(f"{name}={count}" for name, count
                              in summary["by_detector"].items()) or "none"
        print(f"{args.scenario} ({args.duration:g}s sim, interval "
              f"{args.interval:g}s): {summary['events']} anomaly events "
              f"over {summary['followed_series']} series ({detectors})")
        if args.table:
            print()
            print(engine.log.render())
    if args.output:
        count = write_anomalies_jsonl(engine.log, args.output)
        print(f"wrote {count} anomaly events to {args.output}")
    if args.signals_out:
        count = write_signals_jsonl(obs.signals, args.signals_out)
        print(f"wrote {count} signals to {args.signals_out}")
    return 0


def _obs_diff(args: argparse.Namespace) -> int:
    import json as json_module
    from .obs.diff import DiffConfig, diff_files
    key_tolerances = []
    for spec in args.tolerance or []:
        pattern, _, value = spec.rpartition("=")
        if not pattern:
            raise SystemExit(
                f"--tolerance wants PATTERN=FRACTION, got {spec!r}")
        key_tolerances.append((pattern, float(value)))
    config = DiffConfig(rel_tolerance=args.rel_tolerance,
                        key_tolerances=tuple(key_tolerances),
                        fail_on_missing=not args.allow_missing)
    try:
        report = diff_files(args.baseline, args.candidate, config)
    except OSError as error:
        print(f"obs diff: cannot read artifact: {error}", file=sys.stderr)
        return 2
    except ValueError as error:   # bad JSON or unrecognized artifact shape
        print(f"obs diff: invalid artifact: {error}", file=sys.stderr)
        return 2
    print(report.render(all_keys=args.all))
    if args.report:
        from pathlib import Path
        Path(args.report).write_text(
            json_module.dumps(report.as_dict(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        print(f"wrote diff report to {args.report}")
    return 1 if report.has_regressions else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    handlers = {"run": _chaos_run, "report": _chaos_report}
    return handlers[args.chaos_command](args)


def _chaos_setup(args: argparse.Namespace):
    return sc.chaos_outage_setup(
        duration=args.duration, seed=args.seed,
        fault_start=args.fault_start, fault_duration=args.fault_duration,
        wan_multiplier=args.wan_multiplier,
        max_rule_age=args.max_rule_age, fallback=args.fallback)


def _chaos_percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _chaos_run(args: argparse.Namespace) -> int:
    from .chaos import run_chaos
    setup = _chaos_setup(args)
    fallback = None if args.fallback == "none" else args.fallback
    max_age = None if fallback is None else setup.max_rule_age
    print("fault campaign:")
    for line in setup.plan.describe():
        print(f"  {line}")
    result = run_chaos(setup.scenario, setup.policy, setup.plan,
                       fallback=fallback, max_rule_age=max_age)
    latencies = result.outcome.latencies
    print(f"\n{setup.scenario.name} (slate, {args.duration:g}s sim, "
          f"fallback={args.fallback}): {len(latencies)} requests "
          f"after warm-up")
    if latencies:
        print(f"p50 {_chaos_percentile(latencies, 0.50) * 1000:.1f} ms   "
              f"p95 {_chaos_percentile(latencies, 0.95) * 1000:.1f} ms   "
              f"p99 {_chaos_percentile(latencies, 0.99) * 1000:.1f} ms")
    trips = result.fallback_trips
    reconciled = sum(c.reconciliations for c in result.controllers.values())
    print(f"stale-rule guard trips: {len(trips)}"
          + (f" at t={', '.join(f'{t:.1f}' for t in trips)}" if trips else "")
          + f"; reconciliations: {reconciled}")
    counters = result.chaos.counters()
    print(f"telemetry dropped={counters['reports_dropped']} "
          f"delayed={counters['reports_delayed']}; "
          f"wan transfers dropped={counters['dropped_transfers']}; "
          f"hung requests={result.hung_requests}")
    return 0


def _chaos_report(args: argparse.Namespace) -> int:
    import json as json_module
    from .chaos import FaultPlan, run_chaos
    setup = _chaos_setup(args)
    fallback = None if args.fallback == "none" else args.fallback
    max_age = None if fallback is None else setup.max_rule_age
    result = run_chaos(setup.scenario, setup.policy, setup.plan,
                       fallback=fallback, max_rule_age=max_age)
    # fresh setup for the twin: the faulted policy holds learned state
    twin = _chaos_setup(args)
    baseline = run_chaos(twin.scenario, twin.policy, FaultPlan.empty())
    report = result.resilience(baseline, band=args.band,
                               window=args.window)
    print(report.render())
    if args.output:
        from pathlib import Path
        payload = {"scenario": setup.scenario.name,
                   "fallback": args.fallback,
                   "resilience": report.as_dict(),
                   "faults": [r.as_dict() for r in result.chaos.timeline]}
        Path(args.output).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote resilience report to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLATE (HotNets '24) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures and stock apps")
    sub.add_parser("survey", help="print the paper's §2 operator survey")

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--duration", type=float, default=40.0,
                        help="simulated seconds (fig6x only)")
    figure.add_argument("--seed", type=int, default=42)

    solve = sub.add_parser("solve", help="one-shot optimization")
    solve.add_argument("--app", choices=sorted(APPS), default="chain")
    solve.add_argument("--west", type=float, default=650.0,
                       help="total west ingress RPS")
    solve.add_argument("--east", type=float, default=100.0,
                       help="total east ingress RPS")
    solve.add_argument("--replicas", type=int, default=5)
    solve.add_argument("--rtt-ms", type=float, default=50.0)
    solve.add_argument("--cost-weight", type=float, default=0.0)
    solve.add_argument("--render-istio", action="store_true",
                       help="emit Istio VirtualService/DestinationRule "
                            "manifests for the plan")

    run = sub.add_parser(
        "run", help="run one scenario at a chosen simulation fidelity "
                    "(event | fluid | hybrid; docs/substrate.md)")
    run.add_argument("--scenario", choices=("constant", "diurnal"),
                     default="diurnal")
    run.add_argument("--fidelity", choices=("event", "fluid", "hybrid"),
                     default="hybrid")
    run.add_argument("--rps", type=float, default=None,
                     help="ingress RPS per cluster (default 150)")
    run.add_argument("--duration", type=float, default=60.0,
                     help="simulated seconds")
    run.add_argument("--epoch", type=float, default=10.0,
                     help="adaptive re-plan period (simulated seconds)")
    run.add_argument("--sample-rate", type=float, default=None,
                     help="hybrid: fraction of demand run event-level "
                          "(default 0.05)")
    run.add_argument("--tick", type=float, default=None,
                     help="fluid substrate tick (simulated seconds, "
                          "default 0.1)")
    run.add_argument("--replicas", type=int, default=None,
                     help="replicas per (service, cluster); default sized "
                          "for ~70%% peak utilization")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--json", action="store_true",
                     help="print the run report as JSON")
    run.add_argument("-o", "--output", default=None,
                     help="write the run report JSON here")

    obs = sub.add_parser(
        "obs", help="run with observability on; export traces/metrics/"
                    "decisions (docs/observability.md)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    trace = obs_sub.add_parser("trace",
                               help="distributed trace of a figure scenario")
    trace.add_argument("--figure", choices=("fig6a", "fig6b", "fig6c",
                                            "fig6d"), default="fig6a")
    trace.add_argument("--format", choices=("chrome", "jsonl", "summary"),
                       default="summary")
    trace.add_argument("-o", "--output", default=None,
                       help="output path (default: <figure>_trace_*.json)")
    trace.add_argument("--duration", type=float, default=5.0,
                       help="simulated seconds")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--max-requests", type=int, default=200,
                       help="chrome export: cap on exported request ids "
                            "(keeps the file viewer-loadable)")
    trace.add_argument("--top", type=int, default=3,
                       help="summary: how many slowest requests to break "
                            "down")

    metrics = obs_sub.add_parser("metrics",
                                 help="metrics snapshot of a figure scenario")
    metrics.add_argument("--figure", choices=("fig6a", "fig6b", "fig6c",
                                              "fig6d"), default="fig6a")
    metrics.add_argument("--format", choices=("json", "prom"),
                         default="json")
    metrics.add_argument("-o", "--output", default=None,
                         help="output path (default: stdout)")
    metrics.add_argument("--duration", type=float, default=10.0)
    metrics.add_argument("--seed", type=int, default=42)

    decisions = obs_sub.add_parser(
        "decisions", help="Global Controller epoch decision log")
    decisions.add_argument("--scenario", choices=("diurnal", "fig6a"),
                           default="diurnal")
    decisions.add_argument("--format", choices=("text", "jsonl"),
                           default="text")
    decisions.add_argument("-o", "--output", default=None)
    decisions.add_argument("--duration", type=float, default=240.0,
                           help="simulated seconds")
    decisions.add_argument("--epoch", type=float, default=10.0,
                           help="re-plan period (fig6a scenario)")
    decisions.add_argument("--seed", type=int, default=42)

    timeseries = obs_sub.add_parser(
        "timeseries", help="scrape a figure scenario into sim-time series")
    timeseries.add_argument("--figure", choices=("fig6a", "fig6b", "fig6c",
                                                 "fig6d"), default="fig6a")
    timeseries.add_argument("--interval", type=float, default=1.0,
                            help="scrape interval (simulated seconds)")
    timeseries.add_argument("-o", "--output", default=None,
                            help="write the snapshot JSON here "
                                 "(default: print a summary)")
    timeseries.add_argument("--duration", type=float, default=40.0)
    timeseries.add_argument("--seed", type=int, default=42)

    slo = obs_sub.add_parser(
        "slo", help="run the SLO burn-rate scenario; show/export alerts")
    slo.add_argument("--format", choices=("text", "jsonl"), default="text")
    slo.add_argument("-o", "--output", default=None,
                     help="jsonl format: alert log path")
    slo.add_argument("--interval", type=float, default=1.0,
                     help="scrape interval (simulated seconds)")
    slo.add_argument("--duration", type=float, default=180.0)
    slo.add_argument("--seed", type=int, default=42)
    slo.add_argument("--timeseries-out", default=None,
                     help="also write the time-series snapshot here")
    slo.add_argument("--decisions-out", default=None,
                     help="also write the decision log here")
    slo.add_argument("--json", action="store_true",
                     help="print one JSON document instead of text")

    forecast = obs_sub.add_parser(
        "forecast", help="fit online forecast models to a scenario's "
                         "scraped series; backtests + predicted breaches")
    forecast.add_argument("--scenario", choices=("slo", "diurnal"),
                          default="slo")
    forecast.add_argument("--model",
                          choices=("ewma", "holt", "holt-winters"),
                          default="holt")
    forecast.add_argument("--horizon", type=int, default=5,
                          help="forecast horizon (scrape ticks)")
    forecast.add_argument("--season", type=float, default=None,
                          help="holt-winters seasonal period (simulated "
                               "seconds; diurnal defaults to its period)")
    forecast.add_argument("--period", type=float, default=None,
                          help="diurnal scenario: demand period (simulated "
                               "seconds; default: the full duration, i.e. "
                               "one cycle)")
    forecast.add_argument("--interval", type=float, default=1.0,
                          help="scrape interval (simulated seconds)")
    forecast.add_argument("--duration", type=float, default=None,
                          help="simulated seconds (default: 180 slo, "
                               "240 diurnal)")
    forecast.add_argument("--seed", type=int, default=42)
    forecast.add_argument("--table", action="store_true",
                          help="also print the predicted-breach table")
    forecast.add_argument("--json", action="store_true",
                          help="print one JSON document instead of text")
    forecast.add_argument("-o", "--output", default=None,
                          help="write the JSON report here")
    forecast.add_argument("--signals-out", default=None,
                          help="write the signal-bus JSONL here")

    anomalies = obs_sub.add_parser(
        "anomalies", help="streaming anomaly detection (z-score spikes + "
                          "CUSUM changepoints) over a scenario's series")
    anomalies.add_argument("--scenario", choices=("slo", "chaos", "diurnal"),
                           default="chaos")
    anomalies.add_argument("--interval", type=float, default=0.5,
                           help="scrape interval (simulated seconds)")
    anomalies.add_argument("--duration", type=float, default=None,
                           help="simulated seconds (default: 180 slo, "
                                "40 chaos, 240 diurnal)")
    anomalies.add_argument("--seed", type=int, default=42)
    anomalies.add_argument("--table", action="store_true",
                           help="also print the full event table")
    anomalies.add_argument("--json", action="store_true",
                           help="print one JSON document instead of text")
    anomalies.add_argument("-o", "--output", default=None,
                           help="write the anomaly-event JSONL here")
    anomalies.add_argument("--signals-out", default=None,
                           help="write the signal-bus JSONL here")

    explain = obs_sub.add_parser(
        "explain", help="why did traffic for a class shift? walk the "
                        "provenance chain for one epoch")
    explain.add_argument("traffic_class", nargs="?", default="default",
                         help="traffic class to explain (default: default)")
    explain.add_argument("--at", type=float, default=None,
                         help="explain the newest epoch at or before this "
                              "sim time (default: largest shift)")
    explain.add_argument("--scenario", choices=("diurnal", "chaos"),
                         default="diurnal")
    explain.add_argument("--duration", type=float, default=None,
                         help="simulated seconds (default: 240 diurnal, "
                              "40 chaos)")
    explain.add_argument("--seed", type=int, default=42)
    explain.add_argument("--replicas", type=int, default=2,
                         help="diurnal scenario replicas per pool; 2 makes "
                              "peak demand spill cross-cluster")
    explain.add_argument("--table", action="store_true",
                         help="also print the flight-recorder ring table")
    explain.add_argument("-o", "--output", default=None,
                         help="write provenance records JSONL here")
    explain.add_argument("--dump", default=None,
                         help="write anomaly flight-recorder snapshots "
                              "JSONL here")

    diff = obs_sub.add_parser(
        "diff", help="compare two runs' exported artifacts; exit 1 on "
                     "regression")
    diff.add_argument("baseline", help="baseline artifact (.json/.jsonl)")
    diff.add_argument("candidate", help="candidate artifact (.json/.jsonl)")
    diff.add_argument("--rel-tolerance", type=float, default=0.05,
                      help="default relative tolerance band "
                           "(fraction of baseline)")
    diff.add_argument("--tolerance", action="append", metavar="PATTERN=FRAC",
                      help="per-key tolerance override (glob pattern); "
                           "repeatable")
    diff.add_argument("--allow-missing", action="store_true",
                      help="don't fail when a baseline key is absent in "
                           "the candidate")
    diff.add_argument("--all", action="store_true",
                      help="show unchanged keys too")
    diff.add_argument("--report", default=None,
                      help="write the full diff report JSON here")

    chaos = sub.add_parser(
        "chaos", help="run a fault campaign; score resilience "
                      "(docs/substrate.md fault model)")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    def _chaos_common(p) -> None:
        p.add_argument("--duration", type=float, default=40.0,
                       help="simulated seconds")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--fault-start", type=float, default=10.0)
        p.add_argument("--fault-duration", type=float, default=14.0)
        p.add_argument("--wan-multiplier", type=float, default=20.0,
                       help="west<->east delay inflation during the fault")
        p.add_argument("--max-rule-age", type=float, default=5.0,
                       help="stale-rule guard threshold (simulated seconds)")
        p.add_argument("--fallback",
                       choices=("locality", "waterfall", "none"),
                       default="locality",
                       help="'none' freezes the stale rules (no guard)")

    chaos_run = chaos_sub.add_parser(
        "run", help="run the controller-outage campaign; print what "
                    "happened")
    _chaos_common(chaos_run)

    chaos_report = chaos_sub.add_parser(
        "report", help="score the campaign against an unfaulted twin run")
    _chaos_common(chaos_report)
    chaos_report.add_argument("--band", type=float, default=1.5,
                              help="recovered when window p95 <= band x "
                                   "pre-fault p95")
    chaos_report.add_argument("--window", type=float, default=2.0,
                              help="sliding p95 window (simulated seconds)")
    chaos_report.add_argument("-o", "--output", default=None,
                              help="write the resilience report JSON here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "figure": cmd_figure,
                "solve": cmd_solve, "survey": cmd_survey, "obs": cmd_obs,
                "chaos": cmd_chaos, "run": cmd_run}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
