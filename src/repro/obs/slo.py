"""SLO engine: declarative objectives with multi-window burn-rate alerting.

A :class:`SloRule` states an objective the way production alerting does
(latency-percentile targets, error budgets, egress-cost ceilings); the
:class:`SloEngine` evaluates every rule at each scrape tick against the
time-series store and drives a firing→resolved state machine into the
:class:`~repro.obs.alerts.AlertLog`.

Burn rate follows the multi-window pattern (Google SRE workbook, also what
TraDE's windowed-percentile triggers amount to): the *fraction of the error
budget consumed per unit time*, measured over a fast window (catches sharp
regressions quickly) **and** a slow window (suppresses blips). An alert
fires only when both windows exceed their thresholds and resolves once both
recover — so a diurnal surge that overloads a cluster produces one clean
firing interval instead of a flapping stream.

Rule kinds:

* ``latency`` — budget = allowed fraction of requests slower than
  ``threshold`` seconds. The engine counts each completed request (of the
  selected traffic class) against the threshold as scrapes deliver them.
* ``error-rate`` — budget = allowed fraction of failed requests, measured
  from the cumulative completed/failed counter series.
* ``egress-cost`` — ``threshold`` is a spend ceiling in dollars per
  simulated second; burn = windowed cost rate / ceiling (no budget term).
"""

from __future__ import annotations

from dataclasses import dataclass

from .alerts import Alert, AlertLog
from .timeseries import TimeSeriesStore

__all__ = ["RuleState", "SloEngine", "SloRule", "default_latency_slo"]

_KINDS = ("latency", "error-rate", "egress-cost")

#: avoids division blow-ups on empty windows
_EPSILON = 1e-12


@dataclass(frozen=True)
class SloRule:
    """One declarative objective, evaluated every scrape."""

    name: str
    #: "latency", "error-rate", or "egress-cost"
    kind: str
    #: latency: seconds a request may take; egress-cost: $/sim-second
    #: ceiling; error-rate: unused (the budget alone defines it)
    threshold: float = 0.0
    #: allowed bad fraction (latency / error-rate kinds), e.g. 0.01 = 99%
    budget: float = 0.01
    #: restrict to one traffic class (None = all classes)
    traffic_class: str | None = None
    fast_window: float = 15.0
    slow_window: float = 60.0
    #: burn-rate thresholds per window; both must be exceeded to fire
    fast_burn: float = 4.0
    slow_burn: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"choose from {_KINDS}")
        if self.kind != "error-rate" and self.threshold <= 0:
            raise ValueError(f"rule {self.name!r}: threshold must be > 0")
        if self.kind != "egress-cost" and not 0 < self.budget < 1:
            raise ValueError(f"rule {self.name!r}: budget must be in (0, 1)")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError(
                f"rule {self.name!r}: need 0 < fast_window <= slow_window")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError(f"rule {self.name!r}: burn thresholds must "
                             f"be > 0")


def default_latency_slo(threshold: float = 0.25, budget: float = 0.01,
                        traffic_class: str | None = None,
                        **overrides) -> SloRule:
    """A ready-made p-latency rule (99% of requests under ``threshold``)."""
    return SloRule(name=f"latency-{threshold * 1000:g}ms",
                   kind="latency", threshold=threshold, budget=budget,
                   traffic_class=traffic_class, **overrides)


@dataclass
class RuleState:
    """Mutable evaluation state for one rule."""

    rule: SloRule
    #: cumulative events seen / events over budget threshold
    total: float = 0.0
    bad: float = 0.0
    alert: Alert | None = None

    @property
    def firing(self) -> bool:
        return self.alert is not None and self.alert.active


class SloEngine:
    """Evaluates every rule against the store at each scrape tick.

    The engine materialises per-rule cumulative ``slo_events_total`` /
    ``slo_bad_total`` series (and ``slo_burn_rate`` per window) into the
    same store the scrape loop fills, so burn rates are themselves
    plottable and diffable artifacts.
    """

    def __init__(self, rules, store: TimeSeriesStore,
                 alerts: AlertLog) -> None:
        self.rules = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO rule names in {names}")
        self.store = store
        self.alerts = alerts
        self._states = {rule.name: RuleState(rule) for rule in self.rules}

    def state(self, name: str) -> RuleState:
        return self._states[name]

    # ---------------------------------------------------------- evaluation

    def observe(self, now: float, new_latencies_by_class: dict,
                simulation=None) -> None:
        """Fold one scrape window's observations in, then evaluate.

        ``new_latencies_by_class`` holds the end-to-end latencies completed
        since the previous scrape (empty in reservoir-retention runs —
        latency rules then see no events and stay quiet rather than guess).
        """
        for rule in self.rules:
            state = self._states[rule.name]
            if rule.kind == "latency":
                classes = ([rule.traffic_class]
                           if rule.traffic_class is not None
                           else sorted(new_latencies_by_class))
                for cls in classes:
                    for latency in new_latencies_by_class.get(cls, ()):
                        state.total += 1
                        if latency > rule.threshold:
                            state.bad += 1
                self.store.record("slo_events_total", now, state.total,
                                  slo=rule.name)
                self.store.record("slo_bad_total", now, state.bad,
                                  slo=rule.name)
        self.evaluate(now)

    def evaluate(self, now: float) -> None:
        """Run every rule's burn-rate check and state machine at ``now``."""
        for rule in self.rules:
            state = self._states[rule.name]
            fast = self.burn_rate(rule, now, rule.fast_window)
            slow = self.burn_rate(rule, now, rule.slow_window)
            self.store.record("slo_burn_rate", now, fast,
                              slo=rule.name, window="fast")
            self.store.record("slo_burn_rate", now, slow,
                              slo=rule.name, window="slow")
            if state.firing:
                alert = state.alert
                alert.evaluations += 1
                alert.peak_burn = max(alert.peak_burn, fast)
                if fast < rule.fast_burn and slow < rule.slow_burn:
                    alert.resolved_at = now
            elif fast >= rule.fast_burn and slow >= rule.slow_burn:
                state.alert = self.alerts.fire(
                    rule.name, rule.kind, now, fast, slow)

    # ---------------------------------------------------------- burn rates

    def burn_rate(self, rule: SloRule, now: float, window: float) -> float:
        """Budget-burn multiple over ``[now - window, now]``.

        1.0 means "consuming exactly the allowed budget"; 10 means ten
        times over. Windows with no events burn 0.
        """
        start = max(0.0, now - window)
        if rule.kind == "latency":
            return self._ratio_burn("slo_events_total", "slo_bad_total",
                                    rule, start, now, slo=rule.name)
        if rule.kind == "error-rate":
            return self._error_burn(rule, start, now)
        # egress-cost: windowed $/s against the ceiling
        rate = self.store.rate("wan_egress_cost_dollars_total", start, now)
        return rate / rule.threshold

    def _ratio_burn(self, total_name: str, bad_name: str, rule: SloRule,
                    start: float, end: float, **labels) -> float:
        total_series = self.store.series(total_name, **labels)
        bad_series = self.store.series(bad_name, **labels)
        if total_series is None or bad_series is None:
            return 0.0
        total = total_series.value_at(end) - total_series.value_at(start)
        if total <= 0:
            return 0.0
        bad = bad_series.value_at(end) - bad_series.value_at(start)
        return (bad / max(total, _EPSILON)) / rule.budget

    def _error_burn(self, rule: SloRule, start: float, end: float) -> float:
        classes = ([rule.traffic_class] if rule.traffic_class is not None
                   else None)
        total = bad = 0.0
        for series in self.store.all_series("requests_completed_total"):
            labels = dict(series.labels)
            if classes is not None and labels.get("traffic_class") not in classes:
                continue
            total += series.value_at(end) - series.value_at(start)
        for series in self.store.all_series("requests_failed_total"):
            labels = dict(series.labels)
            if classes is not None and labels.get("traffic_class") not in classes:
                continue
            delta = series.value_at(end) - series.value_at(start)
            total += delta
            bad += delta
        if total <= 0:
            return 0.0
        return (bad / max(total, _EPSILON)) / rule.budget

    def __repr__(self) -> str:
        firing = sum(1 for state in self._states.values() if state.firing)
        return f"SloEngine(rules={len(self.rules)}, firing={firing})"
