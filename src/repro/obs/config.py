"""Observability configuration and the per-run runtime holder.

One frozen :class:`ObservabilityConfig` switches the whole layer; every
pillar defaults to off so baseline runs stay byte-identical and pay no
overhead (the runner checks a single ``is None`` per span when disabled).

:class:`Observability` is the live counterpart: it owns the tracer, the
metrics registry, the decision log, and the control-plane profiler for one
run, and is what `MeshSimulation`/`run_policy` accept. Pass a config and
the harness builds the runtime for you; pass a prebuilt runtime to share
one registry across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .alerts import AlertLog
from .anomaly import AnomalyEngine
from .decisions import DecisionLog
from .forecast import FORECAST_MODELS, BreachPredictor, ForecastEngine
from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from .profiler import ControlPlaneProfiler
from .provenance import DEFAULT_FLIGHT_RING, ProvenanceLog
from .signals import DEFAULT_SIGNAL_CAPACITY, SignalBus
from .slo import SloEngine, SloRule
from .timeseries import DEFAULT_MAX_POINTS, ScrapeLoop, TimeSeriesStore
from .tracing import Tracer

__all__ = ["Observability", "ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which observability pillars to enable for a run."""

    #: collect every span into a :class:`Tracer` (trace trees, exports)
    tracing: bool = False
    #: snapshot engine/pool/gateway/solver state into a metrics registry
    metrics: bool = False
    #: record one :class:`EpochDecision` per Global Controller epoch
    decisions: bool = False
    #: wall-clock profiling of control-plane sections (plan, distribute)
    profiling: bool = False
    #: scrape engine/pool/gateway/WAN/routing state into a
    #: :class:`TimeSeriesStore` every ``scrape_interval`` sim-seconds
    timeseries: bool = False
    #: SLO rules to evaluate each scrape (non-empty implies the
    #: time-series pillar — burn rates window over the scraped series)
    slo: tuple[SloRule, ...] = ()
    #: record one causal :class:`ProvenanceRecord` per control epoch into
    #: the flight recorder (implies the time-series pillar — the observed
    #: data-plane effect is attributed from the scraped series)
    provenance: bool = False
    #: flight-recorder ring capacity, in epochs
    flight_ring: int = DEFAULT_FLIGHT_RING
    #: fit online forecast models over scraped series each tick (implies
    #: the time-series pillar; with SLO rules, also predicts breaches)
    forecast: bool = False
    #: residual-based anomaly detection (z-score spikes + CUSUM
    #: changepoints) over scraped series (implies the time-series pillar)
    anomaly: bool = False
    #: forecast model: "ewma", "holt", or "holt-winters"
    forecast_model: str = "holt"
    #: seasonal period in sim-seconds for "holt-winters" (rounded to
    #: scrape ticks); 0 disables seasonality
    season_length: float = 0.0
    #: scrape steps ahead the forecast engine records/publishes
    forecast_horizon: int = 5
    #: scrape steps ahead the breach predictor projects burn rates
    breach_horizon: int = 30
    #: per-topic SignalBus ring capacity
    signal_capacity: int = DEFAULT_SIGNAL_CAPACITY
    #: sim-seconds between scrape samples
    scrape_interval: float = 1.0
    #: per-series ring-buffer capacity
    timeseries_max_points: int = DEFAULT_MAX_POINTS
    #: histogram bucket bounds (seconds) for latency metrics
    latency_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

    def __post_init__(self) -> None:
        if self.scrape_interval <= 0:
            raise ValueError(
                f"scrape_interval must be > 0, got {self.scrape_interval}")
        if self.forecast_model not in FORECAST_MODELS:
            raise ValueError(
                f"forecast_model must be one of {FORECAST_MODELS}, "
                f"got {self.forecast_model!r}")
        if self.season_length < 0:
            raise ValueError(
                f"season_length must be >= 0, got {self.season_length}")
        if self.forecast_horizon < 1 or self.breach_horizon < 1:
            raise ValueError("forecast/breach horizons must be >= 1")
        if (self.forecast and self.forecast_model == "holt-winters"
                and self.season_length <= 0):
            raise ValueError(
                "forecast_model='holt-winters' needs season_length > 0")

    @property
    def enabled(self) -> bool:
        """True when any pillar is on."""
        return (self.tracing or self.metrics or self.decisions
                or self.profiling or self.timeseries or bool(self.slo)
                or self.provenance or self.forecast or self.anomaly)

    @property
    def season_ticks(self) -> int:
        """``season_length`` expressed in scrape ticks (0 = no season)."""
        if self.season_length <= 0:
            return 0
        return max(2, round(self.season_length / self.scrape_interval))

    @classmethod
    def off(cls) -> "ObservabilityConfig":
        """The default: everything disabled."""
        return cls()

    @classmethod
    def full(cls) -> "ObservabilityConfig":
        """Every pillar enabled (SLO rules still need explicit opt-in)."""
        return cls(tracing=True, metrics=True, decisions=True,
                   profiling=True, timeseries=True, provenance=True,
                   forecast=True, anomaly=True)


class Observability:
    """Live observability state for one run (or a shared set of runs)."""

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config or ObservabilityConfig()
        self.tracer: Tracer | None = (
            Tracer() if self.config.tracing else None)
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if self.config.metrics else None)
        self.decisions: DecisionLog | None = (
            DecisionLog() if self.config.decisions else None)
        self.profiler: ControlPlaneProfiler | None = (
            ControlPlaneProfiler() if self.config.profiling else None)
        timeseries_on = (self.config.timeseries or bool(self.config.slo)
                         or self.config.provenance or self.config.forecast
                         or self.config.anomaly)
        self.timeseries: TimeSeriesStore | None = (
            TimeSeriesStore(max_points=self.config.timeseries_max_points)
            if timeseries_on else None)
        self.alerts: AlertLog | None = (
            AlertLog() if self.config.slo else None)
        self.slo: SloEngine | None = (
            SloEngine(self.config.slo, self.timeseries, self.alerts)
            if self.config.slo else None)
        self.provenance: ProvenanceLog | None = (
            ProvenanceLog(store=self.timeseries,
                          ring=self.config.flight_ring)
            if self.config.provenance else None)
        self.signals: SignalBus | None = (
            SignalBus(capacity=self.config.signal_capacity)
            if self.config.forecast or self.config.anomaly else None)
        self.forecast: ForecastEngine | None = (
            ForecastEngine(self.timeseries, bus=self.signals,
                           model=self.config.forecast_model,
                           season_length=self.config.season_ticks,
                           horizon=self.config.forecast_horizon)
            if self.config.forecast else None)
        self.anomaly: AnomalyEngine | None = (
            AnomalyEngine(self.timeseries, bus=self.signals)
            if self.config.anomaly else None)
        self.breach: BreachPredictor | None = (
            BreachPredictor(self.slo, self.timeseries, self.alerts,
                            bus=self.signals,
                            interval=self.config.scrape_interval,
                            horizon=self.config.breach_horizon)
            if self.config.forecast and self.slo is not None else None)
        #: scrape loop, bound to one simulation by :meth:`attach`
        self.scrape: ScrapeLoop | None = None

    @classmethod
    def coerce(cls, obj) -> "Observability | None":
        """Accept ``None``, a config, or a prebuilt runtime.

        ``None`` and an all-off config both coerce to ``None`` so disabled
        runs skip every hook entirely.
        """
        if obj is None:
            return None
        if isinstance(obj, Observability):
            return obj if obj.config.enabled else None
        if isinstance(obj, ObservabilityConfig):
            return cls(obj) if obj.enabled else None
        raise TypeError(
            f"expected ObservabilityConfig, Observability or None, "
            f"got {type(obj).__name__}")

    # ------------------------------------------------------------- wiring

    def attach(self, simulation) -> None:
        """Bind run-scoped context (called by ``MeshSimulation``)."""
        if self.tracer is not None:
            self.tracer.latency = simulation.deployment.latency
        if self.timeseries is not None:
            self.scrape = ScrapeLoop(self.timeseries, simulation,
                                     self.config.scrape_interval,
                                     slo_engine=self.slo,
                                     forecast_engine=self.forecast,
                                     anomaly_engine=self.anomaly,
                                     breach_predictor=self.breach)

    def install_scrape(self, duration: float) -> None:
        """Schedule the scrape ticks for one run (runner hook)."""
        if self.scrape is not None:
            self.scrape.install(duration)

    def finalize_scrape(self) -> None:
        """Take the post-drain terminal sample (runner hook)."""
        if self.scrape is not None:
            self.scrape.finalize()

    def collect(self, simulation, controller=None) -> None:
        """Snapshot end-of-run state into the metrics registry."""
        if self.metrics is None:
            return
        from .collect import (collect_controller_metrics,
                              collect_profiler_metrics,
                              collect_simulation_metrics)
        collect_simulation_metrics(self.metrics, simulation)
        collect_controller_metrics(self.metrics, controller)
        collect_profiler_metrics(self.metrics, self.profiler)

    def __repr__(self) -> str:
        on = [name for name in ("tracing", "metrics", "decisions",
                                "profiling", "timeseries", "provenance",
                                "forecast", "anomaly")
              if getattr(self.config, name)]
        if self.config.slo:
            on.append(f"slo[{len(self.config.slo)}]")
        return f"Observability({', '.join(on) if on else 'off'})"
