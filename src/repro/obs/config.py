"""Observability configuration and the per-run runtime holder.

One frozen :class:`ObservabilityConfig` switches the whole layer; every
pillar defaults to off so baseline runs stay byte-identical and pay no
overhead (the runner checks a single ``is None`` per span when disabled).

:class:`Observability` is the live counterpart: it owns the tracer, the
metrics registry, the decision log, and the control-plane profiler for one
run, and is what `MeshSimulation`/`run_policy` accept. Pass a config and
the harness builds the runtime for you; pass a prebuilt runtime to share
one registry across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .decisions import DecisionLog
from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from .profiler import ControlPlaneProfiler
from .tracing import Tracer

__all__ = ["Observability", "ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which observability pillars to enable for a run."""

    #: collect every span into a :class:`Tracer` (trace trees, exports)
    tracing: bool = False
    #: snapshot engine/pool/gateway/solver state into a metrics registry
    metrics: bool = False
    #: record one :class:`EpochDecision` per Global Controller epoch
    decisions: bool = False
    #: wall-clock profiling of control-plane sections (plan, distribute)
    profiling: bool = False
    #: histogram bucket bounds (seconds) for latency metrics
    latency_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

    @property
    def enabled(self) -> bool:
        """True when any pillar is on."""
        return (self.tracing or self.metrics or self.decisions
                or self.profiling)

    @classmethod
    def off(cls) -> "ObservabilityConfig":
        """The default: everything disabled."""
        return cls()

    @classmethod
    def full(cls) -> "ObservabilityConfig":
        """Every pillar enabled."""
        return cls(tracing=True, metrics=True, decisions=True,
                   profiling=True)


class Observability:
    """Live observability state for one run (or a shared set of runs)."""

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config or ObservabilityConfig()
        self.tracer: Tracer | None = (
            Tracer() if self.config.tracing else None)
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if self.config.metrics else None)
        self.decisions: DecisionLog | None = (
            DecisionLog() if self.config.decisions else None)
        self.profiler: ControlPlaneProfiler | None = (
            ControlPlaneProfiler() if self.config.profiling else None)

    @classmethod
    def coerce(cls, obj) -> "Observability | None":
        """Accept ``None``, a config, or a prebuilt runtime.

        ``None`` and an all-off config both coerce to ``None`` so disabled
        runs skip every hook entirely.
        """
        if obj is None:
            return None
        if isinstance(obj, Observability):
            return obj if obj.config.enabled else None
        if isinstance(obj, ObservabilityConfig):
            return cls(obj) if obj.enabled else None
        raise TypeError(
            f"expected ObservabilityConfig, Observability or None, "
            f"got {type(obj).__name__}")

    # ------------------------------------------------------------- wiring

    def attach(self, simulation) -> None:
        """Bind run-scoped context (called by ``MeshSimulation``)."""
        if self.tracer is not None:
            self.tracer.latency = simulation.deployment.latency

    def collect(self, simulation, controller=None) -> None:
        """Snapshot end-of-run state into the metrics registry."""
        if self.metrics is None:
            return
        from .collect import (collect_controller_metrics,
                              collect_profiler_metrics,
                              collect_simulation_metrics)
        collect_simulation_metrics(self.metrics, simulation)
        collect_controller_metrics(self.metrics, controller)
        collect_profiler_metrics(self.metrics, self.profiler)

    def __repr__(self) -> str:
        on = [name for name in ("tracing", "metrics", "decisions",
                                "profiling")
              if getattr(self.config, name)]
        return f"Observability({', '.join(on) if on else 'off'})"
