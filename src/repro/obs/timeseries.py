"""Sim-time time-series pipeline: ring-buffered series and the scrape loop.

PR 3's metrics registry answers "what state was the mesh in *at the end*";
this module answers "and *when* did it get there". A :class:`ScrapeLoop`
scheduled inside the discrete-event engine samples engine, pool, gateway,
WAN-ledger, telemetry, and routing-table state every ``scrape_interval``
simulated seconds into a :class:`TimeSeriesStore` of labeled, ring-buffered
:class:`TimeSeries` — the continuously scraped signals production TE systems
(Demand Engineering, TraDE) drive their control loops with.

Everything is *pull-based* and read-only: a scrape tick reads counters the
mesh already maintains, never draws randomness, and never mutates simulated
state, so enabling the pipeline cannot perturb a run's outcome (asserted in
``tests/test_obs_timeseries.py``). All timestamps are virtual seconds.

Windowed queries (:meth:`TimeSeries.window`, :meth:`TimeSeries.value_at`,
:func:`percentile`, :meth:`TimeSeriesStore.rate`) turn the raw samples into
the sliding p50/p95/p99, request/egress rates, and routing-churn signals the
SLO burn-rate engine (:mod:`repro.obs.slo`) evaluates each scrape.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imports for annotations only — obs stays decoupled
    from ..sim.runner import MeshSimulation
    from .anomaly import AnomalyEngine
    from .forecast import BreachPredictor, ForecastEngine
    from .slo import SloEngine

__all__ = ["DEFAULT_MAX_POINTS", "ScrapeLoop", "TimeSeries",
           "TimeSeriesStore", "percentile"]

#: default ring-buffer capacity per series (points, not seconds)
DEFAULT_MAX_POINTS = 4096

#: a labeled series key: sorted (label, value) pairs (same shape metrics use)
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 1]).

    Deterministic and dependency-free (no numpy on the scrape path); an
    empty input returns 0.0 so windows with no completions stay plottable.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    frac = position - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


class TimeSeries:
    """One labeled series: a time-ordered ring buffer of (t, value) points.

    Appends must be time-monotone (the scrape loop's clock is the engine's
    clock, which only moves forward). When the buffer is full the oldest
    point is evicted and ``dropped_points`` counts the loss, so long runs
    are bounded in memory and truncation is never silent.
    """

    __slots__ = ("name", "labels", "capacity", "dropped_points",
                 "_times", "_values")

    def __init__(self, name: str, labels: _LabelKey = (),
                 capacity: int = DEFAULT_MAX_POINTS) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.name = name
        self.labels = labels
        self.capacity = capacity
        self.dropped_points = 0
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"series {self.name!r}: non-monotone append at t={time} "
                f"(last t={self._times[-1]})")
        if len(self._times) >= self.capacity:
            # evict the oldest point; keeping lists sorted keeps the
            # bisect-based window queries O(log n)
            del self._times[0]
            del self._values[0]
            self.dropped_points += 1
        self._times.append(time)
        self._values.append(value)

    def items(self) -> list[tuple[float, float]]:
        """All retained points, oldest first."""
        return list(zip(self._times, self._values))

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Points with ``start <= t <= end``, oldest first."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Step-function read: the last value at or before ``time``.

        ``default`` covers reads before the first sample — for the
        cumulative counters the SLO engine windows over, 0.0 is the correct
        "before the run started" value.
        """
        index = bisect_right(self._times, time)
        if index == 0:
            return default
        return self._values[index - 1]

    @property
    def last(self) -> tuple[float, float] | None:
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def values(self) -> list[float]:
        return list(self._values)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "capacity": self.capacity,
            "dropped_points": self.dropped_points,
            "points": [[t, v] for t, v in zip(self._times, self._values)],
        }

    def __repr__(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        return (f"TimeSeries({self.name}{{{labels}}}, "
                f"points={len(self._times)})")


class TimeSeriesStore:
    """Named, labeled time series with bounded ring buffers.

    >>> store = TimeSeriesStore()
    >>> store.record("queue_depth", 1.0, 3, cluster="west")
    >>> store.series("queue_depth", cluster="west").last
    (1.0, 3.0)
    """

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS) -> None:
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.max_points = max_points
        self._series: dict[str, dict[_LabelKey, TimeSeries]] = {}
        #: completed scrape ticks (set by the ScrapeLoop)
        self.scrape_count = 0

    # ----------------------------------------------------------- recording

    def record(self, name: str, time: float, value: float,
               **labels: str) -> None:
        """Append one sample, creating the series on first use."""
        key = _label_key(labels)
        by_label = self._series.get(name)
        if by_label is None:
            by_label = self._series[name] = {}
        series = by_label.get(key)
        if series is None:
            series = by_label[key] = TimeSeries(name, key,
                                                capacity=self.max_points)
        series.append(time, float(value))

    # ------------------------------------------------------------- queries

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str, **labels: str) -> TimeSeries | None:
        """One exact (name, labels) series, or None."""
        return self._series.get(name, {}).get(_label_key(labels))

    def all_series(self, name: str) -> list[TimeSeries]:
        """Every labeled series under one name, label-sorted."""
        by_label = self._series.get(name, {})
        return [by_label[key] for key in sorted(by_label)]

    def series_count(self) -> int:
        return sum(len(by_label) for by_label in self._series.values())

    def rate(self, name: str, start: float, end: float,
             **labels: str) -> float:
        """Windowed rate of a cumulative counter series: Δvalue / Δt.

        Uses step-function reads at the window edges so the result is
        exact for counters sampled on scrape boundaries; returns 0.0 when
        the series is missing or the window is empty.
        """
        if end <= start:
            return 0.0
        series = self.series(name, **labels)
        if series is None:
            return 0.0
        return (series.value_at(end) - series.value_at(start)) / (end - start)

    def window_percentile(self, name: str, start: float, end: float,
                          q: float, **labels: str) -> float:
        """Percentile of a series' sampled values inside a window."""
        series = self.series(name, **labels)
        if series is None:
            return 0.0
        return percentile([v for _, v in series.window(start, end)], q)

    # ------------------------------------------------------------- exports

    def snapshot(self) -> dict:
        """JSON-friendly dump: round-trips via :meth:`from_snapshot`."""
        return {
            "max_points": self.max_points,
            "scrape_count": self.scrape_count,
            "series": [self._series[name][key].as_dict()
                       for name in self.names()
                       for key in sorted(self._series[name])],
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`snapshot` output (diff engine)."""
        store = cls(max_points=int(payload.get("max_points",
                                               DEFAULT_MAX_POINTS)))
        store.scrape_count = int(payload.get("scrape_count", 0))
        for entry in payload.get("series", []):
            name = entry["name"]
            labels = {str(k): str(v)
                      for k, v in entry.get("labels", {}).items()}
            for time, value in entry.get("points", []):
                store.record(name, float(time), float(value), **labels)
            series = store.series(name, **labels)
            if series is not None:
                series.dropped_points = int(entry.get("dropped_points", 0))
        return store

    def __repr__(self) -> str:
        return (f"TimeSeriesStore(names={len(self._series)}, "
                f"series={self.series_count()}, scrapes={self.scrape_count})")


class ScrapeLoop:
    """Samples a :class:`~repro.sim.runner.MeshSimulation` every interval.

    Construction binds the loop to one simulation (done by
    :meth:`~repro.obs.config.Observability.attach`); ``install`` schedules
    the periodic ticks inside the discrete-event engine; ``finalize`` takes
    one last sample after the drain so the terminal state is visible.

    Each tick records:

    * engine depth and cumulative event count;
    * per-(service, cluster) pool queue depth / busy replicas / utilization;
    * per-cluster gateway admitted/completed/failed/open counters;
    * per-class completion counters, windowed request rate, and sliding
      p50/p95/p99 end-to-end latency (exact-retention mode only — reservoir
      runs keep counters but have no per-request samples to window);
    * per-(src, dst) WAN egress bytes and total egress cost;
    * routing-table size/version and the L1 weight churn since the
      previous scrape (the "routing flap" signal);
    * dropped/timed-out/hedged call counters.

    After sampling, an attached :class:`~repro.obs.slo.SloEngine` is
    evaluated against the fresh samples (burn rates, alert state machine).
    """

    #: percentiles recorded per scrape window, as (suffix, q)
    PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

    def __init__(self, store: TimeSeriesStore, simulation: "MeshSimulation",
                 interval: float,
                 slo_engine: "SloEngine | None" = None,
                 forecast_engine: "ForecastEngine | None" = None,
                 anomaly_engine: "AnomalyEngine | None" = None,
                 breach_predictor: "BreachPredictor | None" = None) -> None:
        if interval <= 0:
            raise ValueError(f"scrape_interval must be > 0, got {interval}")
        self.store = store
        self.simulation = simulation
        self.interval = interval
        self.slo_engine = slo_engine
        self.forecast_engine = forecast_engine
        self.anomaly_engine = anomaly_engine
        self.breach_predictor = breach_predictor
        #: cursor into the run telemetry's per-request retention
        self._completed_cursor = 0
        self._last_sample_time: float | None = None
        self._prev_weights: dict = {}

    # -------------------------------------------------------- scheduling

    def install(self, duration: float) -> int:
        """Schedule ticks strictly inside (0, duration); returns the count.

        The final boundary is deliberately left to :meth:`finalize`, which
        the runner calls after the drain — a self-rescheduling event would
        keep ``run_until_idle`` from ever quiescing.
        """
        return self.simulation.sim.schedule_periodic(
            self.interval, self._tick, duration)

    def finalize(self) -> None:
        """One last sample at the current (post-drain) engine time."""
        now = self.simulation.sim.now
        if self._last_sample_time is not None and now <= self._last_sample_time:
            return
        self._tick()

    def _tick(self) -> None:
        self.sample()

    # ----------------------------------------------------------- sampling

    def sample(self) -> None:
        """Take one sample of everything. Read-only against the mesh."""
        simulation = self.simulation
        store = self.store
        now = simulation.sim.now

        store.record("engine_events_total", now,
                     simulation.sim.events_processed)
        store.record("engine_pending_events", now,
                     simulation.sim.pending_events)

        for cluster_name in sorted(simulation.clusters):
            cluster = simulation.clusters[cluster_name]
            for service in sorted(cluster.pools):
                pool = cluster.pools[service]
                labels = {"service": service, "cluster": cluster_name}
                store.record("pool_queue_depth", now, pool.queue_length,
                             **labels)
                store.record("pool_busy_replicas", now, pool.busy_replicas,
                             **labels)
                if now > 0 and pool.replicas > 0:
                    utilization = (pool.lifetime_busy_seconds
                                   / (pool.replicas * now))
                else:
                    utilization = 0.0
                store.record("pool_utilization", now, utilization, **labels)

        for cluster_name in sorted(simulation.gateways):
            gateway = simulation.gateways[cluster_name]
            labels = {"cluster": cluster_name}
            store.record("gateway_admitted_total", now,
                         gateway.admitted_count, **labels)
            store.record("gateway_completed_total", now,
                         gateway.completed_count, **labels)
            store.record("gateway_failed_total", now,
                         gateway.failed_count, **labels)
            store.record("gateway_open_requests", now,
                         gateway.open_requests, **labels)

        new_latencies = self._sample_requests(now)

        ledger = simulation.network.ledger
        for (src, dst) in sorted(ledger.bytes_by_pair):
            store.record("wan_egress_bytes_total", now,
                         ledger.bytes_by_pair[(src, dst)], src=src, dst=dst)
        store.record("wan_egress_cost_dollars_total", now, ledger.total_cost)

        store.record("calls_dropped_total", now, simulation.dropped_calls)
        store.record("calls_timed_out_total", now,
                     simulation.timed_out_calls)
        store.record("calls_hedged_total", now, simulation.hedged_calls)

        self._sample_routing(now)

        if self.slo_engine is not None:
            self.slo_engine.observe(now, new_latencies, simulation)
        # predictive pillar: each engine consumes only the points already
        # recorded above (pure reads of the store, never the mesh), so
        # ordering is scrape -> SLO -> anomaly -> forecast -> breach
        if self.anomaly_engine is not None:
            self.anomaly_engine.sample(now)
        if self.forecast_engine is not None:
            self.forecast_engine.sample(now)
        if self.breach_predictor is not None:
            self.breach_predictor.sample(now)
        self._last_sample_time = now
        store.scrape_count += 1

    def _sample_requests(self, now: float) -> dict[str, list[float]]:
        """Per-class counters, window rates, and window latency percentiles.

        Returns the end-to-end latencies completed since the previous
        scrape, keyed by traffic class (what the SLO engine counts against
        its thresholds).
        """
        store = self.store
        telemetry = self.simulation.telemetry
        window = (now - self._last_sample_time
                  if self._last_sample_time is not None else now)

        for cls in sorted(telemetry.completed_by_class):
            store.record("requests_completed_total", now,
                         telemetry.completed_by_class[cls],
                         traffic_class=cls)
        for cls in sorted(telemetry.failed_by_class):
            store.record("requests_failed_total", now,
                         telemetry.failed_by_class[cls], traffic_class=cls)

        new_latencies: dict[str, list[float]] = {}
        if not telemetry.reservoir_mode:
            fresh = telemetry.requests[self._completed_cursor:]
            self._completed_cursor = len(telemetry.requests)
            for request in fresh:
                new_latencies.setdefault(request.traffic_class,
                                         []).append(request.latency)
            for cls in sorted(new_latencies):
                values = new_latencies[cls]
                if window > 0:
                    store.record("request_rate_rps", now,
                                 len(values) / window, traffic_class=cls)
                for suffix, q in self.PERCENTILES:
                    store.record(f"request_latency_{suffix}", now,
                                 percentile(values, q), traffic_class=cls)
        return new_latencies

    def _sample_routing(self, now: float) -> None:
        """Routing-table churn: L1 weight distance since the last scrape."""
        table = self.simulation.table
        rules = table.rules()
        churn = 0.0
        previous = self._prev_weights
        for key in sorted(set(rules) | set(previous),
                          key=lambda k: (k.service, k.traffic_class,
                                         k.src_cluster)):
            old = previous.get(key, {})
            new = rules.get(key, {})
            churn += sum(
                abs(new.get(c, 0.0) - old.get(c, 0.0))
                for c in sorted(set(new) | set(old)))
        self._prev_weights = rules
        self.store.record("routing_rules", now, len(rules))
        self.store.record("routing_table_version", now, table.version)
        self.store.record("routing_weight_churn", now, churn)

    def __repr__(self) -> str:
        return (f"ScrapeLoop(interval={self.interval}, "
                f"scrapes={self.store.scrape_count})")
