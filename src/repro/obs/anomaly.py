"""Streaming anomaly detection over scraped series: z-score + CUSUM.

Where :mod:`repro.obs.forecast` asks "where is this series going", this
module asks "did it just do something it never does". Per followed series
(the same latency/demand/queue/egress targets the forecast engine
watches) an :class:`AnomalyEngine` maintains an EWMA one-step predictor
and two online detectors over its residuals:

* **z-score spikes** — residual mean/variance tracked incrementally
  (Welford), an event fires when ``|residual| / sigma`` crosses the
  threshold. Edge-triggered with re-arm: one event per excursion, not one
  per tick, so event counts stay bounded and meaningful.
* **CUSUM changepoints** — two-sided cumulative sums of standardized
  residuals (``S+ = max(0, S+ + z - k)`` and the mirror image) catch
  sustained small shifts a spike detector misses — the "demand drifted
  20% over a minute" signal. Sums reset on firing.

Events land in an :class:`AnomalyLog` and on the
:class:`~repro.obs.signals.SignalBus` (topic ``anomaly``); the provenance
pillar snapshots the flight recorder on each one, and the chaos harness
scores detection lead time against injected fault edges. Pure reads —
no RNG, no mesh access — so enabling detection cannot perturb a run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..forecasting import EwmaForecaster
from .signals import TOPIC_ANOMALY, SignalBus
from .timeseries import TimeSeriesStore

__all__ = ["DEFAULT_ANOMALY_TARGETS", "AnomalyEngine", "AnomalyEvent",
           "AnomalyLog"]

#: (series name, kind) pairs followed by default — the forecast targets
#: plus the failure/timeout counters chaos faults light up first.
DEFAULT_ANOMALY_TARGETS = (
    ("request_latency_p95", "gauge"),
    ("request_rate_rps", "gauge"),
    ("pool_queue_depth", "gauge"),
    ("wan_egress_cost_dollars_total", "counter"),
    ("gateway_failed_total", "counter"),
    ("calls_timed_out_total", "counter"),
)


@dataclass(frozen=True)
class AnomalyEvent:
    """One detector firing on one series."""

    #: series name, e.g. ``request_latency_p95``
    series: str
    #: label pairs of the offending series, sorted
    labels: tuple
    #: simulated clock when the detector fired
    sim_time: float
    #: ``"zscore"`` (spike) or ``"cusum"`` (changepoint)
    detector: str
    #: observed value at firing time
    value: float
    #: detector statistic at firing: |z| for zscore, the CUSUM sum
    score: float
    #: ``"up"`` or ``"down"``
    direction: str

    @property
    def series_id(self) -> str:
        if not self.labels:
            return self.series
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.series}{{{inner}}}"

    def as_dict(self) -> dict:
        return {
            "series": self.series,
            "labels": dict(self.labels),
            "sim_time": self.sim_time,
            "detector": self.detector,
            "value": self.value,
            "score": self.score,
            "direction": self.direction,
        }


@dataclass
class AnomalyLog:
    """Append-only, sim-time-ordered log of anomaly events for one run."""

    events: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def append(self, event: AnomalyEvent) -> None:
        self.events.append(event)

    def for_series(self, name: str) -> list:
        return [event for event in self.events if event.series == name]

    def times(self) -> list:
        """Event times, ascending (detection-lead scoring input)."""
        return sorted(event.sim_time for event in self.events)

    def to_jsonl_lines(self) -> list:
        return [json.dumps(event.as_dict(), sort_keys=True)
                for event in self.events]

    def render(self) -> str:
        """Fixed-width text table of the log (for the CLI)."""
        header = (f"{'t':>8} {'detector':<9} {'dir':<5} {'score':>7} "
                  f"{'value':>10} series")
        lines = [header, "-" * len(header)]
        for event in self.events:
            lines.append(
                f"{event.sim_time:>8.1f} {event.detector:<9} "
                f"{event.direction:<5} {event.score:>7.2f} "
                f"{event.value:>10.4g} {event.series_id}")
        lines.append(f"events={len(self.events)}")
        return "\n".join(lines)


@dataclass
class _DetectorState:
    """Per-series residual statistics and detector state."""

    #: Welford accumulators over residuals
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    #: two-sided CUSUM sums over standardized residuals
    cusum_up: float = 0.0
    cusum_down: float = 0.0
    #: z-score detector armed (re-arms once |z| drops below threshold/2)
    armed: bool = True


class AnomalyEngine:
    """Residual-based detection over followed series, one pass per tick."""

    def __init__(self, store: TimeSeriesStore,
                 bus: SignalBus | None = None,
                 targets=DEFAULT_ANOMALY_TARGETS,
                 z_threshold: float = 4.0, min_samples: int = 8,
                 cusum_k: float = 0.5, cusum_h: float = 5.0,
                 ewma_alpha: float = 0.3) -> None:
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be > 0, got {z_threshold}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        if cusum_k < 0 or cusum_h <= 0:
            raise ValueError("need cusum_k >= 0 and cusum_h > 0")
        self.store = store
        self.bus = bus
        self.targets = tuple(targets)
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self.cusum_k = cusum_k
        self.cusum_h = cusum_h
        self.predictor = EwmaForecaster(alpha=ewma_alpha)
        self.log = AnomalyLog()
        self._states: dict = {}
        self._cursors: dict = {}
        self._prev_point: dict = {}
        self.samples = 0

    # ----------------------------------------------------------- sampling

    def sample(self, now: float) -> None:
        """Consume the newest scraped points and run both detectors."""
        for name, kind in self.targets:
            for series in self.store.all_series(name):
                key = (name, series.labels)
                cursor = self._cursors.get(key, 0)
                points = series.items()[cursor:]
                self._cursors[key] = cursor + len(points)
                for time, value in points:
                    if kind == "counter":
                        previous = self._prev_point.get(key)
                        self._prev_point[key] = (time, value)
                        if previous is None or time <= previous[0]:
                            continue
                        observation = ((value - previous[1])
                                       / (time - previous[0]))
                    else:
                        observation = value
                    self._step(key, name, series.labels, time, observation)
        self.samples += 1

    def _step(self, key, name: str, labels, time: float,
              value: float) -> None:
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _DetectorState()
        predicted = (self.predictor.forecast(key)
                     if self.predictor.known(key) else value)
        residual = value - predicted
        self.predictor.observe(key, value)

        # Welford update over residuals
        state.count += 1
        delta = residual - state.mean
        state.mean += delta / state.count
        state.m2 += delta * (residual - state.mean)
        if state.count < self.min_samples:
            return
        variance = state.m2 / (state.count - 1)
        sigma = math.sqrt(variance)
        if sigma <= 0:
            # a perfectly constant residual stream: any deviation at all
            # is infinitely surprising, but also already folded into the
            # stats above; skip rather than divide by zero
            return
        z = (residual - state.mean) / sigma

        # spike detector: edge-triggered with hysteresis re-arm
        if state.armed and abs(z) >= self.z_threshold:
            state.armed = False
            self._fire(name, labels, time, "zscore", value, abs(z),
                       "up" if z > 0 else "down")
        elif not state.armed and abs(z) < self.z_threshold / 2:
            state.armed = True

        # changepoint detector: two-sided CUSUM on standardized residuals
        state.cusum_up = max(0.0, state.cusum_up + z - self.cusum_k)
        state.cusum_down = max(0.0, state.cusum_down - z - self.cusum_k)
        if state.cusum_up > self.cusum_h:
            self._fire(name, labels, time, "cusum", value, state.cusum_up,
                       "up")
            state.cusum_up = 0.0
        if state.cusum_down > self.cusum_h:
            self._fire(name, labels, time, "cusum", value,
                       state.cusum_down, "down")
            state.cusum_down = 0.0

    def _fire(self, name: str, labels, time: float, detector: str,
              value: float, score: float, direction: str) -> None:
        event = AnomalyEvent(series=name, labels=tuple(labels),
                             sim_time=time, detector=detector, value=value,
                             score=score, direction=direction)
        self.log.append(event)
        if self.bus is not None:
            self.bus.publish(TOPIC_ANOMALY, time, event.as_dict(),
                             source="anomaly")

    # ------------------------------------------------------------ queries

    def summary(self) -> dict:
        """JSON-friendly engine state for CLI/export."""
        by_detector: dict[str, int] = {}
        by_series: dict[str, int] = {}
        for event in self.log:
            by_detector[event.detector] = (
                by_detector.get(event.detector, 0) + 1)
            by_series[event.series_id] = by_series.get(event.series_id,
                                                       0) + 1
        return {
            "events": len(self.log),
            "samples": self.samples,
            "followed_series": len(self._states),
            "by_detector": dict(sorted(by_detector.items())),
            "by_series": dict(sorted(by_series.items())),
        }

    def __repr__(self) -> str:
        return (f"AnomalyEngine(series={len(self._states)}, "
                f"events={len(self.log)})")
