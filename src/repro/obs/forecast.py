"""Predictive pillar: online forecasts over scraped series + SLO breaches.

The time-series pipeline (PR 4) tells us where the mesh *is*; this module
says where it is *going*. A :class:`ForecastEngine` rides the scrape loop:
each tick it folds the newest samples of a target set of series (per-class
latency p95 and request rate, per-pool queue depth, the WAN egress-cost
rate) into a shared online model from :mod:`repro.forecasting` — EWMA,
Holt damped-trend, or Holt–Winters with seasonality matched to the
scenario's diurnal period — wrapped in a :class:`~repro.forecasting
.BacktestTracker` so every forecast carries a rolling MASE/sMAPE against
the naive baseline. Forecast values are recorded back into the same store
(``forecast_<name>`` series) and published on the
:class:`~repro.obs.signals.SignalBus`, so they are plottable, diffable,
and subscribable like any other telemetry.

:class:`BreachPredictor` turns forecasts into *predictive SLO alerts*: it
fits the same Holt model to each rule's fast/slow ``slo_burn_rate``
series, projects the trajectories up to ``horizon`` scrapes forward, and
when both windows are projected to cross their firing thresholds it emits
an alert-shaped :class:`PredictedBreach` with the estimated lead time.
Predictions are scored post-hoc against the real
:class:`~repro.obs.alerts.AlertLog` (:func:`score_predictions`: lead
time, precision, recall), and — being alert-shaped — join the decision
log via ``join_alerts_decisions`` and trip the provenance flight recorder
like every other anomaly trigger.

Everything here is pure arithmetic over already-scraped values: no RNG,
no mesh access, no mutation outside the obs layer — enabling the pillar
cannot perturb a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..forecasting import (BacktestTracker, EwmaForecaster, HoltForecaster,
                           HoltWintersForecaster)
from .signals import TOPIC_FORECAST, TOPIC_PREDICTED_BREACH, SignalBus
from .timeseries import TimeSeriesStore

if TYPE_CHECKING:  # imports for annotations only — obs stays decoupled
    from .alerts import AlertLog
    from .slo import SloEngine

__all__ = ["DEFAULT_FORECAST_TARGETS", "FORECAST_MODELS", "BreachPredictor",
           "ForecastEngine", "PredictedBreach", "PredictionScore",
           "make_model", "score_predictions"]

#: (series name, kind) pairs the engine follows by default. ``gauge``
#: series are forecast directly; ``counter`` series are differenced into
#: per-second rates first (forecasting a cumulative total is meaningless).
DEFAULT_FORECAST_TARGETS = (
    ("request_latency_p95", "gauge"),
    ("request_rate_rps", "gauge"),
    ("pool_queue_depth", "gauge"),
    ("wan_egress_cost_dollars_total", "counter"),
)

#: model name -> needs_season flag (see :func:`make_model`)
FORECAST_MODELS = ("ewma", "holt", "holt-winters")


def make_model(model: str, season_length: int = 0):
    """Build a keyed forecaster by name.

    ``season_length`` is the seasonal period in *observations* (scrape
    ticks); it is required (>= 2) for ``holt-winters`` and ignored
    otherwise.
    """
    if model == "ewma":
        return EwmaForecaster()
    if model == "holt":
        return HoltForecaster()
    if model == "holt-winters":
        if season_length < 2:
            raise ValueError(
                "holt-winters needs season_length >= 2 scrape ticks, "
                f"got {season_length}")
        return HoltWintersForecaster(season_length=season_length)
    raise ValueError(
        f"unknown forecast model {model!r}; choose from {FORECAST_MODELS}")


class ForecastEngine:
    """Fits online models to scraped series, one observation per tick."""

    def __init__(self, store: TimeSeriesStore,
                 bus: SignalBus | None = None, model: str = "holt",
                 season_length: int = 0, horizon: int = 5,
                 targets=DEFAULT_FORECAST_TARGETS) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.store = store
        self.bus = bus
        self.model_name = model
        self.horizon = horizon
        self.targets = tuple(targets)
        self.tracker = BacktestTracker(make_model(model, season_length))
        #: (name, labelkey) -> consumed point count, per followed series
        self._cursors: dict = {}
        #: (name, labelkey) -> last (time, value) seen, for counter rates
        self._prev_point: dict = {}
        self.samples = 0

    # ----------------------------------------------------------- sampling

    def sample(self, now: float) -> None:
        """Fold the newest scraped points in; record + publish forecasts."""
        forecasts: dict[str, float] = {}
        for name, kind in self.targets:
            for series in self.store.all_series(name):
                key = (name, series.labels)
                cursor = self._cursors.get(key, 0)
                points = series.items()[cursor:]
                self._cursors[key] = cursor + len(points)
                if not points:
                    continue
                for time, value in points:
                    if kind == "counter":
                        previous = self._prev_point.get(key)
                        self._prev_point[key] = (time, value)
                        if previous is None or time <= previous[0]:
                            continue
                        observation = ((value - previous[1])
                                       / (time - previous[0]))
                    else:
                        observation = value
                    self.tracker.observe(key, observation)
                if not self.tracker.known(key):
                    continue
                predicted = max(
                    0.0, self.tracker.forecast(key, self.horizon))
                labels = dict(series.labels)
                self.store.record(f"forecast_{name}", now, predicted,
                                  **labels)
                forecasts[_series_id(name, series.labels)] = predicted
        self.samples += 1
        if self.bus is not None and forecasts:
            self.bus.publish(
                TOPIC_FORECAST, now,
                {"model": self.model_name, "horizon": self.horizon,
                 "forecasts": dict(sorted(forecasts.items()))},
                source="forecast")

    # ------------------------------------------------------------ queries

    def backtests(self) -> dict:
        """``"name{labels}" -> BacktestScore`` for every evaluated series."""
        return {_series_id(key[0], key[1]): score
                for key, score in self.tracker.scores().items()
                if score is not None}

    def summary(self) -> dict:
        """JSON-friendly engine state: model, per-series backtests."""
        return {
            "model": self.model_name,
            "horizon": self.horizon,
            "samples": self.samples,
            "series": {sid: score.as_dict()
                       for sid, score in sorted(self.backtests().items())},
        }

    def __repr__(self) -> str:
        return (f"ForecastEngine(model={self.model_name!r}, "
                f"series={len(self.tracker.model)}, samples={self.samples})")


def _series_id(name: str, labels) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


# --------------------------------------------------------------- breaches


@dataclass
class PredictedBreach:
    """A projected SLO breach — alert-shaped, so joins and logs apply.

    ``fired_at`` is the *prediction* time (when the projection first
    crossed both burn thresholds), ``breach_eta`` the projected firing
    time. ``resolved_at`` closes the prediction when it is matched to a
    real alert (``outcome="hit"``) or expires unmatched past its grace
    window (``outcome="miss"``).
    """

    rule: str
    kind: str
    fired_at: float
    #: projected sim time of the real alert firing
    breach_eta: float
    #: breach_eta - fired_at at prediction time
    lead_estimate: float
    #: projected burn rates at the eta
    predicted_fast_burn: float
    predicted_slow_burn: float
    resolved_at: float | None = None
    #: "open" while unresolved, then "hit" or "miss"
    outcome: str = "open"
    #: fired_at of the matched real alert (hits only)
    actual_fired_at: float | None = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    @property
    def actual_lead(self) -> float | None:
        """Real warning time delivered: alert firing - prediction time."""
        if self.actual_fired_at is None:
            return None
        return self.actual_fired_at - self.fired_at

    def overlaps(self, time: float) -> bool:
        """True when ``time`` falls inside the open-prediction interval."""
        if time < self.fired_at:
            return False
        return self.resolved_at is None or time <= self.resolved_at

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "breach_eta": self.breach_eta,
            "lead_estimate": self.lead_estimate,
            "predicted_fast_burn": self.predicted_fast_burn,
            "predicted_slow_burn": self.predicted_slow_burn,
            "outcome": self.outcome,
            "actual_fired_at": self.actual_fired_at,
            "actual_lead": self.actual_lead,
        }


@dataclass
class PredictionScore:
    """Post-hoc quality of a run's breach predictions vs. real alerts."""

    predictions: int
    hits: int
    misses: int
    open: int
    alerts_total: int
    alerts_predicted: int
    #: hits / closed predictions (1.0 when nothing closed)
    precision: float
    #: alerts_predicted / alerts_total (1.0 when no alerts fired)
    recall: float
    #: mean actual lead time over hits, sim-seconds (0.0 without hits)
    mean_lead_seconds: float

    def as_dict(self) -> dict:
        return {
            "predictions": self.predictions, "hits": self.hits,
            "misses": self.misses, "open": self.open,
            "alerts_total": self.alerts_total,
            "alerts_predicted": self.alerts_predicted,
            "precision": self.precision, "recall": self.recall,
            "mean_lead_seconds": self.mean_lead_seconds,
        }


def score_predictions(predictions, alerts: "AlertLog") -> PredictionScore:
    """Score predicted breaches against the real alert log.

    A prediction is a *hit* when a real alert for its rule fired inside
    its open interval (``outcome="hit"``, set by the predictor as the run
    progresses); an alert counts as *predicted* when some hit prediction
    preceded it. Precision is over closed predictions only — a prediction
    still open at end of run is neither right nor wrong yet.
    """
    predictions = list(predictions)
    hits = [p for p in predictions if p.outcome == "hit"]
    misses = [p for p in predictions if p.outcome == "miss"]
    still_open = [p for p in predictions if p.outcome == "open"]
    closed = len(hits) + len(misses)
    predicted_alerts = {(p.rule, p.actual_fired_at) for p in hits}
    all_alerts = list(alerts)
    leads = [p.actual_lead for p in hits if p.actual_lead is not None]
    return PredictionScore(
        predictions=len(predictions), hits=len(hits), misses=len(misses),
        open=len(still_open), alerts_total=len(all_alerts),
        alerts_predicted=sum(
            1 for a in all_alerts if (a.rule, a.fired_at) in predicted_alerts),
        precision=(len(hits) / closed) if closed else 1.0,
        recall=(sum(1 for a in all_alerts
                    if (a.rule, a.fired_at) in predicted_alerts)
                / len(all_alerts)) if all_alerts else 1.0,
        mean_lead_seconds=(sum(leads) / len(leads)) if leads else 0.0,
    )


class BreachPredictor:
    """Projects each rule's burn-rate trajectory; emits PredictedBreach.

    Per scrape tick and per rule: fold the freshly recorded fast/slow
    ``slo_burn_rate`` samples into a Holt model, then — if the rule is not
    already firing and no prediction is open — walk the projection
    ``1..horizon`` steps out and emit a prediction at the first step where
    *both* windows are projected at or above their firing thresholds
    (mirroring the engine's two-window AND). Open predictions are matched
    against the real :class:`AlertLog` (hit) or expired once
    ``breach_eta`` plus one grace horizon passes without an alert (miss).
    """

    #: burn observations required per rule before projecting
    MIN_OBSERVATIONS = 3

    def __init__(self, slo_engine: "SloEngine", store: TimeSeriesStore,
                 alerts: "AlertLog", bus: SignalBus | None = None,
                 interval: float = 1.0, horizon: int = 30) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.slo_engine = slo_engine
        self.store = store
        self.alerts = alerts
        self.bus = bus
        self.interval = interval
        self.horizon = horizon
        self.model = HoltForecaster(alpha=0.5, beta=0.3)
        self.predictions: list[PredictedBreach] = []
        self._open: dict[str, PredictedBreach] = {}
        self._observations: dict[str, int] = {}
        self._matched_alerts: set = set()

    # ----------------------------------------------------------- sampling

    def sample(self, now: float) -> None:
        for rule in self.slo_engine.rules:
            self._observe_rule(rule, now)
            self._settle(rule, now)
            if (rule.name not in self._open
                    and not self.slo_engine.state(rule.name).firing):
                self._project(rule, now)

    def _observe_rule(self, rule, now: float) -> None:
        for window in ("fast", "slow"):
            series = self.store.series("slo_burn_rate", slo=rule.name,
                                       window=window)
            last = series.last if series is not None else None
            if last is None:
                continue
            key = (rule.name, window)
            self.model.observe(key, max(0.0, last[1]))
            self.store.record("slo_burn_forecast", now,
                              self.model.forecast(key, steps_ahead=1),
                              slo=rule.name, window=window)
        self._observations[rule.name] = (
            self._observations.get(rule.name, 0) + 1)

    def _settle(self, rule, now: float) -> None:
        """Match or expire the rule's open prediction, if any."""
        prediction = self._open.get(rule.name)
        if prediction is None:
            return
        for alert in self.alerts.for_rule(rule.name):
            marker = (alert.rule, alert.fired_at)
            if marker in self._matched_alerts:
                continue
            if alert.fired_at >= prediction.fired_at:
                prediction.outcome = "hit"
                prediction.actual_fired_at = alert.fired_at
                prediction.resolved_at = alert.fired_at
                self._matched_alerts.add(marker)
                del self._open[rule.name]
                return
        grace = self.horizon * self.interval
        if now > prediction.breach_eta + grace:
            prediction.outcome = "miss"
            prediction.resolved_at = now
            del self._open[rule.name]

    def _project(self, rule, now: float) -> None:
        if self._observations.get(rule.name, 0) < self.MIN_OBSERVATIONS:
            return
        fast_key = (rule.name, "fast")
        slow_key = (rule.name, "slow")
        if not (self.model.known(fast_key) and self.model.known(slow_key)):
            return
        for step in range(1, self.horizon + 1):
            fast = self.model.forecast(fast_key, steps_ahead=step)
            slow = self.model.forecast(slow_key, steps_ahead=step)
            if fast >= rule.fast_burn and slow >= rule.slow_burn:
                eta = now + step * self.interval
                prediction = PredictedBreach(
                    rule=rule.name, kind=f"pred-{rule.kind}", fired_at=now,
                    breach_eta=eta, lead_estimate=step * self.interval,
                    predicted_fast_burn=fast, predicted_slow_burn=slow)
                self.predictions.append(prediction)
                self._open[rule.name] = prediction
                if self.bus is not None:
                    self.bus.publish(TOPIC_PREDICTED_BREACH, now,
                                     prediction.as_dict(), source="slo")
                return

    # ------------------------------------------------------------ queries

    def score(self) -> PredictionScore:
        return score_predictions(self.predictions, self.alerts)

    def to_jsonl_lines(self) -> list:
        return [json.dumps(p.as_dict(), sort_keys=True)
                for p in self.predictions]

    def __len__(self) -> int:
        return len(self.predictions)

    def __repr__(self) -> str:
        return (f"BreachPredictor(rules={len(self.slo_engine.rules)}, "
                f"predictions={len(self.predictions)})")
