"""Decision log: a structured record of every Global Controller epoch.

The third observability pillar. Each epoch of an adaptive policy run yields
one :class:`EpochDecision` answering "what did the controller see and what
did it do about it": the quantized demand snapshot and how far it moved
(L1 delta), the model fingerprint the solver cache keyed on, whether the
epoch was freshly **solved** or **replayed** from cache (PR 2's hysteresis
skip), the objective and wall solve time, and the routing diff actually
shipped (rules added/removed/changed plus total weight churn).

The log is append-only and derived purely from controller state the harness
already holds — recording it does not perturb the control loop, so enabling
decisions keeps runs byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.controller.global_controller import GlobalController
from ..core.rules import RuleSet

__all__ = ["DecisionLog", "EpochDecision"]

#: weight-change below this is float noise, not a routing change
_WEIGHT_EPSILON = 1e-9


@dataclass(frozen=True)
class EpochDecision:
    """One Global Controller epoch, as seen from outside."""

    epoch: int
    sim_time: float
    #: "solved" (fresh optimization), "replayed" (solver-cache hit — the
    #: hysteresis skip), or "no-demand" (nothing to plan against yet)
    outcome: str
    demand_total: float
    #: L1 distance between this epoch's quantized demand snapshot and the
    #: previous one (0.0 on a plateau — the signal hysteresis exploits)
    demand_delta: float
    fingerprint: str | None
    objective: float | None
    solve_time: float | None
    cache_hits: int
    cache_misses: int
    rules_added: int
    rules_removed: int
    rules_changed: int
    #: summed |weight change| across all (rule, destination) pairs
    weight_churn: float
    #: seconds between the newest telemetry window the controller folded in
    #: and the moment this plan was applied — ~0 for healthy runs, > 0 when
    #: chaos delayed/dropped reports, None before the first observe
    telemetry_age: float | None = None
    #: a "solved" epoch that went through the warm-start restricted solve
    #: (additive refinement of ``outcome``, which stays "solved")
    warm: bool = False
    #: the model assembly reused cached structure (demand rescatter)
    warm_build: bool = False
    #: wall-clock cost of model assembly for this epoch
    build_time: float | None = None
    #: reuse-ladder rung: "replay" / "warm" / "cold" (None on "no-demand"
    #: epochs) — :attr:`OptimizationResult.solver_path`, derived in one
    #: place instead of re-deriving from the warm/cache_hit boolean pair
    solver_path: str | None = None

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "sim_time": self.sim_time,
            "outcome": self.outcome,
            "demand_total": self.demand_total,
            "demand_delta": self.demand_delta,
            "fingerprint": self.fingerprint,
            "objective": self.objective,
            "solve_time": self.solve_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "rules_added": self.rules_added,
            "rules_removed": self.rules_removed,
            "rules_changed": self.rules_changed,
            "weight_churn": self.weight_churn,
            "telemetry_age": self.telemetry_age,
            "warm": self.warm,
            "warm_build": self.warm_build,
            "build_time": self.build_time,
            "solver_path": self.solver_path,
        }


@dataclass
class DecisionLog:
    """Append-only log of :class:`EpochDecision` records for one run."""

    decisions: list[EpochDecision] = field(default_factory=list)
    _prev_demand: dict = field(default_factory=dict, repr=False)
    _prev_rules: dict = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self):
        return iter(self.decisions)

    # ----------------------------------------------------------- recording

    def record(self, sim_time: float, controller: GlobalController,
               update: RuleSet | None) -> EpochDecision:
        """Fold one epoch's controller state into the log.

        ``update`` is what the policy shipped this epoch (None when it had
        nothing to plan against). Called by the harness *after* the epoch's
        plan, so ``controller.last_result`` reflects this epoch.
        """
        demand = {
            (cls, cluster): controller.demand_estimate(cls, cluster)
            for cls in sorted(controller.app.classes)
            for cluster in controller.deployment.cluster_names
        }
        delta = sum(
            abs(demand.get(key, 0.0) - self._prev_demand.get(key, 0.0))
            for key in sorted(set(demand) | set(self._prev_demand)))
        result = controller.last_result
        if update is None or result is None:
            outcome = "no-demand"
        elif result.cache_hit:
            outcome = "replayed"
        else:
            outcome = "solved"
        added = removed = changed = 0
        churn = 0.0
        if update is not None:
            new_rules = update.by_key()
            for key in sorted(set(new_rules) | set(self._prev_rules),
                              key=lambda k: (k.service, k.traffic_class,
                                             k.src_cluster)):
                old_weights = self._prev_rules.get(key)
                new_weights = new_rules.get(key)
                if old_weights is None:
                    added += 1
                    churn += sum(new_weights.values())
                elif new_weights is None:
                    removed += 1
                    churn += sum(old_weights.values())
                else:
                    diff = sum(
                        abs(new_weights.get(c, 0.0) - old_weights.get(c, 0.0))
                        for c in sorted(set(new_weights) | set(old_weights)))
                    if diff > _WEIGHT_EPSILON:
                        changed += 1
                        churn += diff
            self._prev_rules = new_rules
        decision = EpochDecision(
            epoch=len(self.decisions),
            sim_time=sim_time,
            outcome=outcome,
            demand_total=sum(demand.values()),
            demand_delta=delta,
            fingerprint=getattr(result, "fingerprint", None),
            objective=result.objective if result is not None else None,
            solve_time=result.solve_time if result is not None else None,
            cache_hits=result.cache_hits if result is not None else 0,
            cache_misses=result.cache_misses if result is not None else 0,
            rules_added=added,
            rules_removed=removed,
            rules_changed=changed,
            weight_churn=churn,
            telemetry_age=(
                None if getattr(controller, "last_observe_time", None) is None
                else max(0.0, sim_time - controller.last_observe_time)),
            warm=bool(getattr(result, "warm_start", False)),
            warm_build=bool(getattr(result, "warm_build", False)),
            build_time=getattr(result, "build_time", None),
            solver_path=(getattr(result, "solver_path", None)
                         if outcome != "no-demand" else None),
        )
        self._prev_demand = demand
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------- queries

    def counts(self) -> dict[str, int]:
        """How many epochs landed on each outcome."""
        out = {"solved": 0, "replayed": 0, "no-demand": 0}
        for decision in self.decisions:
            out[decision.outcome] = out.get(decision.outcome, 0) + 1
        return out

    # ------------------------------------------------------------- exports

    def to_jsonl_lines(self) -> list[str]:
        return [json.dumps(d.as_dict(), sort_keys=True)
                for d in self.decisions]

    def render(self) -> str:
        """Fixed-width text table of the log (for the CLI)."""
        header = (f"{'epoch':>5} {'t(sim)':>8} {'outcome':<9} "
                  f"{'demand':>8} {'delta':>8} {'objective':>10} "
                  f"{'+':>3} {'-':>3} {'~':>3} {'churn':>7} {'age':>6}")
        lines = [header, "-" * len(header)]
        for d in self.decisions:
            objective = ("-" if d.objective is None
                         else f"{d.objective:.4f}")
            age = ("-" if d.telemetry_age is None
                   else f"{d.telemetry_age:.2f}")
            lines.append(
                f"{d.epoch:>5} {d.sim_time:>8.1f} {d.outcome:<9} "
                f"{d.demand_total:>8.1f} {d.demand_delta:>8.1f} "
                f"{objective:>10} {d.rules_added:>3} {d.rules_removed:>3} "
                f"{d.rules_changed:>3} {d.weight_churn:>7.3f} {age:>6}")
        counts = self.counts()
        lines.append(
            f"epochs={len(self.decisions)} solved={counts['solved']} "
            f"replayed={counts['replayed']} no-demand={counts['no-demand']}")
        return "\n".join(lines)
