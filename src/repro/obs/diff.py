"""Run-diff regression engine: compare two runs' exported artifacts.

CI-grade comparison of the JSON/JSONL artifacts the observability layer
(and the benchmark harness) writes: metrics snapshots, time-series
snapshots, decision/alert JSONL logs, and the flat ``BENCH_*.json``
trajectory files. Every artifact is first *flattened* to a map of scalar
series keys → values, then compared pairwise under configurable tolerance
bands, with direction awareness — a drop in ``events_per_sec`` is a
regression, a drop in ``request_latency_p99`` is an improvement.

The CLI face is ``repro obs diff A B``; it exits non-zero when the report
contains a regression, which is what lets the bench-smoke CI job gate on
committed ``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

__all__ = ["DiffConfig", "DiffReport", "SeriesDelta", "diff_files",
           "diff_runs", "flatten_artifact", "load_artifact"]

#: key patterns where bigger is better (a decrease is the regression)
DEFAULT_HIGHER_IS_BETTER = (
    "*_per_sec*", "*hit_rate*", "*completed*", "*speedup*",
)
#: key patterns where smaller is better (an increase is the regression)
DEFAULT_LOWER_IS_BETTER = (
    "*latency*", "*cost*", "*failed*", "*dropped*", "*timed_out*",
    "*queue_depth*", "*_seconds*", "*burn_rate*", "*churn*", "*_error*",
)


@dataclass(frozen=True)
class DiffConfig:
    """Tolerances and direction rules for one comparison."""

    #: default relative tolerance (fraction of the baseline value)
    rel_tolerance: float = 0.05
    #: absolute slack added on top (guards near-zero baselines)
    abs_tolerance: float = 1e-9
    #: glob pattern → relative tolerance overriding the default
    key_tolerances: tuple[tuple[str, float], ...] = ()
    higher_is_better: tuple[str, ...] = DEFAULT_HIGHER_IS_BETTER
    lower_is_better: tuple[str, ...] = DEFAULT_LOWER_IS_BETTER
    #: keys matching these patterns are skipped entirely
    ignore: tuple[str, ...] = ("schema_version", "*wall_time*",
                               "*solve_time*", "*_workers", "cpu_count")
    #: a key present in the baseline but absent in the candidate is a
    #: regression (candidate-only keys are always fine — artifacts grow)
    fail_on_missing: bool = True

    def tolerance_for(self, key: str) -> float:
        for pattern, tolerance in self.key_tolerances:
            if fnmatchcase(key, pattern):
                return tolerance
        return self.rel_tolerance

    def direction_for(self, key: str) -> str:
        """"higher", "lower", or "both" (any drift counts)."""
        for pattern in self.higher_is_better:
            if fnmatchcase(key, pattern):
                return "higher"
        for pattern in self.lower_is_better:
            if fnmatchcase(key, pattern):
                return "lower"
        return "both"

    def ignores(self, key: str) -> bool:
        return any(fnmatchcase(key, pattern) for pattern in self.ignore)


@dataclass(frozen=True)
class SeriesDelta:
    """One compared key: baseline vs candidate and the verdict."""

    key: str
    baseline: float | None
    candidate: float | None
    direction: str
    tolerance: float
    regression: bool

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def rel_delta(self) -> float | None:
        if self.delta is None:
            return None
        if self.baseline == 0:
            return None if self.delta == 0 else float("inf")
        return self.delta / abs(self.baseline)

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "regression": self.regression,
        }


@dataclass
class DiffReport:
    """Every compared key, plus the regression verdict."""

    baseline_name: str
    candidate_name: str
    deltas: list[SeriesDelta] = field(default_factory=list)

    def regressions(self) -> list[SeriesDelta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def has_regressions(self) -> bool:
        return any(delta.regression for delta in self.deltas)

    def changed(self) -> list[SeriesDelta]:
        """Deltas with any numeric movement (for compact reporting)."""
        return [delta for delta in self.deltas
                if delta.delta is None or delta.delta != 0]

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline_name,
            "candidate": self.candidate_name,
            "compared": len(self.deltas),
            "regressions": len(self.regressions()),
            "deltas": [delta.as_dict() for delta in self.changed()],
        }

    def render(self, all_keys: bool = False) -> str:
        """Fixed-width table: regressions first, then other movement."""
        header = (f"{'key':<52} {'baseline':>12} {'candidate':>12} "
                  f"{'rel':>8} verdict")
        lines = [f"diff: {self.baseline_name} -> {self.candidate_name}",
                 header, "-" * len(header)]
        shown = self.deltas if all_keys else self.changed()
        ordered = sorted(shown, key=lambda d: (not d.regression, d.key))
        for delta in ordered:
            baseline = ("missing" if delta.baseline is None
                        else f"{delta.baseline:.6g}")
            candidate = ("missing" if delta.candidate is None
                         else f"{delta.candidate:.6g}")
            rel = delta.rel_delta
            rel_text = "-" if rel is None else f"{rel:+.1%}"
            verdict = "REGRESSION" if delta.regression else "ok"
            lines.append(f"{delta.key:<52} {baseline:>12} {candidate:>12} "
                         f"{rel_text:>8} {verdict}")
        lines.append(f"compared={len(self.deltas)} "
                     f"regressions={len(self.regressions())}")
        return "\n".join(lines)


# -------------------------------------------------------------- flattening

def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _flatten_metrics_snapshot(payload: dict) -> dict[str, float]:
    """A :meth:`MetricsRegistry.snapshot` document → flat scalar map."""
    flat: dict[str, float] = {}
    for name, metric in payload.items():
        for entry in metric.get("series", []):
            labels = _render_labels(entry.get("labels", {}))
            if "value" in entry:
                flat[f"{name}{labels}"] = float(entry["value"])
            else:   # histogram: compare the moments, not every bucket
                flat[f"{name}{labels}:count"] = float(entry["count"])
                flat[f"{name}{labels}:sum"] = float(entry["sum"])
                flat[f"{name}{labels}:mean"] = float(entry["mean"])
    return flat


def _flatten_timeseries_snapshot(payload: dict) -> dict[str, float]:
    """A :meth:`TimeSeriesStore.snapshot` document → per-series stats.

    Ring-buffered series are summarised (last/mean/max) rather than
    compared point-by-point: two healthy runs never align sample-for-sample
    once anything upstream shifts event timing, but their window statistics
    should hold still.
    """
    flat: dict[str, float] = {}
    for entry in payload.get("series", []):
        values = [float(v) for _, v in entry.get("points", [])]
        if not values:
            continue
        key = f"{entry['name']}{_render_labels(entry.get('labels', {}))}"
        flat[f"{key}:last"] = values[-1]
        flat[f"{key}:mean"] = sum(values) / len(values)
        flat[f"{key}:max"] = max(values)
    return flat


def _flatten_jsonl(lines: list[dict]) -> dict[str, float]:
    """Decision/alert JSONL → aggregate counters.

    Decision logs contribute epoch outcome counts and total churn; alert
    logs contribute fired/resolved counts and summed firing time.
    """
    flat: dict[str, float] = {}
    if not lines:
        return flat
    if "outcome" in lines[0]:   # decision log
        flat["decisions:epochs"] = float(len(lines))
        for record in lines:
            key = f"decisions:{record['outcome']}"
            flat[key] = flat.get(key, 0.0) + 1.0
        flat["decisions:weight_churn"] = sum(
            float(record.get("weight_churn", 0.0)) for record in lines)
        flat["decisions:rules_changed"] = sum(
            float(record.get("rules_changed", 0)) for record in lines)
    elif "fired_at" in lines[0]:   # alert log
        flat["alerts:fired"] = float(len(lines))
        resolved = [record for record in lines
                    if record.get("resolved_at") is not None]
        flat["alerts:resolved"] = float(len(resolved))
        flat["alerts:firing_seconds"] = sum(
            record["resolved_at"] - record["fired_at"] for record in resolved)
    else:
        raise ValueError("unrecognised JSONL artifact (neither decision "
                         "nor alert records)")
    return flat


def flatten_artifact(payload, name: str = "<artifact>") -> dict[str, float]:
    """Normalise any supported artifact payload to a flat scalar map."""
    if isinstance(payload, list):
        return _flatten_jsonl(payload)
    if not isinstance(payload, dict):
        raise ValueError(f"{name}: unsupported artifact payload "
                         f"{type(payload).__name__}")
    if "series" in payload and isinstance(payload["series"], list):
        return _flatten_timeseries_snapshot(payload)
    values = list(payload.values())
    if values and all(isinstance(value, dict) and "kind" in value
                      for value in values):
        return _flatten_metrics_snapshot(payload)
    flat = {key: float(value) for key, value in payload.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)}
    if not flat:
        raise ValueError(f"{name}: no numeric keys to compare")
    return flat


def load_artifact(path: str | Path) -> dict[str, float]:
    """Load + flatten one artifact file (.json or .jsonl)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".jsonl":
        lines = [json.loads(line) for line in text.splitlines()
                 if line.strip()]
        return flatten_artifact(lines, name=str(path))
    return flatten_artifact(json.loads(text), name=str(path))


# -------------------------------------------------------------- comparison

def _compare_key(key: str, baseline: float | None, candidate: float | None,
                 config: DiffConfig) -> SeriesDelta:
    direction = config.direction_for(key)
    tolerance = config.tolerance_for(key)
    if candidate is None:
        return SeriesDelta(key, baseline, None, direction, tolerance,
                           regression=config.fail_on_missing)
    if baseline is None:
        # new key in the candidate: informational, never a failure
        return SeriesDelta(key, None, candidate, direction, tolerance,
                           regression=False)
    band = tolerance * abs(baseline) + config.abs_tolerance
    delta = candidate - baseline
    if direction == "higher":
        regression = delta < -band
    elif direction == "lower":
        regression = delta > band
    else:
        regression = abs(delta) > band
    return SeriesDelta(key, baseline, candidate, direction, tolerance,
                       regression=regression)


def diff_runs(baseline: dict[str, float], candidate: dict[str, float],
              config: DiffConfig | None = None,
              baseline_name: str = "baseline",
              candidate_name: str = "candidate") -> DiffReport:
    """Compare two flattened artifacts under ``config`` tolerances."""
    config = config or DiffConfig()
    report = DiffReport(baseline_name, candidate_name)
    for key in sorted(set(baseline) | set(candidate)):
        if config.ignores(key):
            continue
        report.deltas.append(_compare_key(key, baseline.get(key),
                                          candidate.get(key), config))
    return report


def diff_files(baseline_path: str | Path, candidate_path: str | Path,
               config: DiffConfig | None = None) -> DiffReport:
    """Load, flatten, and compare two artifact files."""
    baseline = load_artifact(baseline_path)
    candidate = load_artifact(candidate_path)
    return diff_runs(baseline, candidate, config,
                     baseline_name=str(baseline_path),
                     candidate_name=str(candidate_path))
