"""File exporters for the observability layer.

This is the sanctioned IO boundary of ``repro.obs``: the tracer, metrics
registry, and decision log build everything in memory; only these functions
touch the filesystem. Lint rule D08 (no print/file-writes in library code)
is suppressed per line below — writing artifact files is this module's
entire job, and every writer takes an explicit caller-chosen path.
"""

from __future__ import annotations

import json
from pathlib import Path

from .alerts import AlertLog
from .anomaly import AnomalyLog
from .decisions import DecisionLog
from .metrics import MetricsRegistry
from .provenance import ProvenanceLog
from .signals import SignalBus
from .timeseries import TimeSeriesStore
from .tracing import Tracer, chrome_trace

__all__ = ["load_trace_jsonl", "write_alerts_jsonl", "write_anomalies_jsonl",
           "write_chrome_trace", "write_decisions_jsonl",
           "write_flight_dump", "write_metrics_json",
           "write_metrics_prometheus", "write_provenance_jsonl",
           "write_signals_jsonl", "write_timeseries_json",
           "write_trace_jsonl"]


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> int:
    """One span per line; round-trips via :func:`load_trace_jsonl`."""
    lines = tracer.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def load_trace_jsonl(path: str | Path) -> Tracer:
    """Rebuild a :class:`Tracer` from a :func:`write_trace_jsonl` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return Tracer.from_jsonl_lines(handle)


def write_chrome_trace(tracer: Tracer, path: str | Path,
                       max_requests: int | None = None) -> int:
    """Chrome ``trace_event`` JSON (Perfetto-loadable); returns event count."""
    document = chrome_trace(tracer, max_requests=max_requests)
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        json.dump(document, handle)
    return len(document["traceEvents"])


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> int:
    """Full registry snapshot as JSON; returns the metric count."""
    snapshot = registry.snapshot()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(snapshot)


def write_metrics_prometheus(registry: MetricsRegistry,
                             path: str | Path) -> int:
    """Prometheus text exposition dump; returns the line count."""
    text = registry.to_prometheus()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        handle.write(text)
    return text.count("\n")


def write_timeseries_json(store: TimeSeriesStore, path: str | Path) -> int:
    """Full time-series snapshot as JSON; returns the series count.

    Round-trips via :meth:`TimeSeriesStore.from_snapshot` and feeds the
    run-diff engine (:mod:`repro.obs.diff`).
    """
    snapshot = store.snapshot()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(snapshot["series"])


def write_alerts_jsonl(log: AlertLog, path: str | Path) -> int:
    """One alert per line; returns the alert count."""
    lines = log.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def write_anomalies_jsonl(log: AnomalyLog, path: str | Path) -> int:
    """One anomaly event per line; returns the event count."""
    lines = log.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def write_signals_jsonl(bus: SignalBus, path: str | Path) -> int:
    """Every retained bus signal, one JSON per line, in publish order."""
    lines = bus.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def write_decisions_jsonl(log: DecisionLog, path: str | Path) -> int:
    """One decision per line; returns the decision count."""
    lines = log.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def write_provenance_jsonl(log: ProvenanceLog, path: str | Path) -> int:
    """One provenance record per line; returns the record count."""
    lines = log.to_jsonl_lines()
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def write_flight_dump(log: ProvenanceLog, path: str | Path) -> int:
    """Anomaly-triggered flight-recorder snapshots, one JSON per line.

    Every snapshot carries the run's scenario + seed (``run``) so the
    simulation that produced it can be replayed deterministically, the
    frozen provenance ring (``records``), and the surrounding time-series
    window (``timeseries``). Returns the snapshot count.
    """
    lines = [json.dumps(snapshot, sort_keys=True)
             for snapshot in log.snapshots]
    # exporter module: artifact writes are its declared purpose
    with open(path, "w", encoding="utf-8") as handle:   # lint: ignore[D08]
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
