"""Alert log: sim-timestamped firing→resolved records from the SLO engine.

Every alert the burn-rate state machine (:mod:`repro.obs.slo`) fires lands
here as an :class:`Alert` with its firing interval in *simulated* seconds —
the same clock the decision log and traces use, so the three can be joined:
:func:`join_alerts_decisions` answers "did the Global Controller re-plan
*while* this SLO was burning?" directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Alert", "AlertLog", "join_alerts_decisions"]


@dataclass
class Alert:
    """One firing (and possibly resolved) SLO violation."""

    rule: str
    kind: str
    fired_at: float
    #: burn rates at the moment the alert fired
    fired_fast_burn: float
    fired_slow_burn: float
    resolved_at: float | None = None
    #: highest fast-window burn rate observed while firing
    peak_burn: float = 0.0
    #: scrape evaluations spent in the firing state
    evaluations: int = 0

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    @property
    def duration(self) -> float | None:
        """Firing interval length; None while still active."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.fired_at

    def overlaps(self, time: float) -> bool:
        """True when ``time`` falls inside the firing interval."""
        if time < self.fired_at:
            return False
        return self.resolved_at is None or time <= self.resolved_at

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "fired_fast_burn": self.fired_fast_burn,
            "fired_slow_burn": self.fired_slow_burn,
            "peak_burn": self.peak_burn,
            "evaluations": self.evaluations,
        }


@dataclass
class AlertLog:
    """Append-only, sim-time-ordered log of alerts for one run."""

    alerts: list[Alert] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)

    # ----------------------------------------------------------- recording

    def fire(self, rule: str, kind: str, time: float,
             fast_burn: float, slow_burn: float) -> Alert:
        """Open a new firing alert (called by the SLO state machine)."""
        alert = Alert(rule=rule, kind=kind, fired_at=time,
                      fired_fast_burn=fast_burn, fired_slow_burn=slow_burn,
                      peak_burn=fast_burn, evaluations=1)
        self.alerts.append(alert)
        return alert

    # ------------------------------------------------------------- queries

    def active(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.active]

    def resolved(self) -> list[Alert]:
        return [alert for alert in self.alerts if not alert.active]

    def for_rule(self, rule: str) -> list[Alert]:
        return [alert for alert in self.alerts if alert.rule == rule]

    def firing_at(self, time: float) -> list[Alert]:
        """Alerts whose firing interval contains ``time``."""
        return [alert for alert in self.alerts if alert.overlaps(time)]

    # ------------------------------------------------------------- exports

    def to_jsonl_lines(self) -> list[str]:
        return [json.dumps(alert.as_dict(), sort_keys=True)
                for alert in self.alerts]

    def render(self) -> str:
        """Fixed-width text table of the log (for the CLI)."""
        header = (f"{'rule':<24} {'kind':<12} {'fired':>8} {'resolved':>9} "
                  f"{'dur':>7} {'peak':>7}")
        lines = [header, "-" * len(header)]
        for alert in self.alerts:
            resolved = ("active" if alert.resolved_at is None
                        else f"{alert.resolved_at:.1f}")
            duration = ("-" if alert.duration is None
                        else f"{alert.duration:.1f}")
            lines.append(
                f"{alert.rule:<24} {alert.kind:<12} {alert.fired_at:>8.1f} "
                f"{resolved:>9} {duration:>7} {alert.peak_burn:>7.2f}")
        lines.append(f"alerts={len(self.alerts)} "
                     f"active={len(self.active())} "
                     f"resolved={len(self.resolved())}")
        return "\n".join(lines)


def join_alerts_decisions(alerts: AlertLog, decisions) -> list[dict]:
    """Join alerts against the Global Controller decision log by sim time.

    For each alert, collect the :class:`~repro.obs.decisions.EpochDecision`
    records whose ``sim_time`` falls inside the alert's firing interval.
    Returns one dict per alert: the alert, the overlapping decisions, and
    how many of those were fresh re-plans (``outcome == "solved"``) — the
    "did the controller react *because* the SLO was burning" view.
    """
    joined = []
    for alert in alerts:
        overlapping = [decision for decision in decisions
                       if alert.overlaps(decision.sim_time)]
        joined.append({
            "alert": alert,
            "decisions": overlapping,
            "replans": sum(1 for decision in overlapping
                           if decision.outcome == "solved"),
        })
    return joined
