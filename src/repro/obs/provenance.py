"""Decision provenance: the causal chain behind every routing shift.

The decision log (PR 3–4) records *what* the Global Controller shipped each
epoch; this module records *why*, as one joinable chain per epoch:

(a) what the controller **observed** — a digest of the telemetry snapshot
    it folded in plus signed per-(class, cluster) demand deltas;
(b) which rung of the optimizer's reuse ladder the epoch took — solver-cache
    **replay**, **warm** restricted solve (with the pricing-certificate
    outcome), or **cold** solve — plus structure-cache rescatter vs rebuild
    and path-candidate stats for the path formulation;
(c) the per-class **rule deltas** actually installed in the routing table
    (including chaos-mode fallback installs the controller never saw);
(d) the **observed data-plane shift** attributed from ``obs.timeseries``
    over the following epoch: egress-rate movement per WAN pair, p95
    latency movement per class, and scraped routing churn.

Records accumulate in a bounded deterministic ring — the **flight
recorder**. Anomaly triggers (an SLO alert firing, a chaos ``FaultRecord``
edge, a runtime-invariant failure) snapshot the ring plus the surrounding
time-series windows into an in-memory dump (JSONL via
:func:`repro.obs.export.write_flight_dump`) stamped with the run's scenario
and seed, so the exact simulation can be re-run deterministically.

Like every obs pillar the whole pipeline is pull-based and read-only:
recording reads controller/table state the harness already holds and never
perturbs the control loop, so enabling provenance keeps runs
byte-identical. Chaos stays un-imported (architecture contract A04):
fault records are duck-typed through their ``fired_at``/``resolved_at``/
``as_dict`` surface.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imports for annotations only — obs stays decoupled
    from ..core.controller.global_controller import GlobalController
    from ..core.rules import RuleSet
    from .alerts import AlertLog
    from .timeseries import TimeSeriesStore

__all__ = ["DEFAULT_FLIGHT_RING", "EpochEffect", "FlightRecorder",
           "ProvenanceLog", "ProvenanceRecord", "telemetry_digest"]

#: default flight-recorder ring capacity (epochs, not seconds)
DEFAULT_FLIGHT_RING = 64

#: retained anomaly snapshots before the oldest are dropped (counted)
MAX_SNAPSHOTS = 32

#: per-record cap on itemised rule changes (largest-churn first)
MAX_RULE_CHANGES = 24

#: weight/rate movement below this is float noise, not a shift
_EPSILON = 1e-9


def telemetry_digest(reports) -> str:
    """Content hash of one epoch's cluster-report snapshot.

    Canonical-JSON sha256 over the per-cluster ingress summaries — enough
    to tell "the controller saw the same telemetry" apart from "it saw
    something new" without retaining the reports themselves.
    """
    payload = []
    for report in sorted(reports, key=lambda r: (r.cluster, r.start_time)):
        payload.append({
            "cluster": report.cluster,
            "start": report.start_time,
            "duration": report.duration,
            "ingress": {cls: report.ingress_counts[cls]
                        for cls in sorted(report.ingress_counts)},
            "requests": len(report.request_latencies),
        })
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class EpochEffect:
    """Observed data-plane shift over the epoch *after* a decision.

    Attributed from the time-series store once the next epoch's boundary
    is known: scrape samples in ``[start, end)`` belong to this decision
    (epoch hooks run before scrape ticks at tied timestamps, so the
    boundary sample reflects the freshly installed table).
    """

    start: float
    end: float
    #: summed scraped L1 routing churn inside the window
    weight_churn: float = 0.0
    #: "src->dst" → {"rate": bytes/s in window, "delta": vs prior window}
    egress: dict[str, dict[str, float]] = field(default_factory=dict)
    #: class → {"p95": mean scraped p95, "delta": vs prior window or None}
    latency: dict[str, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "weight_churn": self.weight_churn,
            "egress": self.egress,
            "latency": self.latency,
        }


@dataclass
class ProvenanceRecord:
    """One epoch's full causal chain (see module docstring)."""

    epoch: int
    sim_time: float
    #: "solved" / "replayed" / "no-demand" / "outage" (control plane down)
    outcome: str
    telemetry_digest: str | None
    report_count: int
    #: class → cluster → quantized demand estimate after this observe
    demand: dict[str, dict[str, float]]
    #: class → cluster → signed change vs the previous epoch's estimate
    demand_delta: dict[str, dict[str, float]]
    #: reuse-ladder outcome from the EpochSolver recorder hook:
    #: solver_path ("replay"/"warm"/"cold"), warm_build, pricing
    #: ("certified"/"rejected"/None), formulation, n_variables, candidates
    solver: dict | None
    objective: float | None
    fingerprint: str | None
    #: class → {"added","removed","changed","churn","shift":{dst: net Δw}}
    rule_deltas: dict[str, dict]
    #: itemised largest-churn rule changes (capped at MAX_RULE_CHANGES)
    rule_changes: list[dict]
    #: total installed L1 weight churn across all classes
    weight_churn: float
    #: clusters whose stale-rule guard installed fallback rules this epoch
    fallback_clusters: tuple[str, ...] = ()
    #: filled in at the next epoch boundary (None for the final record)
    effect: EpochEffect | None = None

    def demand_delta_l1(self, traffic_class: str | None = None) -> float:
        """Total |demand movement|, optionally for one class."""
        classes = ([traffic_class] if traffic_class is not None
                   else sorted(self.demand_delta))
        return sum(abs(delta)
                   for cls in classes
                   for delta in self.demand_delta.get(cls, {}).values())

    def shift_for(self, traffic_class: str) -> dict[str, float]:
        """Net per-destination weight shift for one class."""
        entry = self.rule_deltas.get(traffic_class)
        return dict(entry["shift"]) if entry else {}

    def churn_for(self, traffic_class: str) -> float:
        entry = self.rule_deltas.get(traffic_class)
        return float(entry["churn"]) if entry else 0.0

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "sim_time": self.sim_time,
            "outcome": self.outcome,
            "telemetry_digest": self.telemetry_digest,
            "report_count": self.report_count,
            "demand": self.demand,
            "demand_delta": self.demand_delta,
            "solver": self.solver,
            "objective": self.objective,
            "fingerprint": self.fingerprint,
            "rule_deltas": self.rule_deltas,
            "rule_changes": self.rule_changes,
            "weight_churn": self.weight_churn,
            "fallback_clusters": list(self.fallback_clusters),
            "effect": self.effect.as_dict() if self.effect else None,
        }


class FlightRecorder:
    """Bounded ring of provenance records plus anomaly snapshots.

    The ring keeps the last ``capacity`` epochs (evictions are counted,
    never silent); :meth:`snapshot` freezes the ring into an immutable
    dump at an anomaly trigger.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_RING) -> None:
        if capacity < 2:
            raise ValueError(f"flight ring capacity must be >= 2, "
                             f"got {capacity}")
        self.capacity = capacity
        self._ring: deque[ProvenanceRecord] = deque(maxlen=capacity)
        self.dropped_records = 0
        self.snapshots: list[dict] = []
        self.dropped_snapshots = 0

    def __len__(self) -> int:
        return len(self._ring)

    def append(self, record: ProvenanceRecord) -> None:
        if len(self._ring) == self.capacity:
            self.dropped_records += 1
        self._ring.append(record)

    def records(self) -> list[ProvenanceRecord]:
        """Retained records, oldest first."""
        return list(self._ring)

    def snapshot(self, trigger: dict, run: dict,
                 timeseries: dict | None) -> dict:
        """Freeze the ring at an anomaly; returns the appended dump."""
        dump = {
            "trigger": trigger,
            "run": dict(run),
            "ring_capacity": self.capacity,
            "dropped_records": self.dropped_records,
            "records": [record.as_dict() for record in self._ring],
            "timeseries": timeseries,
        }
        if len(self.snapshots) >= MAX_SNAPSHOTS:
            del self.snapshots[0]
            self.dropped_snapshots += 1
        self.snapshots.append(dump)
        return dump


class ProvenanceLog:
    """Per-run provenance pipeline: record, join, trigger, explain.

    Fed from three directions: the harness calls :meth:`record_epoch` after
    each control epoch (and the trigger checks after that), the
    :class:`~repro.core.optimizer.warm.EpochSolver` pushes its reuse-ladder
    outcome through the duck-typed :meth:`record_solve` hook, and the
    shared :class:`~repro.obs.timeseries.TimeSeriesStore` supplies the
    next-epoch effect attribution.
    """

    def __init__(self, store: "TimeSeriesStore | None" = None,
                 ring: int = DEFAULT_FLIGHT_RING) -> None:
        self.store = store
        self.flight = FlightRecorder(ring)
        #: scenario/seed stamp for exact deterministic restore of the run
        self.run_info: dict = {}
        self._epoch = 0
        self._prev_demand: dict[str, dict[str, float]] = {}
        self._prev_rules: dict = {}
        self._pending: ProvenanceRecord | None = None
        self._prev_window: tuple[float, float] | None = None
        self._last_solve: dict | None = None
        self._seen_alerts = 0
        self._seen_faults: set = set()
        self._seen_anomalies = 0
        self._seen_predictions = 0

    # -------------------------------------------------------------- wiring

    def bind_run(self, scenario: str, seed, policy: str | None = None) -> None:
        """Stamp the run identity every snapshot carries (exact restore)."""
        self.run_info = {"scenario": scenario, "seed": seed}
        if policy is not None:
            self.run_info["policy"] = policy

    def record_solve(self, info: dict) -> None:
        """EpochSolver recorder hook: stash this epoch's ladder outcome."""
        self._last_solve = dict(info)

    def seed_rules(self, rules: dict) -> None:
        """Baseline the rule diff against the pre-epoch initial install.

        Without this, epoch 0 would claim the initial plan's rules as its
        own additions; with it, each record shows only what *that* epoch
        shipped — matching the scraped churn signal exactly.
        """
        self._prev_rules = dict(rules)

    # ----------------------------------------------------------- recording

    def record_epoch(self, now: float, *,
                     controller: "GlobalController | None" = None,
                     update: "RuleSet | None" = None,
                     reports=(),
                     rules: dict | None = None,
                     outcome: str | None = None,
                     fallback: tuple = ()) -> ProvenanceRecord:
        """Fold one control epoch into the chain.

        Called by the harness after the epoch's plan + distribute (and in
        chaos mode after the stale-rule guard ran), with ``rules`` the
        routing table's post-epoch snapshot (``table.rules()``) — so the
        diff captures everything this epoch installed, controller updates
        and fallback installs alike. The snapshot is taken by the caller:
        this module only ever reads it (contract A01). Closing the
        *previous* record's effect window happens first, now that its end
        is known.
        """
        self._close_effect(now)

        digest = telemetry_digest(reports) if reports else None
        demand, delta = self._demand_snapshot(controller)

        solve_info = self._last_solve
        self._last_solve = None
        result = controller.last_result if controller is not None else None
        if outcome is None:
            if update is None or result is None:
                outcome = "no-demand"
            elif result.cache_hit:
                outcome = "replayed"
            else:
                outcome = "solved"
        if outcome in ("solved", "replayed"):
            if solve_info is None and result is not None:
                # recorder not attached at solve time: derive the rung
                # from the result (single derivation point, PR 8)
                solve_info = {"solver_path": result.solver_path,
                              "warm_build": result.warm_build,
                              "pricing": None}
            objective = result.objective if result is not None else None
            fingerprint = result.fingerprint if result is not None else None
        else:
            solve_info = None
            objective = None
            fingerprint = None

        if rules is None:
            rules = dict(self._prev_rules)
        per_class, changes, total_churn = self._rule_deltas(rules)
        self._prev_rules = rules

        record = ProvenanceRecord(
            epoch=self._epoch,
            sim_time=now,
            outcome=outcome,
            telemetry_digest=digest,
            report_count=len(reports),
            demand=demand,
            demand_delta=delta,
            solver=solve_info,
            objective=objective,
            fingerprint=fingerprint,
            rule_deltas=per_class,
            rule_changes=changes,
            weight_churn=total_churn,
            fallback_clusters=tuple(fallback),
        )
        self.flight.append(record)
        self._pending = record
        self._epoch += 1
        if record.fallback_clusters:
            self.record_anomaly(now, "fallback",
                                {"clusters": list(record.fallback_clusters)})
        return record

    def finalize(self, now: float) -> None:
        """Close the last record's effect window at end of run."""
        self._close_effect(now, include_end=True)

    # ------------------------------------------------------------ triggers

    def check_alerts(self, now: float, alert_log: "AlertLog") -> None:
        """Snapshot the ring for every SLO alert fired since last check."""
        while self._seen_alerts < len(alert_log.alerts):
            alert = alert_log.alerts[self._seen_alerts]
            self._seen_alerts += 1
            self.record_anomaly(now, "slo_alert", alert.as_dict())

    def check_anomalies(self, now: float, anomaly_log) -> None:
        """Snapshot the ring for every anomaly detected since last check."""
        events = anomaly_log.events
        while self._seen_anomalies < len(events):
            event = events[self._seen_anomalies]
            self._seen_anomalies += 1
            self.record_anomaly(now, "anomaly", event.as_dict())

    def check_predictions(self, now: float, predictor) -> None:
        """Snapshot the ring for every new predicted SLO breach.

        Predictions are frozen when *emitted* (not when settled): the
        interesting ring is the one that led the projection to cross the
        thresholds — the controller state you would want to inspect while
        there is still lead time to act.
        """
        predictions = predictor.predictions
        while self._seen_predictions < len(predictions):
            prediction = predictions[self._seen_predictions]
            self._seen_predictions += 1
            self.record_anomaly(now, "predicted_breach",
                                prediction.as_dict())

    def check_faults(self, now: float, timeline) -> None:
        """Snapshot the ring at chaos fault edges (duck-typed records).

        Both edges trigger: injection (the chain *into* the anomaly) and
        recovery (the chain *through* it — outage epochs, fallback
        installs, reconciliation), so the recovered dump is the one whose
        ring reaches the fallback rule install.
        """
        for fault in timeline:
            fired = getattr(fault, "fired_at", None)
            resolved = getattr(fault, "resolved_at", None)
            index = getattr(fault, "index", id(fault))
            if fired is not None and fired <= now \
                    and (index, "fired") not in self._seen_faults:
                self._seen_faults.add((index, "fired"))
                self.record_anomaly(now, "fault", fault.as_dict())
            if resolved is not None and resolved <= now \
                    and (index, "resolved") not in self._seen_faults:
                self._seen_faults.add((index, "resolved"))
                self.record_anomaly(now, "fault_recovered", fault.as_dict())

    def record_anomaly(self, now: float, reason: str, detail: dict) -> dict:
        """Freeze the ring + surrounding timeseries windows right now."""
        start, end = self._ring_span(now)
        timeseries = self._window_snapshot(start, end)
        trigger = {"reason": reason, "sim_time": now, "detail": detail}
        return self.flight.snapshot(trigger, self.run_info, timeseries)

    # ------------------------------------------------------------- queries

    @property
    def records(self) -> list[ProvenanceRecord]:
        return self.flight.records()

    @property
    def snapshots(self) -> list[dict]:
        return self.flight.snapshots

    def explain(self, traffic_class: str, at: float | None = None) -> str:
        """Render the "why did traffic for class X shift" narrative.

        ``at`` picks the newest record at or before that sim time;
        without it, the epoch with the largest installed weight churn for
        the class is explained.
        """
        records = self.records
        if not records:
            return ("no provenance records: enable provenance and run a "
                    "scenario with at least one control epoch")
        if at is not None:
            eligible = [r for r in records if r.sim_time <= at]
            record = eligible[-1] if eligible else records[0]
        else:
            # prefer rebalancing epochs (changed rules) over bulk installs
            def shift_rank(r: ProvenanceRecord):
                entry = r.rule_deltas.get(traffic_class)
                if not entry:
                    return (0, 0.0)
                return (1 if entry["changed"] else 0, entry["churn"])
            record = max(records, key=shift_rank)
        return self._narrate(record, traffic_class)

    def render(self) -> str:
        """Fixed-width text table of the ring (for the CLI)."""
        header = (f"{'epoch':>5} {'t(sim)':>8} {'outcome':<9} {'path':<6} "
                  f"{'Δdemand':>8} {'churn':>7} {'observed':>9} {'fb':>3}")
        lines = [header, "-" * len(header)]
        for r in self.records:
            path = (r.solver or {}).get("solver_path") or "-"
            observed = ("-" if r.effect is None
                        else f"{r.effect.weight_churn:.3f}")
            lines.append(
                f"{r.epoch:>5} {r.sim_time:>8.1f} {r.outcome:<9} "
                f"{path:<6} {r.demand_delta_l1():>8.1f} "
                f"{r.weight_churn:>7.3f} {observed:>9} "
                f"{len(r.fallback_clusters):>3}")
        lines.append(f"records={len(self.records)} "
                     f"snapshots={len(self.snapshots)} "
                     f"dropped={self.flight.dropped_records}")
        return "\n".join(lines)

    def to_jsonl_lines(self) -> list[str]:
        return [json.dumps(r.as_dict(), sort_keys=True)
                for r in self.records]

    # ------------------------------------------------------------- helpers

    def _demand_snapshot(self, controller):
        """Per-(class, cluster) estimates and signed deltas vs last epoch."""
        if controller is None:
            return ({cls: dict(per) for cls, per in self._prev_demand.items()},
                    {})
        demand: dict[str, dict[str, float]] = {}
        for cls in sorted(controller.app.classes):
            demand[cls] = {
                cluster: controller.demand_estimate(cls, cluster)
                for cluster in controller.deployment.cluster_names}
        delta: dict[str, dict[str, float]] = {}
        for cls in sorted(set(demand) | set(self._prev_demand)):
            new = demand.get(cls, {})
            old = self._prev_demand.get(cls, {})
            moves = {
                cluster: new.get(cluster, 0.0) - old.get(cluster, 0.0)
                for cluster in sorted(set(new) | set(old))}
            moves = {c: d for c, d in moves.items() if abs(d) > _EPSILON}
            if moves:
                delta[cls] = moves
        self._prev_demand = demand
        return demand, delta

    def _rule_deltas(self, rules):
        """Diff the installed table against the previous epoch's snapshot."""
        prev = self._prev_rules
        per_class: dict[str, dict] = {}
        changes: list[dict] = []
        total_churn = 0.0
        for key in sorted(set(rules) | set(prev),
                          key=lambda k: (k.service, k.traffic_class,
                                         k.src_cluster)):
            old = prev.get(key)
            new = rules.get(key)
            if old is None:
                diff_map = dict(new)
                kind = "added"
            elif new is None:
                diff_map = {dst: -w for dst, w in old.items()}
                kind = "removed"
            else:
                diff_map = {
                    dst: new.get(dst, 0.0) - old.get(dst, 0.0)
                    for dst in sorted(set(new) | set(old))}
                kind = "changed"
            churn = sum(abs(d) for d in diff_map.values())
            if kind == "changed" and churn <= _EPSILON:
                continue
            cls = key.traffic_class
            entry = per_class.setdefault(
                cls, {"added": 0, "removed": 0, "changed": 0,
                      "churn": 0.0, "shift": {}})
            entry[kind] += 1
            entry["churn"] += churn
            total_churn += churn
            for dst in sorted(diff_map):
                if abs(diff_map[dst]) > _EPSILON:
                    entry["shift"][dst] = (entry["shift"].get(dst, 0.0)
                                           + diff_map[dst])
            changes.append({
                "service": key.service, "class": cls,
                "src": key.src_cluster, "kind": kind,
                "old": dict(old) if old is not None else None,
                "new": dict(new) if new is not None else None,
                "churn": churn,
            })
        changes.sort(key=lambda c: (-c["churn"], c["service"], c["class"],
                                    c["src"]))
        return per_class, changes[:MAX_RULE_CHANGES], total_churn

    def _close_effect(self, now: float, include_end: bool = False) -> None:
        pending = self._pending
        if pending is None or now <= pending.sim_time:
            return
        pending.effect = self._attribute(pending.sim_time, now, include_end)
        self._prev_window = (pending.sim_time, now)
        self._pending = None

    def _attribute(self, start: float, end: float,
                   include_end: bool) -> EpochEffect | None:
        """Join the window's scraped samples back onto the decision."""
        store = self.store
        if store is None:
            return None
        effect = EpochEffect(start=start, end=end)

        def in_window(t: float) -> bool:
            return t < end or (include_end and t <= end)

        churn_series = store.series("routing_weight_churn")
        if churn_series is not None:
            effect.weight_churn = sum(
                v for t, v in churn_series.window(start, end)
                if in_window(t))

        prev = self._prev_window or (max(0.0, 2.0 * start - end), start)
        for series in store.all_series("wan_egress_bytes_total"):
            labels = dict(series.labels)
            src, dst = labels.get("src", ""), labels.get("dst", "")
            rate = store.rate("wan_egress_bytes_total", start, end,
                              src=src, dst=dst)
            before = store.rate("wan_egress_bytes_total", prev[0], prev[1],
                                src=src, dst=dst)
            if rate > _EPSILON or abs(rate - before) > _EPSILON:
                effect.egress[f"{src}->{dst}"] = {
                    "rate": rate, "delta": rate - before}

        for series in store.all_series("request_latency_p95"):
            cls = dict(series.labels).get("traffic_class", "")
            current = [v for t, v in series.window(start, end)
                       if in_window(t)]
            earlier = [v for t, v in series.window(prev[0], prev[1])
                       if t < prev[1]]
            if not current:
                continue
            p95 = sum(current) / len(current)
            entry: dict = {"p95": p95}
            entry["delta"] = (p95 - sum(earlier) / len(earlier)
                              if earlier else None)
            effect.latency[cls] = entry
        return effect

    def _ring_span(self, now: float) -> tuple[float, float]:
        """The sim-time window the retained ring covers, padded one epoch."""
        records = self.records
        if not records:
            return (now, now)
        start = records[0].sim_time
        if len(records) >= 2:
            start = max(0.0, start - (records[1].sim_time
                                      - records[0].sim_time))
        return (start, max(now, records[-1].sim_time))

    def _window_snapshot(self, start: float, end: float) -> dict | None:
        """Windowed copy of every scraped series (the dump's context)."""
        store = self.store
        if store is None:
            return None
        series_out = []
        for name in store.names():
            for series in store.all_series(name):
                points = series.window(start, end)
                if not points:
                    continue
                series_out.append({
                    "name": name,
                    "labels": dict(series.labels),
                    "points": [[t, v] for t, v in points],
                })
        return {"start": start, "end": end, "series": series_out}

    # ------------------------------------------------------------ narrative

    def _narrate(self, record: ProvenanceRecord, traffic_class: str) -> str:
        run = self.run_info
        stamp = (f" [scenario={run.get('scenario')} seed={run.get('seed')}]"
                 if run else "")
        lines = [f"why did traffic for class {traffic_class!r} shift at "
                 f"t={record.sim_time:g} (epoch {record.epoch})?{stamp}"]

        # (a) observed
        demand = record.demand.get(traffic_class, {})
        delta = record.demand_delta.get(traffic_class, {})
        moves = ", ".join(
            f"{cluster} {demand.get(cluster, 0.0) - d:g}→"
            f"{demand.get(cluster, 0.0):g} ({d:+g})"
            for cluster, d in sorted(delta.items()))
        seen = (f"{record.report_count} cluster reports "
                f"(digest {record.telemetry_digest})"
                if record.telemetry_digest else "no telemetry reports")
        lines.append(f"  observed: {seen}; demand[{traffic_class}]: "
                     f"{moves if moves else 'unchanged (plateau)'}")

        # (b) decided
        lines.append("  decided: " + self._describe_decision(record))

        # (c) shipped
        entry = record.rule_deltas.get(traffic_class)
        if entry:
            shift = ", ".join(
                f"→{dst} {d:+.3f}"
                for dst, d in sorted(entry["shift"].items(),
                                     key=lambda kv: (-abs(kv[1]), kv[0])))
            lines.append(
                f"  shipped: +{entry['added']} −{entry['removed']} "
                f"~{entry['changed']} rules for {traffic_class!r}, "
                f"churn {entry['churn']:.3f}"
                + (f"; net weight shift {shift}" if shift else ""))
            for change in record.rule_changes:
                if change["class"] != traffic_class:
                    continue
                lines.append(
                    f"    {change['kind']} {change['service']} "
                    f"@{change['src']}: {_weights(change['old'])} → "
                    f"{_weights(change['new'])}")
        else:
            lines.append(f"  shipped: no rule changes for {traffic_class!r} "
                         f"this epoch (total churn {record.weight_churn:.3f})")
        if record.fallback_clusters:
            lines.append("  fallback: stale-rule guard installed "
                         f"{'/'.join(record.fallback_clusters)} "
                         "locality rules (control plane unreachable)")

        # (d) observed effect
        effect = record.effect
        if effect is None:
            lines.append("  effect: not yet attributed "
                         "(run ended at this epoch)")
        else:
            lines.append(f"  effect over [{effect.start:g}, {effect.end:g}): "
                         f"scraped routing churn {effect.weight_churn:.3f}")
            for pair, move in sorted(effect.egress.items(),
                                     key=lambda kv: (-abs(kv[1]["delta"]),
                                                     kv[0]))[:6]:
                lines.append(f"    egress {pair}: {move['rate']:.1f} B/s "
                             f"(Δ{move['delta']:+.1f})")
            move = effect.latency.get(traffic_class)
            if move is not None:
                delta_txt = ("Δ n/a" if move.get("delta") is None
                             else f"Δ{move['delta']:+.4f}s")
                lines.append(f"    p95[{traffic_class}]: "
                             f"{move['p95']:.4f}s ({delta_txt})")

        overlapping = [s for s in self.snapshots
                       if record.sim_time <= s["trigger"]["sim_time"]
                       <= (effect.end if effect else record.sim_time)]
        for snap in overlapping:
            lines.append(f"  anomaly: {snap['trigger']['reason']} at "
                         f"t={snap['trigger']['sim_time']:g} "
                         "(flight-recorder snapshot taken)")
        return "\n".join(lines)

    @staticmethod
    def _describe_decision(record: ProvenanceRecord) -> str:
        if record.outcome == "outage":
            return ("control plane unreachable — no plan shipped "
                    "(clusters on their own)")
        if record.outcome == "no-demand":
            return "nothing to plan against yet (no demand estimate)"
        solver = record.solver or {}
        path = solver.get("solver_path")
        build = ("structure-cache rescatter build"
                 if solver.get("warm_build") else "cold model build")
        if path == "replay":
            text = ("demand fingerprint unchanged → solver-cache replay "
                    f"(no LP run, {build})")
        elif path == "warm":
            text = (f"{build} + warm restricted solve; pricing certificate "
                    "certified optimality")
        elif path == "cold":
            text = f"{build} + full cold solve"
            if solver.get("pricing") == "rejected":
                text += " (warm attempt rejected by pricing)"
        else:
            text = "solved (reuse ladder not instrumented)"
        candidates = solver.get("candidates")
        if candidates:
            text += (f"; {candidates['paths']} path candidates across "
                     f"{candidates['groups']} (class, ingress) groups "
                     f"(k={candidates['k']})")
        if record.objective is not None:
            text += f"; objective {record.objective:.4f}"
        if record.fingerprint:
            text += f"; fingerprint {record.fingerprint[:12]}"
        return text


def _weights(weights: dict | None) -> str:
    if not weights:
        return "∅"
    return "{" + ", ".join(f"{dst}:{w:.2f}"
                           for dst, w in sorted(weights.items())) + "}"
