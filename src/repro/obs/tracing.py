"""Distributed tracing over simulated requests.

The first observability pillar: a :class:`Tracer` collects every
:class:`~repro.sim.request.Span` the mesh emits (the telemetry SLATE-proxies
already report, §3.1) and stitches each request's spans into a parent/child
:class:`TraceNode` tree spanning services and clusters. All timestamps are
virtual seconds from the simulation clock — a tracer never reads a wall
clock, so traces are byte-reproducible from the seed.

Stitching uses the span data itself: a span's parent is the span of
``caller_service`` in ``caller_cluster`` whose active window contains the
child's enqueue time (latest such start wins, which nests retried calls
correctly). Spans whose parent was abandoned (timeout orphans, losing
hedges) attach to the closest surviving candidate or surface as extra
roots — that work really ran, and the trace shows it.

Exports: JSONL (one span per line, round-trippable via
:meth:`Tracer.from_jsonl_lines`) and the Chrome ``trace_event`` format
(:func:`chrome_trace`) loadable in ``chrome://tracing`` / Perfetto, with one
process per cluster and one thread per service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..sim.network import LatencyMatrix
from ..sim.request import Request, Span, Trace

__all__ = ["RequestRecord", "TraceNode", "Tracer", "build_trace_tree",
           "chrome_trace", "span_from_dict", "span_to_dict"]

#: slack when matching a child's enqueue time against a parent's window
_STITCH_EPSILON = 1e-9

#: seconds → microseconds (the unit Chrome trace_event expects in ``ts``)
_MICROS = 1_000_000.0


@dataclass(frozen=True)
class RequestRecord:
    """Request-level envelope a tracer keeps next to the span tree."""

    request_id: int
    traffic_class: str
    ingress_cluster: str
    arrival_time: float
    completion_time: float | None
    failed: bool

    @property
    def latency(self) -> float | None:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


@dataclass
class TraceNode:
    """One span plus its stitched children (and the WAN cost to reach it)."""

    span: Span
    children: list["TraceNode"] = field(default_factory=list)
    #: round-trip WAN seconds on the edge into this span (0 for local calls)
    wan_rtt: float = 0.0

    @property
    def end_time(self) -> float:
        return self.span.end_time

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


def span_to_dict(span: Span) -> dict:
    """Flat JSON-friendly view of one span (the JSONL line payload)."""
    return {
        "request_id": span.request_id,
        "traffic_class": span.traffic_class,
        "service": span.service,
        "cluster": span.cluster,
        "caller_service": span.caller_service,
        "caller_cluster": span.caller_cluster,
        "enqueue_time": span.enqueue_time,
        "start_time": span.start_time,
        "end_time": span.end_time,
        "exec_time": span.exec_time,
        "request_bytes": span.request_bytes,
        "response_bytes": span.response_bytes,
    }


def span_from_dict(payload: dict) -> Span:
    """Inverse of :func:`span_to_dict`."""
    return Span(
        request_id=int(payload["request_id"]),
        traffic_class=payload["traffic_class"],
        service=payload["service"],
        cluster=payload["cluster"],
        caller_service=payload["caller_service"],
        caller_cluster=payload["caller_cluster"],
        enqueue_time=float(payload["enqueue_time"]),
        start_time=float(payload["start_time"]),
        end_time=float(payload["end_time"]),
        exec_time=float(payload["exec_time"]),
        request_bytes=int(payload["request_bytes"]),
        response_bytes=int(payload["response_bytes"]),
    )


def build_trace_tree(trace: Trace,
                     latency: LatencyMatrix | None = None) -> list[TraceNode]:
    """Stitch one request's spans into parent/child trees.

    Returns the roots: normally one (the ingress call), more when orphaned
    subtrees (timeouts, losing hedges) have no surviving parent. Children
    are ordered by enqueue time.
    """
    nodes = [TraceNode(span=span) for span in
             sorted(trace.spans, key=lambda s: (s.enqueue_time, s.start_time))]
    roots: list[TraceNode] = []
    for index, node in enumerate(nodes):
        span = node.span
        if latency is not None and span.caller_cluster is not None:
            node.wan_rtt = 2.0 * latency.one_way(span.caller_cluster,
                                                 span.cluster)
        if span.caller_service is None:
            roots.append(node)
            continue
        parent: TraceNode | None = None
        for candidate in nodes[:index]:
            cspan = candidate.span
            if cspan.service != span.caller_service:
                continue
            if cspan.cluster != span.caller_cluster:
                continue
            if cspan.start_time > span.enqueue_time + _STITCH_EPSILON:
                continue
            # latest-starting containing span wins: nests retries correctly
            if parent is None or cspan.start_time >= parent.span.start_time:
                parent = candidate
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)   # orphaned subtree: surface it
    return roots


class Tracer:
    """Collects spans and request envelopes for a whole run.

    Construction is cheap; recording is an append per span. The latency
    matrix (attached by :class:`~repro.obs.config.Observability` when the
    simulation is built) lets trees annotate WAN round-trips per hop.
    """

    def __init__(self, latency: LatencyMatrix | None = None) -> None:
        self.latency = latency
        self._spans: dict[int, list[Span]] = {}
        self._requests: dict[int, RequestRecord] = {}
        self.span_count = 0

    # ----------------------------------------------------------- recording

    def record_span(self, span: Span) -> None:
        bucket = self._spans.get(span.request_id)
        if bucket is None:
            bucket = self._spans[span.request_id] = []
        bucket.append(span)
        self.span_count += 1

    def record_request(self, request: Request) -> None:
        self._requests[request.request_id] = RequestRecord(
            request_id=request.request_id,
            traffic_class=request.traffic_class,
            ingress_cluster=request.ingress_cluster,
            arrival_time=request.arrival_time,
            completion_time=request.completion_time,
            failed=request.failed,
        )

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._spans)

    def request_ids(self) -> list[int]:
        return sorted(self._spans)

    def request(self, request_id: int) -> RequestRecord | None:
        return self._requests.get(request_id)

    def trace(self, request_id: int) -> Trace:
        trace = Trace(request_id)
        for span in self._spans.get(request_id, []):
            trace.add(span)
        return trace

    def traces(self) -> dict[int, Trace]:
        return {rid: self.trace(rid) for rid in self.request_ids()}

    def tree(self, request_id: int) -> list[TraceNode]:
        """The stitched parent/child trees for one request."""
        return build_trace_tree(self.trace(request_id), latency=self.latency)

    def slowest_requests(self, count: int = 10) -> list[RequestRecord]:
        """Completed requests by descending end-to-end latency."""
        done = [r for r in self._requests.values()
                if r.latency is not None and not r.failed]
        done.sort(key=lambda r: (-r.latency, r.request_id))
        return done[:count]

    # ------------------------------------------------------------- exports

    def to_jsonl_lines(self) -> list[str]:
        """One JSON document per span, in (request, record) order."""
        lines = []
        for request_id in self.request_ids():
            for span in self._spans[request_id]:
                lines.append(json.dumps(span_to_dict(span), sort_keys=True))
        return lines

    @classmethod
    def from_jsonl_lines(cls, lines,
                         latency: LatencyMatrix | None = None) -> "Tracer":
        """Rebuild a tracer from :meth:`to_jsonl_lines` output."""
        tracer = cls(latency=latency)
        for line in lines:
            line = line.strip()
            if line:
                tracer.record_span(span_from_dict(json.loads(line)))
        return tracer


def chrome_trace(tracer: Tracer,
                 max_requests: int | None = None) -> dict:
    """Render a tracer as a Chrome ``trace_event`` document.

    One process (``pid``) per cluster and one thread (``tid``) per service;
    each span is a complete ("X") event with microsecond ``ts``/``dur`` in
    simulated time. The result is ``json.dump``-able and loads directly in
    ``chrome://tracing`` or https://ui.perfetto.dev. ``max_requests`` keeps
    huge runs viewable by exporting only the first N request ids.
    """
    request_ids = tracer.request_ids()
    if max_requests is not None and max_requests > 0:
        request_ids = request_ids[:max_requests]
    clusters = sorted({span.cluster
                       for rid in request_ids
                       for span in tracer.trace(rid).spans})
    pid_of = {cluster: index + 1 for index, cluster in enumerate(clusters)}
    services: dict[str, set] = {}
    for rid in request_ids:
        for span in tracer.trace(rid).spans:
            services.setdefault(span.cluster, set()).add(span.service)
    tid_of: dict[tuple[str, str], int] = {}
    for cluster in clusters:
        for index, service in enumerate(sorted(services[cluster])):
            tid_of[(cluster, service)] = index + 1

    events: list[dict] = []
    for cluster in clusters:
        events.append({"ph": "M", "pid": pid_of[cluster], "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"cluster {cluster}"}})
        for service in sorted(services[cluster]):
            events.append({"ph": "M", "pid": pid_of[cluster],
                           "tid": tid_of[(cluster, service)],
                           "name": "thread_name",
                           "args": {"name": service}})
    for rid in request_ids:
        for span in tracer.trace(rid).spans:
            events.append({
                "ph": "X",
                "name": f"{span.service} [{span.traffic_class}]",
                "cat": span.traffic_class,
                "ts": span.enqueue_time * _MICROS,
                "dur": max(span.total_time, 0.0) * _MICROS,
                "pid": pid_of[span.cluster],
                "tid": tid_of[(span.cluster, span.service)],
                "args": {
                    "request_id": span.request_id,
                    "caller": f"{span.caller_service or 'ingress'}"
                              f"@{span.caller_cluster or '-'}",
                    "queue_wait_ms": span.queue_wait * 1000.0,
                    "exec_ms": span.exec_time * 1000.0,
                    "remote": span.remote,
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
