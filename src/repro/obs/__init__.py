"""Observability for the reproduction itself (tracing, metrics, decisions).

SLATE's premise (§3.1) is that the service layer can observe what the
network layer cannot; this package applies the same idea to the simulator:

* :mod:`repro.obs.tracing` — per-request distributed traces stitched from
  the spans the mesh already emits, exported to JSONL or Chrome
  ``trace_event`` (Perfetto) format;
* :mod:`repro.obs.analyzer` — critical-path extraction and per-hop
  queue/exec/WAN latency breakdowns over those traces;
* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  with JSON and prometheus-style exports, filled by :mod:`repro.obs.collect`;
* :mod:`repro.obs.timeseries` — a sim-time scrape loop sampling the mesh
  every ``scrape_interval`` virtual seconds into ring-buffered series;
* :mod:`repro.obs.slo` / :mod:`repro.obs.alerts` — declarative SLO rules
  with multi-window burn-rate alerting over the scraped series;
* :mod:`repro.obs.forecast` / :mod:`repro.obs.anomaly` /
  :mod:`repro.obs.signals` — the predictive pillar: online forecast
  models (EWMA / Holt / Holt–Winters, backtested with MASE/sMAPE),
  residual z-score + CUSUM anomaly detection, projected
  ``PredictedBreach`` alerts scored against the real alert log, all
  published on a bounded deterministic :class:`SignalBus`;
* :mod:`repro.obs.decisions` — an append-only log of every Global
  Controller epoch (demand delta, solve-vs-replay, routing diff);
* :mod:`repro.obs.provenance` — per-epoch causal chains (telemetry digest
  → solver reuse-ladder rung → rule delta → observed data-plane shift)
  in a bounded flight-recorder ring with anomaly-triggered dumps and the
  ``repro obs explain`` narrative;
* :mod:`repro.obs.diff` — a run-diff regression engine comparing two runs'
  exported artifacts under tolerance bands (``repro obs diff A B``);
* :mod:`repro.obs.profiler` — wall-clock profiling of the control plane
  (the one deliberate wall-clock consumer; simulated code never is).

Everything is off by default: construct an :class:`ObservabilityConfig`
and pass it to ``MeshSimulation``/``run_policy`` to opt in. See
``docs/observability.md``.
"""

from .alerts import Alert, AlertLog, join_alerts_decisions
from .analyzer import (HopBreakdown, critical_path, hop_breakdown,
                       trace_summary)
from .anomaly import (DEFAULT_ANOMALY_TARGETS, AnomalyEngine, AnomalyEvent,
                      AnomalyLog)
from .config import Observability, ObservabilityConfig
from .decisions import DecisionLog, EpochDecision
from .diff import (DiffConfig, DiffReport, SeriesDelta, diff_files,
                   diff_runs, flatten_artifact, load_artifact)
from .export import (load_trace_jsonl, write_alerts_jsonl,
                     write_anomalies_jsonl, write_chrome_trace,
                     write_decisions_jsonl, write_flight_dump,
                     write_metrics_json, write_metrics_prometheus,
                     write_provenance_jsonl, write_signals_jsonl,
                     write_timeseries_json, write_trace_jsonl)
from .forecast import (DEFAULT_FORECAST_TARGETS, FORECAST_MODELS,
                       BreachPredictor, ForecastEngine, PredictedBreach,
                       PredictionScore, make_model, score_predictions)
from .metrics import (Counter, DEFAULT_LATENCY_BUCKETS,
                      DEFAULT_MAX_LABEL_SETS, Gauge, Histogram,
                      MetricsRegistry)
from .profiler import ControlPlaneProfiler
from .provenance import (DEFAULT_FLIGHT_RING, EpochEffect, FlightRecorder,
                         ProvenanceLog, ProvenanceRecord, telemetry_digest)
from .signals import (DEFAULT_SIGNAL_CAPACITY, Signal, SignalBus,
                      TOPIC_ANOMALY, TOPIC_FORECAST, TOPIC_PREDICTED_BREACH)
from .slo import SloEngine, SloRule, default_latency_slo
from .timeseries import (DEFAULT_MAX_POINTS, ScrapeLoop, TimeSeries,
                         TimeSeriesStore, percentile)
from .tracing import TraceNode, Tracer, build_trace_tree, chrome_trace

__all__ = [
    "Alert",
    "AlertLog",
    "AnomalyEngine",
    "AnomalyEvent",
    "AnomalyLog",
    "BreachPredictor",
    "ControlPlaneProfiler",
    "Counter",
    "DEFAULT_ANOMALY_TARGETS",
    "DEFAULT_FLIGHT_RING",
    "DEFAULT_FORECAST_TARGETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "DEFAULT_MAX_POINTS",
    "DEFAULT_SIGNAL_CAPACITY",
    "DecisionLog",
    "DiffConfig",
    "DiffReport",
    "EpochDecision",
    "EpochEffect",
    "FORECAST_MODELS",
    "FlightRecorder",
    "ForecastEngine",
    "Gauge",
    "Histogram",
    "HopBreakdown",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "PredictedBreach",
    "PredictionScore",
    "ProvenanceLog",
    "ProvenanceRecord",
    "ScrapeLoop",
    "SeriesDelta",
    "Signal",
    "SignalBus",
    "SloEngine",
    "SloRule",
    "TOPIC_ANOMALY",
    "TOPIC_FORECAST",
    "TOPIC_PREDICTED_BREACH",
    "TimeSeries",
    "TimeSeriesStore",
    "TraceNode",
    "Tracer",
    "build_trace_tree",
    "chrome_trace",
    "critical_path",
    "default_latency_slo",
    "diff_files",
    "diff_runs",
    "flatten_artifact",
    "hop_breakdown",
    "join_alerts_decisions",
    "load_artifact",
    "load_trace_jsonl",
    "make_model",
    "percentile",
    "score_predictions",
    "telemetry_digest",
    "trace_summary",
    "write_alerts_jsonl",
    "write_anomalies_jsonl",
    "write_chrome_trace",
    "write_decisions_jsonl",
    "write_flight_dump",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_provenance_jsonl",
    "write_signals_jsonl",
    "write_timeseries_json",
    "write_trace_jsonl",
]
