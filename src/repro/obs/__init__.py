"""Observability for the reproduction itself (tracing, metrics, decisions).

SLATE's premise (§3.1) is that the service layer can observe what the
network layer cannot; this package applies the same idea to the simulator:

* :mod:`repro.obs.tracing` — per-request distributed traces stitched from
  the spans the mesh already emits, exported to JSONL or Chrome
  ``trace_event`` (Perfetto) format;
* :mod:`repro.obs.analyzer` — critical-path extraction and per-hop
  queue/exec/WAN latency breakdowns over those traces;
* :mod:`repro.obs.metrics` — a labeled counter/gauge/histogram registry
  with JSON and prometheus-style exports, filled by :mod:`repro.obs.collect`;
* :mod:`repro.obs.decisions` — an append-only log of every Global
  Controller epoch (demand delta, solve-vs-replay, routing diff);
* :mod:`repro.obs.profiler` — wall-clock profiling of the control plane
  (the one deliberate wall-clock consumer; simulated code never is).

Everything is off by default: construct an :class:`ObservabilityConfig`
and pass it to ``MeshSimulation``/``run_policy`` to opt in. See
``docs/observability.md``.
"""

from .analyzer import (HopBreakdown, critical_path, hop_breakdown,
                       trace_summary)
from .config import Observability, ObservabilityConfig
from .decisions import DecisionLog, EpochDecision
from .export import (load_trace_jsonl, write_chrome_trace,
                     write_decisions_jsonl, write_metrics_json,
                     write_metrics_prometheus, write_trace_jsonl)
from .metrics import (Counter, DEFAULT_LATENCY_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .profiler import ControlPlaneProfiler
from .tracing import TraceNode, Tracer, build_trace_tree, chrome_trace

__all__ = [
    "ControlPlaneProfiler",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DecisionLog",
    "EpochDecision",
    "Gauge",
    "Histogram",
    "HopBreakdown",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "TraceNode",
    "Tracer",
    "build_trace_tree",
    "chrome_trace",
    "critical_path",
    "hop_breakdown",
    "load_trace_jsonl",
    "trace_summary",
    "write_chrome_trace",
    "write_decisions_jsonl",
    "write_metrics_json",
    "write_metrics_prometheus",
    "write_trace_jsonl",
]
