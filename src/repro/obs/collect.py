"""Metric collection: snapshot simulation/controller state into a registry.

Instrumentation here is *pull-based*: nothing in the data or control plane
calls the registry on its hot path. Instead, collectors read the counters
those components already maintain (engine event counts, pool depths,
gateway conservation counters, the egress ledger, solver cache stats) and
fold them into labeled metrics after — or between — runs. That keeps the
enabled-observability overhead near zero and the disabled case literally
zero.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .profiler import ControlPlaneProfiler

__all__ = ["collect_controller_metrics", "collect_profiler_metrics",
           "collect_simulation_metrics"]


def collect_simulation_metrics(registry: MetricsRegistry,
                               simulation) -> None:
    """Snapshot a :class:`~repro.sim.runner.MeshSimulation` into metrics."""
    sim = simulation.sim
    registry.counter(
        "engine_events_total",
        "events processed by the discrete-event engine").inc(
            sim.events_processed)
    registry.gauge(
        "engine_pending_events",
        "heap depth at snapshot time").set(sim.pending_events)
    registry.gauge(
        "engine_sim_time_seconds",
        "simulated clock at snapshot time").set(sim.now)

    for cluster_name in sorted(simulation.clusters):
        cluster = simulation.clusters[cluster_name]
        for service in sorted(cluster.pools):
            pool = cluster.pools[service]
            labels = {"service": service, "cluster": cluster_name}
            registry.gauge(
                "pool_queue_depth",
                "jobs waiting for a replica").set(pool.queue_length, **labels)
            registry.gauge(
                "pool_busy_replicas",
                "replicas executing a job").set(pool.busy_replicas, **labels)
            registry.gauge(
                "pool_replicas",
                "provisioned replica count").set(pool.replicas, **labels)
            if sim.now > 0:
                utilization = (pool.lifetime_busy_seconds
                               / (pool.replicas * sim.now))
            else:
                utilization = 0.0
            registry.gauge(
                "pool_utilization",
                "lifetime busy fraction per replica").set(
                    utilization, **labels)

    for cluster_name in sorted(simulation.gateways):
        gateway = simulation.gateways[cluster_name]
        labels = {"cluster": cluster_name}
        registry.counter(
            "gateway_admitted_total",
            "requests admitted at the ingress gateway").inc(
                gateway.admitted_count, **labels)
        registry.counter(
            "gateway_completed_total",
            "requests completed end-to-end").inc(
                gateway.completed_count, **labels)
        registry.counter(
            "gateway_failed_total",
            "requests that exhausted retries").inc(
                gateway.failed_count, **labels)
        registry.gauge(
            "gateway_open_requests",
            "requests admitted but not yet settled").set(
                gateway.open_requests, **labels)

    ledger = simulation.network.ledger
    for (src, dst) in sorted(ledger.bytes_by_pair):
        registry.counter(
            "wan_egress_bytes_total",
            "bytes crossing the WAN per directed cluster pair").inc(
                ledger.bytes_by_pair[(src, dst)], src=src, dst=dst)
    for src in sorted(ledger.cost_by_src):
        registry.counter(
            "wan_egress_cost_dollars_total",
            "egress spend billed to the source cluster").inc(
                ledger.cost_by_src[src], src=src)

    registry.counter(
        "calls_dropped_total",
        "calls lost to a service that failed in flight").inc(
            simulation.dropped_calls)
    registry.counter(
        "calls_timed_out_total",
        "call attempts abandoned past their deadline").inc(
            simulation.timed_out_calls)
    registry.counter(
        "calls_hedged_total",
        "duplicate calls launched by the hedging policy").inc(
            simulation.hedged_calls)

    latency = registry.histogram(
        "request_latency_seconds",
        "end-to-end request latency by traffic class")
    for cls, values in sorted(
            simulation.telemetry.latencies_by_class().items()):
        for value in values:
            latency.observe(value, traffic_class=cls)


def collect_controller_metrics(registry: MetricsRegistry,
                               controller) -> None:
    """Snapshot a :class:`GlobalController` (adaptive runs) into metrics."""
    if controller is None:
        return
    registry.counter(
        "controller_epochs_observed_total",
        "telemetry epochs folded into learned state").inc(
            controller.epochs_observed)
    cache = controller.solver_cache
    if cache is not None:
        registry.counter(
            "solver_cache_hits_total",
            "epoch solves replayed from the memoization cache").inc(
                cache.hits)
        registry.counter(
            "solver_cache_misses_total",
            "epoch solves that ran the optimizer").inc(cache.misses)
        registry.gauge(
            "solver_cache_hit_rate",
            "hits / lookups over the run").set(cache.hit_rate)
    epoch_solver = getattr(controller, "epoch_solver", None)
    if epoch_solver is not None:
        registry.counter(
            "optimizer_builds_total",
            "model assemblies over the run").inc(epoch_solver.builds)
        registry.counter(
            "optimizer_warm_builds_total",
            "assemblies served by a structure-cache rescatter").inc(
                epoch_solver.warm_builds)
        registry.counter(
            "optimizer_build_seconds_total",
            "wall-clock seconds spent assembling models").inc(
                epoch_solver.build_seconds)
        registry.counter(
            "optimizer_solves_total",
            "solver invocations (cold or warm; excludes replays)").inc(
                epoch_solver.solves)
        registry.counter(
            "optimizer_warm_solves_total",
            "solves served by the warm-start restricted path").inc(
                epoch_solver.warm_solves)
        registry.counter(
            "optimizer_warm_rejects_total",
            "warm-start attempts that fell back to a cold solve").inc(
                epoch_solver.warm_rejects)
        registry.counter(
            "optimizer_cold_solves_total",
            "solves that assembled and solved the full model").inc(
                epoch_solver.solves - epoch_solver.warm_solves)
        registry.counter(
            "optimizer_certificate_accepted_total",
            "pricing certificates that proved the restricted solve "
            "optimal").inc(epoch_solver.warm_solves)
        registry.counter(
            "optimizer_certificate_rejected_total",
            "pricing certificates that forced a cold re-solve").inc(
                epoch_solver.warm_rejects)
        registry.counter(
            "optimizer_replays_total",
            "epoch plans replayed from the solver cache").inc(
                epoch_solver.replays)
        registry.counter(
            "optimizer_solve_seconds_total",
            "wall-clock seconds spent in the solver").inc(
                epoch_solver.solve_seconds)
        candidates = getattr(epoch_solver, "last_candidate_stats", None)
        if candidates is not None:
            registry.gauge(
                "optimizer_path_candidates",
                "path variables in the most recent model").set(
                    candidates["paths"])
            registry.gauge(
                "optimizer_path_candidate_groups",
                "(class, ingress) groups in the most recent model").set(
                    candidates["groups"])
        structure_cache = epoch_solver.structure_cache
        if structure_cache is not None:
            registry.counter(
                "structure_cache_hits_total",
                "builds that reused a cached model structure").inc(
                    structure_cache.hits)
            registry.counter(
                "structure_cache_misses_total",
                "builds that assembled structure from scratch").inc(
                    structure_cache.misses)
            registry.gauge(
                "structure_cache_hit_rate",
                "structure-cache hits / lookups over the run").set(
                    structure_cache.hit_rate)
    result = controller.last_result
    if result is not None:
        registry.gauge(
            "solver_objective",
            "objective value of the most recent plan").set(result.objective)
        registry.gauge(
            "solver_wall_time_seconds",
            "wall-clock time of the most recent solve").set(
                result.solve_time)
        registry.gauge(
            "solver_variables",
            "decision variables in the most recent model").set(
                result.n_variables)
        registry.gauge(
            "solver_constraints",
            "rows in the most recent model").set(result.n_constraints)
        registry.gauge(
            "solver_total_demand_rps",
            "demand the most recent plan routed").set(result.total_demand)
        registry.gauge(
            "solver_build_time_seconds",
            "model assembly time of the most recent plan").set(
                result.build_time)
        registry.gauge(
            "solver_warm_start",
            "1 when the most recent solve was warm-started").set(
                float(result.warm_start))
        registry.gauge(
            "solver_warm_build",
            "1 when the most recent build reused cached structure").set(
                float(result.warm_build))


def collect_profiler_metrics(registry: MetricsRegistry,
                             profiler: ControlPlaneProfiler | None) -> None:
    """Fold control-plane wall-time sections into metrics."""
    if profiler is None:
        return
    for name in profiler.section_names():
        stats = profiler.stats(name)
        labels = {"section": name}
        registry.counter(
            "control_plane_section_runs_total",
            "times each profiled control-plane section executed").inc(
                stats.count, **labels)
        registry.counter(
            "control_plane_section_seconds_total",
            "wall-clock seconds spent per control-plane section").inc(
                stats.total, **labels)
        registry.gauge(
            "control_plane_section_max_seconds",
            "slowest single execution per section").set(
                stats.max, **labels)
